//! Multi-session dispatch: N concurrent handler sessions sharded across a
//! fixed worker pool.
//!
//! The paper's runtime serves one partitioned handler session; the
//! [`SessionManager`] is the first step from reproduction to server (see
//! `ARCHITECTURE.md` §"Throughput layer"). It owns a fixed set of worker
//! threads (hand-rolled `std::thread` + `std::sync::mpsc`, no external
//! executor) and shards sessions across them by `session_id % workers`, so
//! one session's messages always run on one worker in submission order —
//! per-session ordering needs no locking.
//!
//! Each session owns its *runtime* state — modulator/demodulator pair,
//! [`PartitionPlan`] with its epoch history,
//! [`ObsHub`], and a private Reconfiguration Unit — so plans adapt
//! per-session. What sessions *share* is the pure static analysis: handler
//! construction goes through an
//! [`AnalysisCache`], and the
//! manager mirrors the cache's hit/miss/eviction counts into gauges on its
//! own hub (`analysis_cache_hits`, `analysis_cache_misses`,
//! `analysis_cache_evictions`; see OBSERVABILITY.md).
//!
//! ```
//! use mpart::session::{SessionConfig, SessionManager};
//! use mpart_cost::DataSizeModel;
//! use mpart_ir::interp::BuiltinRegistry;
//! use mpart_ir::parse::parse_program;
//! use mpart_ir::Value;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Arc::new(parse_program(
//!     "fn double(x) {\n  y = x * 2\n  native emit(y)\n  return y\n}\n",
//! )?);
//! let mut manager = SessionManager::new(SessionConfig::default().with_workers(2));
//! let mut receiver = BuiltinRegistry::new();
//! receiver.register_native("emit", 1, |_, _| Ok(Value::Null));
//! let model: Arc<dyn mpart_cost::CostModel> = Arc::new(DataSizeModel::new());
//! let a = manager.open_session(
//!     Arc::clone(&program), "double", Arc::clone(&model),
//!     BuiltinRegistry::new(), receiver.clone(),
//! )?;
//! let b = manager.open_session(
//!     Arc::clone(&program), "double", model,
//!     BuiltinRegistry::new(), receiver,
//! )?;
//! // The second session reused the first one's static analysis.
//! assert_eq!(manager.cache().hits(), 1);
//! let out = manager.deliver(a, |_| Ok(vec![Value::Int(21)]))?;
//! assert_eq!(out.ret, Some(Value::Int(42)));
//! let out = manager.deliver(b, |_| Ok(vec![Value::Int(5)]))?;
//! assert_eq!(out.ret, Some(Value::Int(10)));
//! assert_eq!(manager.shutdown(), 2);
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use mpart_analysis::cache::{AnalysisCache, DEFAULT_CACHE_CAPACITY};
use mpart_analysis::paths::EnumLimits;
use mpart_cost::{CostModel, RuntimeCostKind};
use mpart_ir::interp::{BuiltinRegistry, ExecCtx};
use mpart_ir::{IrError, Program, Value};

pub use mpart_ir::engine::EngineChoice;
use mpart_obs::{Counter, Gauge, ObsHub, PlanReason, TraceEvent};

use crate::demodulator::Demodulator;
use crate::failure::{self, DeadLetter, DeadLetterRing, FailureConfig, FailureKind};
use crate::health::DegradationController;
use crate::journal::{JournalRecord, SessionJournal, SessionSnapshot};
use crate::modulator::Modulator;
use crate::plan::PartitionPlan;
use crate::profile::{DemodMessageProfile, ModMessageProfile, TriggerPolicy};
use crate::reconfig::{
    GuardConfig, GuardVerdict, ModelChoice, ModelSelector, ModelSelectorConfig, PlanGuard,
    QuarantineList, ReconfigUnit,
};
use crate::{PartitionedHandler, PseId};
use mpart_obs::pse_mask;

/// Identifies one open session within a [`SessionManager`].
pub type SessionId = usize;

/// Sizing and adaptation policy of a [`SessionManager`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Worker threads in the pool (sessions shard as `id % workers`).
    pub workers: usize,
    /// Capacity of the shared [`AnalysisCache`].
    pub cache_capacity: usize,
    /// Per-session reconfiguration trigger ([`TriggerPolicy::Never`]
    /// freezes every session's initial static plan).
    pub trigger: TriggerPolicy,
    /// Path-enumeration limits (part of the analysis cache key).
    pub limits: EnumLimits,
    /// When set, every session runs a [`ModelSelector`] that watches the
    /// envelope-byte EWMA against the profiled work signal and switches
    /// the live cost model when the workload's regime changes. A switch
    /// re-prices the PSE set through the shared [`AnalysisCache`] as a
    /// *second* cache entry (no re-analysis) and re-selects the plan.
    pub auto_model: Option<ModelSelectorConfig>,
    /// Failure-domain tuning: retry budget and dead-letter ring capacity
    /// (see [`crate::failure`]).
    pub failure: FailureConfig,
    /// Capacity of each worker's bounded ingress queue (min 1). A full
    /// queue *sheds*: [`DeliveryClass::Profiling`] deliveries are dropped
    /// oldest-first, [`DeliveryClass::Continuation`] deliveries are
    /// rejected with [`IrError::Overloaded`].
    pub ingress_capacity: usize,
    /// Consecutive handler panics before a session falls back to the
    /// entry cut (min 1).
    pub degrade_after: u32,
    /// Consecutive successes before a degraded session re-promotes its
    /// stashed plan (min 1).
    pub promote_after: u32,
    /// When set, session control state — opens, plan/model commits, ack
    /// watermarks, profiling flags; never payloads — is checkpointed to
    /// the journal for crash-safe recovery (see [`crate::journal`]).
    pub journal: Option<Arc<SessionJournal>>,
    /// Which execution engine sessions run their handlers on. The default
    /// [`EngineChoice::Auto`] compiles each handler to register bytecode
    /// at session open and falls back to the reference interpreter when
    /// the handler body declines compilation.
    pub engine: EngineChoice,
    /// When set, every plan switch runs under a [`PlanGuard`] canary
    /// window: the first `canary` envelopes after a commit are compared
    /// against the pre-switch baseline, a breach rolls back to the
    /// retained prior plan, and the offender is quarantined (DESIGN.md
    /// §16). `None` (the default) installs switches directly, as before.
    pub guard: Option<GuardConfig>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            trigger: TriggerPolicy::Never,
            limits: EnumLimits::default(),
            auto_model: None,
            failure: FailureConfig::default(),
            ingress_capacity: 1024,
            degrade_after: 3,
            promote_after: 3,
            journal: None,
            engine: EngineChoice::default(),
            guard: None,
        }
    }
}

impl SessionConfig {
    /// Sets the worker pool size (minimum 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the analysis cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self
    }

    /// Sets the per-session reconfiguration trigger.
    pub fn with_trigger(mut self, trigger: TriggerPolicy) -> Self {
        self.trigger = trigger;
        self
    }

    /// Sets the path-enumeration limits.
    pub fn with_limits(mut self, limits: EnumLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Enables per-session cost-model auto-selection (see
    /// [`ModelSelector`]).
    pub fn with_auto_model(mut self, config: ModelSelectorConfig) -> Self {
        self.auto_model = Some(config);
        self
    }

    /// Sets the failure-domain tuning (retry budget, dead-letter
    /// capacity).
    pub fn with_failure(mut self, failure: FailureConfig) -> Self {
        self.failure = failure;
        self
    }

    /// Sets the per-worker ingress queue capacity (min 1).
    pub fn with_ingress_capacity(mut self, capacity: usize) -> Self {
        self.ingress_capacity = capacity.max(1);
        self
    }

    /// Sets the panic-degradation hysteresis thresholds (each min 1).
    pub fn with_degradation(mut self, degrade_after: u32, promote_after: u32) -> Self {
        self.degrade_after = degrade_after.max(1);
        self.promote_after = promote_after.max(1);
        self
    }

    /// Attaches a session journal for crash-safe recovery.
    pub fn with_journal(mut self, journal: Arc<SessionJournal>) -> Self {
        self.journal = Some(journal);
        self
    }

    /// Selects the execution engine for session handlers (default
    /// [`EngineChoice::Auto`]).
    pub fn with_engine(mut self, engine: EngineChoice) -> Self {
        self.engine = engine;
        self
    }

    /// Enables canary-guarded plan switches with rollback and quarantine
    /// (see [`GuardConfig`]).
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = Some(guard);
        self
    }
}

/// Shed class of a delivery under backpressure: continuations carry
/// application state and are *rejected* with an error the caller can
/// retry; profiling-only traffic is telemetry and is *dropped*
/// oldest-first (the freshest sample wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryClass {
    /// An application continuation; rejected when the queue is full.
    Continuation,
    /// Profiling-only traffic; sheds oldest-first when the queue is full.
    Profiling,
}

/// Outcome of one in-process delivery through a session.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Per-session message number (1-based).
    pub seq: u64,
    /// The PSE the message split at.
    pub split_pse: PseId,
    /// Wire size of the packed continuation.
    pub wire_bytes: usize,
    /// Plan epoch the message was modulated under.
    pub epoch: u64,
    /// Handler return value.
    pub ret: Option<Value>,
    /// Whether this message triggered a per-session plan reconfiguration.
    pub reconfigured: bool,
    /// Whether this message committed a cost-model switch
    /// ([`SessionConfig::with_auto_model`]).
    pub model_switched: bool,
    /// Modulator-side work units spent on this message.
    pub mod_work: u64,
    /// Demodulator-side work units spent on this message.
    pub demod_work: u64,
}

type EventFn = Box<dyn FnOnce(&mut ExecCtx) -> Result<Vec<Value>, IrError> + Send>;

enum Job {
    Open(Box<SessionState>),
    Deliver {
        slot: usize,
        class: DeliveryClass,
        make_event: EventFn,
        reply: Sender<Result<SessionOutcome, IrError>>,
    },
    /// Tear down the session in `slot`, replying with its final ack
    /// watermark. `retire` additionally journals a [`JournalRecord::Close`]
    /// so replay drops the session for good; an evict (migration cleanup)
    /// leaves the journal tail for the new host to drain.
    Close {
        slot: usize,
        retire: bool,
        reply: Sender<Result<u64, IrError>>,
    },
    /// A two-phase plan-lifecycle step (prepare or commit), executed on
    /// the owning worker so it serializes behind in-flight deliveries.
    Plan {
        slot: usize,
        action: PlanAction,
        reply: Sender<Result<PlanResponse, IrError>>,
    },
    Stop,
}

/// The plan-lifecycle step carried by [`Job::Plan`].
enum PlanAction {
    /// Validate the candidate without touching the serving plan.
    Prepare(Vec<PseId>),
    /// Install the candidate and open its canary window.
    Commit(Vec<PseId>),
}

/// The worker's answer to a [`Job::Plan`].
enum PlanResponse {
    Prepared(PrepareOutcome),
    Committed(u64),
}

/// What the endpoint concluded about a candidate plan during the
/// two-phase `Prepare` step (DESIGN.md §16). Only
/// [`PrepareOutcome::Ready`] may be followed by a commit; every other
/// outcome leaves the old plan serving untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrepareOutcome {
    /// The candidate validated: analysis present, the set is a cut, and
    /// it is not quarantined.
    Ready,
    /// The candidate failed validation (reason attached).
    Rejected(String),
    /// The candidate is on the quarantine blacklist after a recent
    /// guard-breach rollback.
    Quarantined,
}

/// How a delivery entered (or failed to enter) a shard's ingress queue.
enum Ingress {
    /// Enqueued without shedding.
    Enqueued,
    /// Enqueued after dropping the oldest profiling-class delivery.
    ShedOldest,
}

/// A bounded per-worker ingress queue with the shed policy. Control jobs
/// (open/stop) always enqueue; deliveries respect the capacity.
struct ShardQueue {
    capacity: usize,
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

impl ShardQueue {
    fn new(capacity: usize) -> Self {
        ShardQueue {
            capacity: capacity.max(1),
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }
    }

    fn push_control(&self, job: Job) {
        self.jobs.lock().expect("shard queue poisoned").push_back(job);
        self.ready.notify_one();
    }

    /// Enqueues a delivery, shedding under backpressure. Returns the job
    /// back (`Err`) when it must be rejected; a shed *older* delivery has
    /// its waiter failed with [`IrError::Overloaded`] through its reply
    /// channel.
    fn push_deliver(&self, job: Job) -> Result<Ingress, Job> {
        let mut jobs = self.jobs.lock().expect("shard queue poisoned");
        if jobs.len() < self.capacity {
            jobs.push_back(job);
            self.ready.notify_one();
            return Ok(Ingress::Enqueued);
        }
        let class = match &job {
            Job::Deliver { class, .. } => *class,
            _ => unreachable!("push_deliver only accepts Job::Deliver"),
        };
        if class == DeliveryClass::Profiling {
            let oldest = jobs
                .iter()
                .position(|j| matches!(j, Job::Deliver { class: DeliveryClass::Profiling, .. }));
            if let Some(at) = oldest {
                if let Some(Job::Deliver { reply, .. }) = jobs.remove(at) {
                    let _ = reply.send(Err(IrError::Overloaded(
                        "profiling delivery shed oldest-first under backpressure".into(),
                    )));
                }
                jobs.push_back(job);
                self.ready.notify_one();
                return Ok(Ingress::ShedOldest);
            }
        }
        Err(job)
    }

    fn pop(&self) -> Job {
        let mut jobs = self.jobs.lock().expect("shard queue poisoned");
        loop {
            if let Some(job) = jobs.pop_front() {
                return job;
            }
            jobs = self.ready.wait(jobs).expect("shard queue poisoned");
        }
    }
}

/// One session's runtime state, owned by exactly one worker thread.
struct SessionState {
    handler: Arc<PartitionedHandler>,
    modulator: Modulator,
    demodulator: Demodulator,
    reconfig: ReconfigUnit,
    sender_builtins: BuiltinRegistry,
    receiver_ctx: ExecCtx,
    seq: u64,
    auto: Option<AutoModel>,
    /// Entry-cut fallback driven by consecutive handler panics.
    degradation: DegradationController,
    /// Quarantined envelopes, shared with the manager for inspection.
    deadletter: Arc<DeadLetterRing>,
    /// `(journal, journaled session id)` when checkpointing is on.
    journal: Option<(Arc<SessionJournal>, u64)>,
    /// Canary guard over plan switches ([`SessionConfig::with_guard`]).
    guard: Option<PlanGuard>,
    /// Decaying blacklist of rolled-back active sets.
    quarantine: QuarantineList,
    panics_modulator: Counter,
    panics_demodulator: Counter,
    quarantined_total: Counter,
}

/// Per-session cost-model auto-selection state
/// ([`SessionConfig::with_auto_model`]).
struct AutoModel {
    selector: ModelSelector,
    /// The manager's shared cache; re-priced analyses become second
    /// entries here, so sibling sessions switching the same way hit.
    cache: Arc<AnalysisCache>,
    limits: EnumLimits,
}

/// Folds the plan's profiling flags into the journal's 64-bit mask
/// (PSEs past bit 63 are dropped, mirroring the trace-ring encoding).
fn profiled_mask(plan: &PartitionPlan) -> u64 {
    (0..plan.len().min(64)).filter(|&p| plan.is_profiled(p)).fold(0, |m, p| m | (1u64 << p))
}

impl SessionState {
    /// One delivery under the failure domain: handler invocations run
    /// isolated ([`failure::isolate`]); a failed envelope dead-letters
    /// immediately (in-process deliveries are one-shot — there is no
    /// retransmission buffer to retry from), panics feed the degradation
    /// hysteresis, and successes checkpoint the ack watermark.
    fn deliver(&mut self, make_event: EventFn) -> Result<SessionOutcome, IrError> {
        self.seq += 1;
        let seq = self.seq;
        let result = self.deliver_inner(make_event);
        // Feed the plan guard. The envelope that itself performed a
        // switch ran (mostly) under the old plan, so it does not count
        // toward the new plan's canary window.
        match &result {
            Ok(outcome) if !outcome.reconfigured && !outcome.model_switched => {
                self.observe_guard(true, outcome.mod_work + outcome.demod_work);
            }
            Ok(_) => {}
            Err(_) => self.observe_guard(false, 0),
        }
        match &result {
            Ok(_) => {
                if self.degradation.record_success().is_some() {
                    self.checkpoint_plan();
                }
                self.journal_append(JournalRecord::Ack {
                    session: self.journal.as_ref().map(|(_, id)| *id).unwrap_or(0),
                    watermark: seq,
                });
            }
            Err(e) => {
                let kind = match e {
                    IrError::HandlerPanic(_) => FailureKind::Panic,
                    IrError::Deadline(_) => FailureKind::Deadline,
                    _ => FailureKind::Decode,
                };
                self.deadletter.push(DeadLetter { seq, kind, failures: 1, error: e.to_string() });
                self.quarantined_total.inc();
                self.handler.obs().record(TraceEvent::Quarantined { seq, failures: 1 });
                if matches!(e, IrError::HandlerPanic(_))
                    && self.degradation.record_failure().is_some()
                {
                    self.checkpoint_plan();
                }
            }
        }
        result
    }

    fn journal_append(&self, record: JournalRecord) {
        if let Some((journal, _)) = &self.journal {
            // The in-memory copy always lands; a transiently unwritable
            // disk degrades durability, not correctness.
            let _ = journal.append(record);
        }
    }

    /// Checkpoints the current plan epoch + active set + profiling flags.
    fn checkpoint_plan(&self) {
        if let Some((journal, id)) = &self.journal {
            let plan = self.handler.plan();
            let _ = journal.append(JournalRecord::PlanCommit {
                session: *id,
                epoch: plan.epoch(),
                active: plan.active(),
                reason: "commit".into(),
            });
            let _ =
                journal.append(JournalRecord::Flags { session: *id, mask: profiled_mask(plan) });
        }
    }

    fn journal_model(&self, label: &str) {
        if let Some((journal, id)) = &self.journal {
            let _ = journal
                .append(JournalRecord::ModelCommit { session: *id, model: label.to_string() });
        }
    }

    fn journal_id(&self) -> u64 {
        self.journal.as_ref().map(|(_, id)| *id).unwrap_or(0)
    }

    /// Checkpoints the guard's canary window (or its absence) so a
    /// restart resumes mid-canary with the right envelope count left.
    fn journal_guard_state(&self) {
        let Some(guard) = &self.guard else {
            return;
        };
        let session = self.journal_id();
        match guard.canary_state() {
            Some((prior_epoch, prior_active, epoch, remaining)) => {
                self.journal_append(JournalRecord::Guard {
                    session,
                    prior_epoch,
                    epoch,
                    remaining,
                    prior_active: prior_active.to_vec(),
                });
            }
            None => self.journal_append(JournalRecord::Guard {
                session,
                prior_epoch: 0,
                epoch: 0,
                remaining: 0,
                prior_active: vec![],
            }),
        }
    }

    /// Endpoint-side `Prepare`: validates a candidate active set without
    /// touching the serving plan. Counted on
    /// `plan_prepares_total{outcome}`.
    fn prepare_plan(&mut self, active: &[PseId]) -> PrepareOutcome {
        let metrics = self.handler.metrics();
        if self.quarantine.contains(active) {
            metrics.note_prepare("quarantined");
            return PrepareOutcome::Quarantined;
        }
        match self.handler.validate_candidate(active) {
            Ok(()) => {
                metrics.note_prepare("ready");
                PrepareOutcome::Ready
            }
            Err(e) => {
                metrics.note_prepare("rejected");
                PrepareOutcome::Rejected(e.to_string())
            }
        }
    }

    /// `Commit`: installs a prepared candidate under
    /// [`PlanReason::Install`] and opens its canary window. Re-validates
    /// defensively — a commit that races a rollback's quarantine entry
    /// must not land.
    ///
    /// # Errors
    ///
    /// [`IrError::Invalid`] for a quarantined candidate, validation
    /// errors from [`PartitionedHandler::validate_candidate`].
    fn commit_plan(&mut self, active: &[PseId]) -> Result<u64, IrError> {
        if self.quarantine.contains(active) {
            self.handler.metrics().note_prepare("quarantined");
            return Err(IrError::Invalid(format!("plan {active:?} is quarantined")));
        }
        self.handler.validate_candidate(active)?;
        let plan = self.handler.plan();
        if plan.active_eq(active) {
            return Ok(plan.epoch());
        }
        let prior_epoch = plan.epoch();
        let prior_active = plan.active();
        let epoch = self.handler.install_plan_reason(active, PlanReason::Install);
        self.reconfig.acknowledge_epoch(epoch);
        self.checkpoint_plan();
        if let Some(guard) = &mut self.guard {
            guard.begin_canary(prior_epoch, prior_active, epoch, active.to_vec());
        }
        self.journal_guard_state();
        Ok(epoch)
    }

    /// The single chokepoint for reconfiguration-driven plan switches
    /// (auto-model and feedback paths): runs the local prepare checks
    /// (quarantine, cut validation), suppresses switches while a canary
    /// window is still being judged, installs, and opens the canary.
    /// Returns whether a switch happened.
    fn try_switch_plan(&mut self, active: &[PseId], reason: PlanReason) -> bool {
        // One candidate evaluation ages the quarantine blacklist a step.
        self.decay_quarantine();
        if self.guard.as_ref().is_some_and(|g| g.in_canary()) {
            return false;
        }
        if self.handler.plan().active_eq(active) {
            return false;
        }
        let metrics = self.handler.metrics();
        if self.quarantine.contains(active) {
            metrics.note_prepare("quarantined");
            return false;
        }
        if self.handler.validate_candidate(active).is_err() {
            metrics.note_prepare("rejected");
            return false;
        }
        metrics.note_prepare("ready");
        let prior_epoch = self.handler.plan().epoch();
        let prior_active = self.handler.plan().active();
        let epoch = self.handler.install_plan_reason(active, reason);
        self.reconfig.acknowledge_epoch(epoch);
        if let Some(guard) = &mut self.guard {
            guard.begin_canary(prior_epoch, prior_active, epoch, active.to_vec());
            self.journal_guard_state();
        }
        true
    }

    /// Ages the quarantine blacklist one step, journaling expiries.
    fn decay_quarantine(&mut self) {
        if self.quarantine.is_empty() {
            return;
        }
        let before: Vec<Vec<PseId>> =
            self.quarantine.entries().iter().map(|(set, _)| set.clone()).collect();
        self.quarantine.decay();
        let session = self.journal_id();
        for set in before {
            if !self.quarantine.contains(&set) {
                self.journal_append(JournalRecord::Quarantine { session, ttl: 0, active: set });
            }
        }
        self.handler.metrics().note_quarantine_size(self.quarantine.len());
    }

    /// Feeds one envelope outcome to the guard and acts on the verdict:
    /// promotion clears the journaled window, a breach rolls the plan
    /// back and quarantines the offender.
    fn observe_guard(&mut self, ok: bool, work: u64) {
        let Some(guard) = &mut self.guard else {
            return;
        };
        let in_canary = guard.in_canary();
        match guard.observe(ok, work) {
            GuardVerdict::Idle => {}
            GuardVerdict::Watching { .. } => self.journal_guard_state(),
            GuardVerdict::Promoted { .. } => {
                if in_canary {
                    self.journal_guard_state();
                }
            }
            GuardVerdict::Rollback { prior_epoch, prior_active, from_epoch, active, observed } => {
                self.rollback(prior_epoch, prior_active, from_epoch, active, observed);
            }
        }
    }

    /// Guard-breach rollback: reinstall the retained prior generation
    /// (falling back to the journal-carried active set when the epoch
    /// fell out of plan retention), quarantine the offender, and
    /// checkpoint everything.
    fn rollback(
        &mut self,
        prior_epoch: u64,
        prior_active: Vec<PseId>,
        from_epoch: u64,
        active: Vec<PseId>,
        observed: u64,
    ) {
        let target = self.handler.plan_of_epoch(prior_epoch).unwrap_or(prior_active);
        let to_epoch = self.handler.install_plan_reason(&target, PlanReason::Rollback);
        self.reconfig.acknowledge_epoch(to_epoch);
        let ttl = self.guard.as_ref().map(|g| g.config().quarantine_decay).unwrap_or(0);
        self.quarantine.quarantine(&active, ttl);
        let metrics = self.handler.metrics();
        metrics.note_rollback();
        metrics.note_quarantine_size(self.quarantine.len());
        self.handler.obs().record(TraceEvent::PlanRollback {
            from_epoch,
            to_epoch,
            quarantined_mask: pse_mask(&active),
            observed,
        });
        let session = self.journal_id();
        self.journal_guard_state();
        self.journal_append(JournalRecord::Quarantine { session, ttl, active });
        self.checkpoint_plan();
    }

    fn deliver_inner(&mut self, make_event: EventFn) -> Result<SessionOutcome, IrError> {
        let mut sender_ctx =
            ExecCtx::with_builtins(self.handler.program(), self.sender_builtins.clone());
        sender_ctx.trace_digests = false;
        let args = make_event(&mut sender_ctx)?;
        let run = {
            let modulator = &self.modulator;
            match failure::isolate(|| modulator.handle(&mut sender_ctx, args)) {
                Ok(run) => run,
                Err(e) => {
                    if matches!(e, IrError::HandlerPanic(_)) {
                        self.panics_modulator.inc();
                        self.handler.obs().record(TraceEvent::HandlerPanic { seq: self.seq });
                    }
                    return Err(e);
                }
            }
        };
        let wire_bytes = run.message.wire_size();
        let epoch = run.message.epoch;
        let split_pse = run.message.pse;
        let demod = {
            let demodulator = &self.demodulator;
            let receiver_ctx = &mut self.receiver_ctx;
            match failure::isolate(|| demodulator.handle(receiver_ctx, &run.message)) {
                Ok(demod) => demod,
                Err(e) => {
                    if matches!(e, IrError::HandlerPanic(_)) {
                        self.panics_demodulator.inc();
                        self.handler.obs().record(TraceEvent::HandlerPanic { seq: self.seq });
                    }
                    return Err(e);
                }
            }
        };

        self.reconfig.record_mod(ModMessageProfile {
            samples: run.samples,
            split: split_pse,
            mod_work: run.mod_work,
            t_mod: None,
        });
        self.reconfig.record_samples(&demod.samples);
        self.reconfig.record_demod(DemodMessageProfile {
            pse: demod.pse,
            demod_work: demod.demod_work,
            t_demod: None,
        });
        let mut reconfigured = false;
        let mut model_switched = false;
        if let Some(auto) = self.auto.as_mut() {
            let from = auto.selector.current();
            let snapshot = self.reconfig.profiling().snapshot();
            if let Some(choice) = auto.selector.observe(wire_bytes as u64, &snapshot) {
                // Commit the switch: re-price the PSE set through the
                // shared cache (a second entry keyed by the model pair —
                // no re-analysis), swap the Reconfiguration Unit onto the
                // re-priced analysis, and re-select the plan under the
                // new pricing.
                let analysis =
                    self.handler.reprice(choice.instantiate(), &auto.cache, auto.limits)?;
                self.reconfig.switch_model(analysis, choice.kind());
                let update = self.reconfig.force_reconfigure()?;
                reconfigured = self.try_switch_plan(&update.active, PlanReason::Reconfig);
                let obs = self.handler.obs();
                obs.registry()
                    .counter(
                        "model_switch_total",
                        &[("from", from.label()), ("to", choice.label())],
                    )
                    .inc();
                obs.record(TraceEvent::ModelSwitch { from: from.tag(), to: choice.tag() });
                self.journal_model(choice.label());
                if reconfigured {
                    self.checkpoint_plan();
                }
                model_switched = true;
            }
        }
        if !model_switched {
            if let Some(update) = self.reconfig.maybe_reconfigure()? {
                reconfigured = self.try_switch_plan(&update.active, PlanReason::Reconfig);
                if reconfigured {
                    self.checkpoint_plan();
                }
            }
        }
        Ok(SessionOutcome {
            seq: self.seq,
            split_pse,
            wire_bytes,
            epoch,
            ret: demod.ret,
            reconfigured,
            model_switched,
            mod_work: run.mod_work,
            demod_work: demod.demod_work,
        })
    }
}

struct WorkerHandle {
    queue: Arc<ShardQueue>,
    thread: Option<JoinHandle<()>>,
}

#[derive(Clone)]
struct ManagerMetrics {
    sessions_open: Gauge,
    worker_slots_active: Gauge,
    closed_close: Counter,
    closed_evict: Counter,
    messages_total: Counter,
    errors_total: Counter,
    shed_oldest: Counter,
    shed_reject: Counter,
    sessions_recovered: Gauge,
    cache_hits: Gauge,
    cache_misses: Gauge,
    cache_evictions: Gauge,
    cache_second_entry_hits: Gauge,
    cache_second_entry_misses: Gauge,
}

/// A deferred [`SessionOutcome`]: returned by
/// [`SessionManager::submit`], resolved by [`wait`](Pending::wait).
#[must_use = "a pending delivery reports errors through wait()"]
pub struct Pending {
    rx: Receiver<Result<SessionOutcome, IrError>>,
}

impl Pending {
    /// Blocks until the worker finishes the delivery.
    ///
    /// # Errors
    ///
    /// Propagates handler errors; returns [`IrError::Continuation`] if
    /// the worker stopped.
    pub fn wait(self) -> Result<SessionOutcome, IrError> {
        self.rx.recv().map_err(|_| IrError::Continuation("session worker stopped".into()))?
    }

    /// Blocks at most `budget` for the delivery; a stalled worker yields
    /// [`IrError::Deadline`] instead of hanging the caller. The delivery
    /// itself is not cancelled — the caller decides whether to back off
    /// and retry or give up.
    ///
    /// # Errors
    ///
    /// Handler errors, [`IrError::Deadline`] on timeout, and
    /// [`IrError::Continuation`] if the worker stopped.
    pub fn wait_deadline(self, budget: Duration) -> Result<SessionOutcome, IrError> {
        match self.rx.recv_timeout(budget) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => {
                Err(IrError::Deadline(format!("delivery exceeded its {budget:?} budget")))
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(IrError::Continuation("session worker stopped".into()))
            }
        }
    }
}

/// Shards N concurrent handler sessions across a fixed worker pool. See
/// the [module docs](self) for the ownership and sharing rules.
pub struct SessionManager {
    workers: Vec<WorkerHandle>,
    sessions: Vec<SessionEntry>,
    cache: Arc<AnalysisCache>,
    config: SessionConfig,
    obs: Arc<ObsHub>,
    metrics: ManagerMetrics,
    processed: Arc<AtomicU64>,
    recovered: u64,
}

struct SessionEntry {
    worker: usize,
    slot: usize,
    handler: Arc<PartitionedHandler>,
    deadletter: Arc<DeadLetterRing>,
    /// Journal id this session checkpoints under (the manager-local id
    /// unless opened `_as` a cluster-global id).
    journal_id: u64,
    /// Closed sessions keep their entry (slots are positional) but
    /// refuse deliveries and vanish from the live accessors.
    closed: bool,
}

impl std::fmt::Debug for SessionManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionManager")
            .field("workers", &self.workers.len())
            .field("sessions", &self.sessions.len())
            .field("cache_hits", &self.cache.hits())
            .finish()
    }
}

impl SessionManager {
    /// Spawns the worker pool (no sessions yet).
    pub fn new(config: SessionConfig) -> Self {
        let cache = Arc::new(AnalysisCache::new(config.cache_capacity));
        Self::with_shared_cache(config, cache)
    }

    /// Spawns the worker pool around an *existing* analysis cache. This
    /// is the crash-recovery path: a restarted manager reuses the warm
    /// cache so [`restore_session`](Self::restore_session) re-opens every
    /// journaled session with zero static re-analysis (every open is a
    /// cache hit, visible on the cache gauges).
    pub fn with_shared_cache(config: SessionConfig, cache: Arc<AnalysisCache>) -> Self {
        let obs = Arc::new(ObsHub::new());
        let registry = obs.registry();
        let metrics = ManagerMetrics {
            sessions_open: registry.gauge("sessions_open", &[]),
            worker_slots_active: registry.gauge("worker_slots_active", &[]),
            closed_close: registry.counter("sessions_closed_total", &[("reason", "close")]),
            closed_evict: registry.counter("sessions_closed_total", &[("reason", "evict")]),
            messages_total: registry.counter("session_messages_total", &[]),
            errors_total: registry.counter("session_errors_total", &[]),
            shed_oldest: registry.counter("shed_total", &[("reason", "oldest_drop")]),
            shed_reject: registry.counter("shed_total", &[("reason", "queue_full")]),
            sessions_recovered: registry.gauge("sessions_recovered", &[]),
            cache_hits: registry.gauge("analysis_cache_hits", &[]),
            cache_misses: registry.gauge("analysis_cache_misses", &[]),
            cache_evictions: registry.gauge("analysis_cache_evictions", &[]),
            cache_second_entry_hits: registry.gauge("analysis_cache_second_entry_hits", &[]),
            cache_second_entry_misses: registry.gauge("analysis_cache_second_entry_misses", &[]),
        };
        let processed = Arc::new(AtomicU64::new(0));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                Self::spawn_worker(metrics.clone(), Arc::clone(&processed), config.ingress_capacity)
            })
            .collect();
        SessionManager {
            workers,
            sessions: Vec::new(),
            cache,
            config,
            obs,
            metrics,
            processed,
            recovered: 0,
        }
    }

    fn spawn_worker(
        metrics: ManagerMetrics,
        processed: Arc<AtomicU64>,
        ingress_capacity: usize,
    ) -> WorkerHandle {
        let queue = Arc::new(ShardQueue::new(ingress_capacity));
        let worker_queue = Arc::clone(&queue);
        let thread = std::thread::spawn(move || {
            // Slots are positional and never reused: a closed session
            // leaves a `None` tombstone so later slots keep their index,
            // and the tombstone itself is the fence — a late delivery to
            // a closed slot errors instead of reaching stale state.
            let mut sessions: Vec<Option<SessionState>> = Vec::new();
            loop {
                match worker_queue.pop() {
                    Job::Open(state) => sessions.push(Some(*state)),
                    Job::Deliver { slot, class: _, make_event, reply } => {
                        // Worker-level backstop: `SessionState::deliver`
                        // already isolates the handler halves, but a
                        // panic anywhere else in the delivery path must
                        // fail the envelope, never the worker.
                        let result = match sessions.get_mut(slot) {
                            Some(Some(state)) => failure::isolate(|| state.deliver(make_event)),
                            Some(None) => {
                                Err(IrError::Continuation(format!("worker slot {slot} is closed")))
                            }
                            None => Err(IrError::Continuation(format!(
                                "no session in worker slot {slot}"
                            ))),
                        };
                        match &result {
                            Ok(_) => {
                                metrics.messages_total.inc();
                                processed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => metrics.errors_total.inc(),
                        }
                        // A dropped reply handle is not an error: the
                        // caller abandoned a fire-and-forget delivery.
                        let _ = reply.send(result);
                    }
                    Job::Close { slot, retire, reply } => {
                        let result = match sessions.get_mut(slot).and_then(Option::take) {
                            Some(state) => {
                                if retire {
                                    if let Some((journal, jid)) = &state.journal {
                                        let _ =
                                            journal.append(JournalRecord::Close { session: *jid });
                                    }
                                }
                                Ok(state.seq)
                            }
                            None => Err(IrError::Unresolved(format!(
                                "worker slot {slot} is already closed"
                            ))),
                        };
                        let _ = reply.send(result);
                    }
                    Job::Plan { slot, action, reply } => {
                        let result = match sessions.get_mut(slot) {
                            Some(Some(state)) => match action {
                                PlanAction::Prepare(active) => {
                                    Ok(PlanResponse::Prepared(state.prepare_plan(&active)))
                                }
                                PlanAction::Commit(active) => {
                                    state.commit_plan(&active).map(PlanResponse::Committed)
                                }
                            },
                            Some(None) => {
                                Err(IrError::Continuation(format!("worker slot {slot} is closed")))
                            }
                            None => Err(IrError::Continuation(format!(
                                "no session in worker slot {slot}"
                            ))),
                        };
                        let _ = reply.send(result);
                    }
                    Job::Stop => break,
                }
            }
        });
        WorkerHandle { queue, thread: Some(thread) }
    }

    /// Opens a session for `func_name` under `model`, sharing the static
    /// analysis with any earlier session of the same handler through the
    /// manager's [`AnalysisCache`]. The session is pinned to worker
    /// `session_id % workers` for its lifetime.
    ///
    /// # Errors
    ///
    /// Propagates analysis failures.
    pub fn open_session(
        &mut self,
        program: Arc<Program>,
        func_name: &str,
        model: Arc<dyn CostModel>,
        sender_builtins: BuiltinRegistry,
        receiver_builtins: BuiltinRegistry,
    ) -> Result<SessionId, IrError> {
        self.open_session_inner(
            program,
            func_name,
            model,
            sender_builtins,
            receiver_builtins,
            None,
            None,
        )
    }

    /// [`open_session`](Self::open_session) journaled under an explicit
    /// id instead of the manager-local session index. A multi-node router
    /// shares one journal across several managers whose local indices all
    /// start at 0; journaling under the router's cluster-global id keeps
    /// the shared journal collision-free and lets a failover drain *one*
    /// session's records regardless of which node last hosted it.
    ///
    /// # Errors
    ///
    /// Propagates analysis failures.
    pub fn open_session_as(
        &mut self,
        program: Arc<Program>,
        func_name: &str,
        model: Arc<dyn CostModel>,
        sender_builtins: BuiltinRegistry,
        receiver_builtins: BuiltinRegistry,
        journal_id: u64,
    ) -> Result<SessionId, IrError> {
        self.open_session_inner(
            program,
            func_name,
            model,
            sender_builtins,
            receiver_builtins,
            None,
            Some(journal_id),
        )
    }

    /// Re-opens a session from a journal [`SessionSnapshot`]: the static
    /// analysis comes from the shared cache (a hit when the manager was
    /// built with [`with_shared_cache`](Self::with_shared_cache) — zero
    /// re-analysis), the journaled active set and profiling flags are
    /// reinstalled, and sequence numbering resumes from the journaled ack
    /// watermark. The caller supplies the deployment-time program, model,
    /// and builtins — they are code, not state, and are not journaled.
    ///
    /// Plan *epochs* restart monotone in the new process; the restored
    /// active set and watermark are what in-flight retransmission needs.
    ///
    /// # Errors
    ///
    /// Propagates analysis failures.
    pub fn restore_session(
        &mut self,
        program: Arc<Program>,
        func_name: &str,
        model: Arc<dyn CostModel>,
        sender_builtins: BuiltinRegistry,
        receiver_builtins: BuiltinRegistry,
        snapshot: &SessionSnapshot,
    ) -> Result<SessionId, IrError> {
        self.open_session_inner(
            program,
            func_name,
            model,
            sender_builtins,
            receiver_builtins,
            Some(snapshot),
            None,
        )
    }

    /// [`restore_session`](Self::restore_session) journaled under an
    /// explicit id (see [`open_session_as`](Self::open_session_as)): the
    /// migration path a router takes when it re-homes a dead node's
    /// session onto a survivor.
    ///
    /// # Errors
    ///
    /// Propagates analysis failures.
    #[allow(clippy::too_many_arguments)]
    pub fn restore_session_as(
        &mut self,
        program: Arc<Program>,
        func_name: &str,
        model: Arc<dyn CostModel>,
        sender_builtins: BuiltinRegistry,
        receiver_builtins: BuiltinRegistry,
        snapshot: &SessionSnapshot,
        journal_id: u64,
    ) -> Result<SessionId, IrError> {
        self.open_session_inner(
            program,
            func_name,
            model,
            sender_builtins,
            receiver_builtins,
            Some(snapshot),
            Some(journal_id),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn open_session_inner(
        &mut self,
        program: Arc<Program>,
        func_name: &str,
        model: Arc<dyn CostModel>,
        sender_builtins: BuiltinRegistry,
        receiver_builtins: BuiltinRegistry,
        restore: Option<&SessionSnapshot>,
        journal_id: Option<u64>,
    ) -> Result<SessionId, IrError> {
        let kind = model.kind();
        let model_name = model.name().to_string();
        let handler = PartitionedHandler::analyze_cached_with_limits(
            Arc::clone(&program),
            func_name,
            model,
            &self.cache,
            self.config.limits,
        )?;
        if let Some(snap) = restore {
            if snap.active != handler.plan().active() {
                handler.install_plan_reason(&snap.active, PlanReason::Install);
            }
            for pse in 0..handler.plan().len().min(64) {
                handler.plan().set_profiled(pse, snap.flags & (1u64 << pse) != 0);
            }
        }
        handler.select_engine(self.config.engine);
        let reconfig = ReconfigUnit::new(Arc::clone(handler.analysis()), kind, self.config.trigger)
            .with_obs(Arc::clone(handler.obs()))
            .with_plan_watch(handler.plan().clone());
        let auto = self.config.auto_model.map(|selector_config| {
            // The deployment model seeds the selector's notion of "live":
            // the first committed switch is measured against it.
            let initial = match kind {
                RuntimeCostKind::DataSize => ModelChoice::DataSize,
                RuntimeCostKind::ExecTime => ModelChoice::ExecTime,
            };
            AutoModel {
                selector: ModelSelector::new(initial, selector_config),
                cache: Arc::clone(&self.cache),
                limits: self.config.limits,
            }
        });
        let mut receiver_ctx = ExecCtx::with_builtins(&program, receiver_builtins);
        receiver_ctx.trace_digests = false;

        let id = self.sessions.len();
        let registry = handler.obs().registry();
        let panics_modulator = registry.counter("handler_panics_total", &[("side", "modulator")]);
        let panics_demodulator =
            registry.counter("handler_panics_total", &[("side", "demodulator")]);
        let quarantined_total = registry.counter("quarantined_total", &[]);
        let deadletter = Arc::new(DeadLetterRing::new(self.config.failure.deadletter_capacity));
        let degradation = DegradationController::new(
            Arc::clone(&handler),
            self.config.degrade_after,
            self.config.promote_after,
        );
        let journal =
            self.config.journal.as_ref().map(|j| (Arc::clone(j), journal_id.unwrap_or(id as u64)));
        if let Some((journal, jid)) = &journal {
            let _ = journal.append(JournalRecord::Open {
                session: *jid,
                func: func_name.to_string(),
                model: model_name,
            });
            let plan = handler.plan();
            let _ = journal.append(JournalRecord::PlanCommit {
                session: *jid,
                epoch: plan.epoch(),
                active: plan.active(),
                reason: "initial".into(),
            });
            if let Some(snap) = restore {
                let _ =
                    journal.append(JournalRecord::Ack { session: *jid, watermark: snap.watermark });
                let _ = journal.append(JournalRecord::Flags { session: *jid, mask: snap.flags });
                if let Some(gs) = &snap.guard {
                    let _ = journal.append(JournalRecord::Guard {
                        session: *jid,
                        prior_epoch: gs.prior_epoch,
                        epoch: gs.epoch,
                        remaining: gs.remaining,
                        prior_active: gs.prior_active.clone(),
                    });
                }
                for (active, ttl) in &snap.quarantined {
                    let _ = journal.append(JournalRecord::Quarantine {
                        session: *jid,
                        ttl: *ttl,
                        active: active.clone(),
                    });
                }
            }
        }
        let seq = restore.map(|s| s.watermark).unwrap_or(0);
        if let Some(snap) = restore {
            handler.obs().record(TraceEvent::Recovered {
                epoch: handler.plan().epoch(),
                watermark: snap.watermark,
            });
            self.recovered += 1;
            self.metrics.sessions_recovered.set(self.recovered as f64);
        }
        let mut guard = self.config.guard.map(PlanGuard::new);
        let mut quarantine = QuarantineList::new();
        if let Some(snap) = restore {
            quarantine = QuarantineList::restore(snap.quarantined.clone());
            handler.metrics().note_quarantine_size(quarantine.len());
            if let (Some(g), Some(gs)) = (guard.as_mut(), &snap.guard) {
                // Plan epochs restart in the new process: the watched
                // epoch is whatever the restore-install produced, and a
                // breach falls back to the journal-carried prior active
                // set (the old epochs no longer exist in plan retention).
                g.resume_canary(
                    gs.prior_epoch,
                    gs.prior_active.clone(),
                    handler.plan().epoch(),
                    gs.remaining,
                    snap.active.clone(),
                );
            }
        }
        let state = SessionState {
            modulator: handler.modulator(),
            demodulator: handler.demodulator(),
            reconfig,
            sender_builtins,
            receiver_ctx,
            seq,
            handler: Arc::clone(&handler),
            auto,
            degradation,
            deadletter: Arc::clone(&deadletter),
            journal,
            guard,
            quarantine,
            panics_modulator,
            panics_demodulator,
            quarantined_total,
        };

        let worker = id % self.workers.len();
        // Counts closed entries too: worker-side slots are positional
        // tombstones, so the next slot index is "entries ever assigned
        // to this worker", not the live count.
        let slot = self.sessions.iter().filter(|s| s.worker == worker).count();
        self.workers[worker].queue.push_control(Job::Open(Box::new(state)));
        self.sessions.push(SessionEntry {
            worker,
            slot,
            handler,
            deadletter,
            journal_id: journal_id.unwrap_or(id as u64),
            closed: false,
        });
        self.set_live_gauges();
        self.refresh_cache_metrics();
        Ok(id)
    }

    /// Closes `session` for good: tears down its worker slot, rejects
    /// anything still in (or later entering) its ingress path, drops its
    /// dead-letter ring from inspection, and journals a
    /// [`JournalRecord::Close`] so replay can never resurrect it. Runs
    /// behind any deliveries already queued (FIFO per worker), so the
    /// returned final ack watermark is exact.
    ///
    /// # Errors
    ///
    /// [`IrError::Unresolved`] for an unknown or already-closed session.
    pub fn close_session(&mut self, session: SessionId) -> Result<u64, IrError> {
        self.close_session_inner(session, true)
    }

    /// [`close_session`](Self::close_session) without retiring the
    /// journal tail: the local copy is torn down but the session's
    /// journaled state survives for whichever node hosts it next. This is
    /// the migration/orphan-reclaim path a router takes to retract a
    /// copy it has re-homed elsewhere.
    ///
    /// # Errors
    ///
    /// [`IrError::Unresolved`] for an unknown or already-closed session.
    pub fn evict_session(&mut self, session: SessionId) -> Result<u64, IrError> {
        self.close_session_inner(session, false)
    }

    fn close_session_inner(&mut self, session: SessionId, retire: bool) -> Result<u64, IrError> {
        let entry = self
            .sessions
            .get(session)
            .ok_or_else(|| IrError::Unresolved(format!("unknown session {session}")))?;
        if entry.closed {
            return Err(IrError::Unresolved(format!("session {session} is closed")));
        }
        let (reply, rx) = channel();
        self.workers[entry.worker].queue.push_control(Job::Close {
            slot: entry.slot,
            retire,
            reply,
        });
        let watermark =
            rx.recv().map_err(|_| IrError::Continuation("session worker stopped".into()))??;
        let journal_id = entry.journal_id;
        self.sessions[session].closed = true;
        if retire {
            self.metrics.closed_close.inc();
        } else {
            self.metrics.closed_evict.inc();
        }
        self.set_live_gauges();
        self.obs.record(TraceEvent::SessionClosed { session: journal_id, watermark });
        Ok(watermark)
    }

    fn set_live_gauges(&self) {
        let live = self.live_sessions() as f64;
        self.metrics.sessions_open.set(live);
        self.metrics.worker_slots_active.set(live);
    }

    /// Enqueues one delivery on the session's worker and returns
    /// immediately; resolve it with [`Pending::wait`]. Deliveries to the
    /// same session run in submission order; deliveries to sessions on
    /// different workers run concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Unresolved`] for an unknown session id and
    /// [`IrError::Continuation`] if the worker stopped.
    pub fn submit(
        &self,
        session: SessionId,
        make_event: impl FnOnce(&mut ExecCtx) -> Result<Vec<Value>, IrError> + Send + 'static,
    ) -> Result<Pending, IrError> {
        self.submit_classed(session, DeliveryClass::Continuation, make_event)
    }

    /// [`submit`](Self::submit) with an explicit shed class: under
    /// backpressure (a full ingress queue) a
    /// [`DeliveryClass::Continuation`] delivery is rejected with
    /// [`IrError::Overloaded`], while a [`DeliveryClass::Profiling`]
    /// delivery displaces the oldest queued profiling delivery (whose
    /// waiter then observes [`IrError::Overloaded`]). Every shed
    /// increments `shed_total{reason}` on the manager hub.
    ///
    /// # Errors
    ///
    /// [`IrError::Unresolved`] for an unknown session id and
    /// [`IrError::Overloaded`] when the delivery is rejected.
    pub fn submit_classed(
        &self,
        session: SessionId,
        class: DeliveryClass,
        make_event: impl FnOnce(&mut ExecCtx) -> Result<Vec<Value>, IrError> + Send + 'static,
    ) -> Result<Pending, IrError> {
        let entry = self
            .sessions
            .get(session)
            .ok_or_else(|| IrError::Unresolved(format!("unknown session {session}")))?;
        if entry.closed {
            return Err(IrError::Unresolved(format!("session {session} is closed")));
        }
        let (reply, rx) = channel();
        let job = Job::Deliver { slot: entry.slot, class, make_event: Box::new(make_event), reply };
        match self.workers[entry.worker].queue.push_deliver(job) {
            Ok(Ingress::Enqueued) => {}
            Ok(Ingress::ShedOldest) => {
                self.metrics.shed_oldest.inc();
                self.obs.record(TraceEvent::Shed { count: 1 });
            }
            Err(_rejected) => {
                self.metrics.shed_reject.inc();
                self.obs.record(TraceEvent::Shed { count: 1 });
                return Err(IrError::Overloaded(format!(
                    "session {session}: ingress queue full ({} jobs)",
                    self.config.ingress_capacity
                )));
            }
        }
        Ok(Pending { rx })
    }

    /// Two-phase install, step 1: asks the session's worker to validate
    /// `active` as a candidate plan, waiting at most `budget`. The step
    /// serializes behind in-flight deliveries (FIFO per worker), so the
    /// deadline genuinely bounds a busy or wedged endpoint; on timeout
    /// the candidate is counted as `plan_prepares_total{outcome=timeout}`
    /// and the serving plan is untouched.
    ///
    /// # Errors
    ///
    /// [`IrError::Unresolved`] for an unknown/closed session,
    /// [`IrError::Deadline`] on timeout, [`IrError::Continuation`] if the
    /// worker stopped.
    pub fn prepare_plan(
        &self,
        session: SessionId,
        active: &[PseId],
        budget: Duration,
    ) -> Result<PrepareOutcome, IrError> {
        let entry = self.live_entry(session)?;
        let (reply, rx) = channel();
        self.workers[entry.worker].queue.push_control(Job::Plan {
            slot: entry.slot,
            action: PlanAction::Prepare(active.to_vec()),
            reply,
        });
        match rx.recv_timeout(budget) {
            Ok(Ok(PlanResponse::Prepared(outcome))) => Ok(outcome),
            Ok(Ok(PlanResponse::Committed(_))) => {
                Err(IrError::Invalid("mismatched plan response".into()))
            }
            Ok(Err(e)) => Err(e),
            Err(RecvTimeoutError::Timeout) => {
                entry.handler.metrics().note_prepare("timeout");
                Err(IrError::Deadline(format!("plan prepare exceeded its {budget:?} budget")))
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(IrError::Continuation("session worker stopped".into()))
            }
        }
    }

    /// Two-phase install, step 2: installs a prepared candidate on the
    /// session's worker and opens its canary window (when the manager
    /// was configured [`SessionConfig::with_guard`]). Returns the new
    /// plan epoch (or the current one for a no-op commit).
    ///
    /// # Errors
    ///
    /// [`IrError::Unresolved`] for an unknown/closed session, validation
    /// or quarantine failures from the worker, [`IrError::Continuation`]
    /// if the worker stopped.
    pub fn commit_plan(&self, session: SessionId, active: &[PseId]) -> Result<u64, IrError> {
        let entry = self.live_entry(session)?;
        let (reply, rx) = channel();
        self.workers[entry.worker].queue.push_control(Job::Plan {
            slot: entry.slot,
            action: PlanAction::Commit(active.to_vec()),
            reply,
        });
        match rx.recv() {
            Ok(Ok(PlanResponse::Committed(epoch))) => Ok(epoch),
            Ok(Ok(PlanResponse::Prepared(_))) => {
                Err(IrError::Invalid("mismatched plan response".into()))
            }
            Ok(Err(e)) => Err(e),
            Err(_) => Err(IrError::Continuation("session worker stopped".into())),
        }
    }

    fn live_entry(&self, session: SessionId) -> Result<&SessionEntry, IrError> {
        let entry = self
            .sessions
            .get(session)
            .ok_or_else(|| IrError::Unresolved(format!("unknown session {session}")))?;
        if entry.closed {
            return Err(IrError::Unresolved(format!("session {session} is closed")));
        }
        Ok(entry)
    }

    /// Delivers one message through `session`, blocking for the outcome.
    ///
    /// # Errors
    ///
    /// Same as [`submit`](Self::submit), plus handler runtime errors.
    pub fn deliver(
        &self,
        session: SessionId,
        make_event: impl FnOnce(&mut ExecCtx) -> Result<Vec<Value>, IrError> + Send + 'static,
    ) -> Result<SessionOutcome, IrError> {
        self.submit(session, make_event)?.wait()
    }

    /// The session's analyzed handler (its plan, metrics hub, history).
    /// `None` for unknown *and* closed sessions — a closed copy's state
    /// is gone and must not be inspected or aggregated.
    pub fn handler(&self, session: SessionId) -> Option<&Arc<PartitionedHandler>> {
        self.sessions.get(session).filter(|s| !s.closed).map(|s| &s.handler)
    }

    /// The session's dead-letter ring: quarantined envelopes, oldest
    /// first (`mpart deadletter` renders this). `None` once closed.
    pub fn dead_letters(&self, session: SessionId) -> Option<Vec<DeadLetter>> {
        self.sessions.get(session).filter(|s| !s.closed).map(|s| s.deadletter.snapshot())
    }

    /// Deliveries shed at ingress queues (both policies combined).
    pub fn sheds(&self) -> u64 {
        self.metrics.shed_oldest.get() + self.metrics.shed_reject.get()
    }

    /// Sessions rebuilt from a journal snapshot in this process.
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Session slots ever opened, closed ones included — the valid id
    /// range for the per-session accessors. See
    /// [`live_sessions`](Self::live_sessions) for the live count.
    pub fn sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Sessions still open (worker slots actually held) — the value of
    /// the `worker_slots_active` gauge.
    pub fn live_sessions(&self) -> usize {
        self.sessions.iter().filter(|s| !s.closed).count()
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The shared analysis cache.
    pub fn cache(&self) -> &Arc<AnalysisCache> {
        &self.cache
    }

    /// Messages processed successfully across all sessions.
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// The manager's observability hub (dispatcher + cache gauges; each
    /// session's handler keeps its own hub).
    pub fn obs(&self) -> &Arc<ObsHub> {
        self.refresh_cache_metrics();
        &self.obs
    }

    /// Re-publishes the cache's hit/miss/eviction counts as gauges.
    pub fn refresh_cache_metrics(&self) {
        self.metrics.cache_hits.set(self.cache.hits() as f64);
        self.metrics.cache_misses.set(self.cache.misses() as f64);
        self.metrics.cache_evictions.set(self.cache.evictions() as f64);
        self.metrics.cache_second_entry_hits.set(self.cache.second_entry_hits() as f64);
        self.metrics.cache_second_entry_misses.set(self.cache.second_entry_misses() as f64);
    }

    /// Stops every worker, drains their queues, and returns the total
    /// number of messages processed.
    pub fn shutdown(mut self) -> u64 {
        self.stop_workers();
        self.processed.load(Ordering::Relaxed)
    }

    fn stop_workers(&mut self) {
        for worker in &self.workers {
            worker.queue.push_control(Job::Stop);
        }
        for worker in &mut self.workers {
            if let Some(thread) = worker.thread.take() {
                let _ = thread.join();
            }
        }
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpart_cost::DataSizeModel;
    use mpart_ir::parse::parse_program;
    use mpart_ir::types::ElemType;

    const SRC: &str = r#"
        class Job { n: int, buff: ref }

        fn compress(j) {
            out = new Job
            out.n = 16
            b = new byte[16]
            out.buff = b
            return out
        }

        fn ingest(event) {
            ok = event instanceof Job
            if ok == 0 goto skip
            j = (Job) event
            small = call compress(j)
            native archive(small)
            return 1
        skip:
            return 0
        }
    "#;

    fn receiver_builtins() -> BuiltinRegistry {
        let mut b = BuiltinRegistry::new();
        b.register_native("archive", 3, |_, _| Ok(Value::Null));
        b
    }

    fn manager(workers: usize, trigger: TriggerPolicy) -> SessionManager {
        SessionManager::new(SessionConfig::default().with_workers(workers).with_trigger(trigger))
    }

    fn open_n(manager: &mut SessionManager, program: &Arc<Program>, n: usize) -> Vec<SessionId> {
        (0..n)
            .map(|_| {
                manager
                    .open_session(
                        Arc::clone(program),
                        "ingest",
                        Arc::new(DataSizeModel::new()),
                        BuiltinRegistry::new(),
                        receiver_builtins(),
                    )
                    .unwrap()
            })
            .collect()
    }

    fn job_event(program: Arc<Program>, bytes: usize) -> EventFn {
        Box::new(move |ctx| {
            let classes = &program.classes;
            let class = classes.id("Job").unwrap();
            let decl = classes.decl(class);
            let j = ctx.heap.alloc_object(classes, class);
            let b = ctx.heap.alloc_array(ElemType::Byte, bytes);
            ctx.heap.set_field(j, decl.field("n").unwrap(), Value::Int(bytes as i64))?;
            ctx.heap.set_field(j, decl.field("buff").unwrap(), Value::Ref(b))?;
            Ok(vec![Value::Ref(j)])
        })
    }

    #[test]
    fn sessions_shard_across_workers_and_share_the_analysis() {
        let program = Arc::new(parse_program(SRC).unwrap());
        let mut mgr = manager(3, TriggerPolicy::Never);
        let ids = open_n(&mut mgr, &program, 8);
        assert_eq!(mgr.sessions(), 8);
        assert_eq!(mgr.workers(), 3);
        // One analysis, seven cache hits.
        assert_eq!((mgr.cache().misses(), mgr.cache().hits()), (1, 7));
        for &id in &ids {
            let out = mgr.deliver(id, job_event(Arc::clone(&program), 64)).unwrap();
            assert_eq!(out.ret, Some(Value::Int(1)));
            assert_eq!(out.seq, 1, "each session numbers its own stream");
        }
        // Cache gauges are mirrored on the manager hub.
        let snap = mgr.obs().registry().snapshot();
        let hits = snap
            .metrics
            .iter()
            .find(|m| m.name == "analysis_cache_hits")
            .expect("cache hit gauge registered");
        match hits.value {
            mpart_obs::MetricValue::Gauge(v) => assert!(v > 0.0, "hit gauge populated: {v}"),
            ref other => panic!("expected gauge, got {other:?}"),
        }
        assert_eq!(mgr.shutdown(), 8);
    }

    #[test]
    fn close_session_reclaims_the_slot_and_fences_late_deliveries() {
        let program = Arc::new(parse_program(SRC).unwrap());
        let journal = Arc::new(SessionJournal::in_memory());
        let mut mgr = SessionManager::new(
            SessionConfig::default()
                .with_workers(2)
                .with_trigger(TriggerPolicy::Never)
                .with_journal(Arc::clone(&journal)),
        );
        let ids = open_n(&mut mgr, &program, 4);
        for &id in &ids {
            mgr.deliver(id, job_event(Arc::clone(&program), 32)).unwrap();
        }
        assert_eq!(mgr.live_sessions(), 4);

        // Close one session mid-pool: the final watermark is its seq.
        let watermark = mgr.close_session(ids[1]).unwrap();
        assert_eq!(watermark, 1, "close reports the final ack watermark");
        assert_eq!(mgr.live_sessions(), 3);
        assert_eq!(mgr.sessions(), 4, "slots are positional, never reused");
        assert!(mgr.handler(ids[1]).is_none(), "closed session not inspectable");
        assert!(mgr.dead_letters(ids[1]).is_none());

        // Late deliveries are fenced at both layers.
        let err = mgr.deliver(ids[1], job_event(Arc::clone(&program), 32)).unwrap_err();
        assert!(matches!(err, IrError::Unresolved(_)), "late delivery fenced: {err:?}");
        let err = mgr.close_session(ids[1]).unwrap_err();
        assert!(matches!(err, IrError::Unresolved(_)), "double close rejected: {err:?}");

        // The other sessions' slots are untouched — including a later
        // slot on the same worker as the closed one.
        for &id in &[ids[0], ids[2], ids[3]] {
            let out = mgr.deliver(id, job_event(Arc::clone(&program), 32)).unwrap();
            assert_eq!(out.seq, 2, "session {id} keeps its stream");
        }

        // Close journals a Close record; replay drops the session.
        assert!(!journal.replay().unwrap().contains_key(&(ids[1] as u64)));

        // Evict tears down locally but keeps the journal tail.
        let watermark = mgr.evict_session(ids[2]).unwrap();
        assert_eq!(watermark, 2);
        assert!(journal.replay().unwrap().contains_key(&(ids[2] as u64)));
        assert_eq!(mgr.live_sessions(), 2);

        // Gauges and counters track the live set.
        let snap = mgr.obs().registry().snapshot();
        let value = |name: &str| {
            snap.metrics
                .iter()
                .find(|m| m.identity() == name)
                .map(|m| match m.value {
                    mpart_obs::MetricValue::Counter(v) => v as f64,
                    mpart_obs::MetricValue::Gauge(v) => v,
                    ref other => panic!("unexpected metric value {other:?}"),
                })
                .unwrap_or_else(|| panic!("{name} registered"))
        };
        assert_eq!(value("worker_slots_active"), 2.0);
        assert_eq!(value("sessions_open"), 2.0);
        assert_eq!(value("sessions_closed_total{reason=\"close\"}"), 1.0);
        assert_eq!(value("sessions_closed_total{reason=\"evict\"}"), 1.0);
        let trace = mgr.obs().trace().snapshot();
        assert!(
            trace.iter().any(|r| matches!(
                r.event,
                TraceEvent::SessionClosed { session, watermark: 1 } if session == ids[1] as u64
            )),
            "close recorded a session_closed trace event"
        );
    }

    #[test]
    fn per_session_ordering_is_preserved_under_interleaving() {
        let program = Arc::new(parse_program(SRC).unwrap());
        let mut mgr = manager(2, TriggerPolicy::Never);
        let ids = open_n(&mut mgr, &program, 4);
        // Interleave submissions round-robin, then wait for everything.
        let mut pending: Vec<(SessionId, u64, Pending)> = Vec::new();
        for round in 1..=5u64 {
            for &id in &ids {
                let p = mgr.submit(id, job_event(Arc::clone(&program), 32)).unwrap();
                pending.push((id, round, p));
            }
        }
        for (id, round, p) in pending {
            let out = p.wait().unwrap();
            assert_eq!(out.seq, round, "session {id} saw its messages in order");
        }
        assert_eq!(mgr.processed(), 20);
    }

    #[test]
    fn sessions_adapt_independently() {
        let program = Arc::new(parse_program(SRC).unwrap());
        let mut mgr = manager(2, TriggerPolicy::Rate(1));
        let adapting = open_n(&mut mgr, &program, 2);
        // Drive only the first session with big payloads; it should
        // reconfigure away from shipping the raw event while the idle
        // session's plan stays at its initial epoch.
        for _ in 0..12 {
            mgr.deliver(adapting[0], job_event(Arc::clone(&program), 50_000)).unwrap();
        }
        let busy = mgr.handler(adapting[0]).unwrap();
        let idle = mgr.handler(adapting[1]).unwrap();
        assert!(busy.plan().epoch() > 1, "busy session reconfigured");
        assert_eq!(idle.plan().epoch(), 1, "idle session untouched");
    }

    #[test]
    fn auto_model_session_switches_and_reprices_through_the_cache() {
        use crate::reconfig::ModelSelectorConfig;
        let program = Arc::new(parse_program(SRC).unwrap());
        // Tiny work-per-byte: the handler's profiled work dwarfs the
        // normalized wire signal, so the selector should leave the
        // deployment-time data-size model for exec-time.
        let selector = ModelSelectorConfig::default()
            .with_work_per_byte(0.001)
            .with_min_messages(4)
            .with_dwell(2);
        let mut mgr = SessionManager::new(
            SessionConfig::default()
                .with_workers(1)
                .with_trigger(TriggerPolicy::Never)
                .with_auto_model(selector),
        );
        let id = mgr
            .open_session(
                Arc::clone(&program),
                "ingest",
                Arc::new(DataSizeModel::new()),
                BuiltinRegistry::new(),
                receiver_builtins(),
            )
            .unwrap();
        let mut switched_at = None;
        for i in 0..12u64 {
            let out = mgr.deliver(id, job_event(Arc::clone(&program), 16)).unwrap();
            if out.model_switched && switched_at.is_none() {
                switched_at = Some(i);
            }
            assert!(out.mod_work + out.demod_work > 0, "work profile populated");
        }
        assert!(switched_at.is_some(), "compute-bound workload switches the model");
        let handler = mgr.handler(id).unwrap();
        assert_eq!(handler.model().name(), "exec-time");
        // The switch is visible as a labeled counter on the session hub...
        let snap = handler.obs().registry().snapshot();
        assert_eq!(snap.counter_sum("model_switch_total"), 1);
        assert!(snap
            .get("model_switch_total", &[("from", "data-size"), ("to", "exec-time")])
            .is_some());
        // ...and as exactly one second cache entry: the re-pricing missed
        // once and never re-ran the analysis pipeline.
        assert_eq!(mgr.cache().second_entry_misses(), 1);
        // Both entries share one from-scratch analysis: the overall miss
        // count is the initial analyze plus the (cheap) re-pricing miss.
        assert_eq!(mgr.cache().misses(), 2);
        mgr.refresh_cache_metrics();
        let msnap = mgr.obs().registry().snapshot();
        assert!(msnap.get("analysis_cache_second_entry_misses", &[]).is_some());
        mgr.shutdown();
    }

    /// A handler whose receiver-side native panics on a magic value —
    /// the injected-fault stand-in for a buggy customization.
    const BOOM_SRC: &str = r#"
        fn boom(event) {
            native sink(event)
            return event
        }
    "#;

    fn boom_builtins() -> BuiltinRegistry {
        let mut b = BuiltinRegistry::new();
        b.register_native("sink", 1, |_, args| {
            if args.first() == Some(&Value::Int(13)) {
                panic!("injected sink panic");
            }
            Ok(Value::Null)
        });
        b
    }

    #[test]
    fn handler_panic_fails_only_the_envelope_and_degrades() {
        let program = Arc::new(parse_program(BOOM_SRC).unwrap());
        let mut mgr =
            SessionManager::new(SessionConfig::default().with_workers(1).with_degradation(2, 2));
        let id = mgr
            .open_session(
                Arc::clone(&program),
                "boom",
                Arc::new(DataSizeModel::new()),
                BuiltinRegistry::new(),
                boom_builtins(),
            )
            .unwrap();
        for v in 1..=3i64 {
            assert!(mgr.deliver(id, move |_| Ok(vec![Value::Int(v)])).is_ok());
        }
        // Two consecutive panics: each fails only its own envelope and the
        // second crosses the degradation threshold.
        for _ in 0..2 {
            let err = mgr.deliver(id, |_| Ok(vec![Value::Int(13)])).unwrap_err();
            assert!(matches!(err, IrError::HandlerPanic(_)), "caught, not crashed: {err}");
        }
        // The worker survived: the session keeps serving (entry cut).
        for v in 20..=22i64 {
            assert!(mgr.deliver(id, move |_| Ok(vec![Value::Int(v)])).is_ok());
        }
        let handler = mgr.handler(id).unwrap();
        let snap = handler.obs().registry().snapshot();
        assert_eq!(
            snap.get("handler_panics_total", &[("side", "demodulator")]),
            Some(&mpart_obs::MetricValue::Counter(2)),
        );
        assert_eq!(snap.counter_sum("degradations_total"), 1, "hysteresis degraded once");
        assert_eq!(snap.counter_sum("promotions_total"), 1, "successes re-promoted");
        // Both failed envelopes dead-lettered; nothing else did.
        let letters = mgr.dead_letters(id).unwrap();
        assert_eq!(letters.len(), 2);
        assert!(letters.iter().all(|l| l.kind == crate::failure::FailureKind::Panic));
        assert_eq!(letters.iter().map(|l| l.seq).collect::<Vec<_>>(), vec![4, 5]);
        mgr.shutdown();
    }

    #[test]
    fn backpressure_sheds_profiling_oldest_first_and_rejects_continuations() {
        let program = Arc::new(parse_program(SRC).unwrap());
        let mut mgr =
            SessionManager::new(SessionConfig::default().with_workers(1).with_ingress_capacity(2));
        let ids = open_n(&mut mgr, &program, 1);
        let id = ids[0];
        // Park the worker on a slow delivery so the queue backs up. The
        // started-channel makes the schedule deterministic: the burst below
        // only begins once the worker has popped the slow job.
        let (started_tx, started_rx) = channel::<()>();
        let slow = mgr
            .submit(id, {
                let program = Arc::clone(&program);
                move |ctx| {
                    let _ = started_tx.send(());
                    std::thread::sleep(Duration::from_millis(300));
                    job_event(program, 16)(ctx)
                }
            })
            .unwrap();
        started_rx.recv().unwrap();
        // Fill the queue with two profiling deliveries, then displace them
        // both: oldest-first, freshest samples win.
        let mut profiling = Vec::new();
        for _ in 0..4 {
            profiling.push(
                mgr.submit_classed(id, DeliveryClass::Profiling, {
                    let program = Arc::clone(&program);
                    move |ctx| job_event(program, 16)(ctx)
                })
                .unwrap(),
            );
        }
        // A continuation arriving at the still-full queue is rejected.
        let rejected = mgr.submit(id, {
            let program = Arc::clone(&program);
            move |ctx| job_event(program, 16)(ctx)
        });
        match rejected {
            Err(IrError::Overloaded(_)) => {}
            Err(other) => panic!("expected Overloaded, got {other}"),
            Ok(_) => panic!("expected rejection, continuation was accepted"),
        }
        assert_eq!(mgr.sheds(), 3, "two oldest-drops plus one rejection");
        // The displaced waiters observe the shed; the surviving two drain.
        let outcomes: Vec<_> = profiling.into_iter().map(Pending::wait).collect();
        assert_eq!(outcomes.iter().filter(|o| matches!(o, Err(IrError::Overloaded(_)))).count(), 2);
        assert_eq!(outcomes.iter().filter(|o| o.is_ok()).count(), 2);
        assert!(slow.wait().is_ok());
        let snap = mgr.obs().registry().snapshot();
        assert_eq!(
            snap.get("shed_total", &[("reason", "oldest_drop")]),
            Some(&mpart_obs::MetricValue::Counter(2)),
        );
        assert_eq!(
            snap.get("shed_total", &[("reason", "queue_full")]),
            Some(&mpart_obs::MetricValue::Counter(1)),
        );
        mgr.shutdown();
    }

    #[test]
    fn wait_deadline_times_out_a_stalled_delivery() {
        let program = Arc::new(parse_program(SRC).unwrap());
        let mut mgr = SessionManager::new(SessionConfig::default().with_workers(1));
        let ids = open_n(&mut mgr, &program, 1);
        let pending = mgr
            .submit(ids[0], {
                let program = Arc::clone(&program);
                move |ctx| {
                    std::thread::sleep(Duration::from_millis(200));
                    job_event(program, 16)(ctx)
                }
            })
            .unwrap();
        let err = pending.wait_deadline(Duration::from_millis(5)).unwrap_err();
        assert!(matches!(err, IrError::Deadline(_)), "{err}");
        mgr.shutdown();
    }

    #[test]
    fn journal_recovery_restores_sessions_with_zero_reanalysis() {
        let program = Arc::new(parse_program(SRC).unwrap());
        let journal = Arc::new(SessionJournal::in_memory());
        let config = SessionConfig::default()
            .with_workers(1)
            .with_trigger(TriggerPolicy::Rate(1))
            .with_journal(Arc::clone(&journal));
        let mut mgr = SessionManager::new(config.clone());
        let ids = open_n(&mut mgr, &program, 2);
        for _ in 0..10 {
            mgr.deliver(ids[0], job_event(Arc::clone(&program), 50_000)).unwrap();
        }
        mgr.deliver(ids[1], job_event(Arc::clone(&program), 16)).unwrap();
        let busy_active = mgr.handler(ids[0]).unwrap().plan().active();
        assert!(mgr.handler(ids[0]).unwrap().plan().epoch() > 1, "busy session reconfigured");
        let cache = Arc::clone(mgr.cache());
        mgr.shutdown();

        // "Restart": a fresh manager over the same cache replays the
        // journal. Every restore is a cache hit — zero re-analysis.
        let snapshots = journal.replay().unwrap();
        assert_eq!(snapshots[&0].watermark, 10);
        assert_eq!(snapshots[&0].active, busy_active, "journal captured the live cut");
        let misses_before = cache.misses();
        let hits_before = cache.hits();
        let mut restarted = SessionManager::with_shared_cache(config, cache);
        for snapshot in snapshots.values() {
            restarted
                .restore_session(
                    Arc::clone(&program),
                    "ingest",
                    Arc::new(DataSizeModel::new()),
                    BuiltinRegistry::new(),
                    receiver_builtins(),
                    snapshot,
                )
                .unwrap();
        }
        assert_eq!(restarted.cache().misses(), misses_before, "zero re-analysis on recovery");
        assert_eq!(restarted.cache().hits(), hits_before + 2);
        assert_eq!(restarted.recovered(), 2);
        assert_eq!(
            restarted.handler(0).unwrap().plan().active(),
            busy_active,
            "journaled active set reinstalled"
        );
        // Sequence numbering resumes past the journaled watermark.
        let out = restarted.deliver(0, job_event(Arc::clone(&program), 16)).unwrap();
        assert_eq!(out.seq, 11);
        restarted.shutdown();
    }

    #[test]
    fn unknown_session_and_handler_errors_are_reported() {
        let program = Arc::new(parse_program(SRC).unwrap());
        let mut mgr = manager(1, TriggerPolicy::Never);
        let ids = open_n(&mut mgr, &program, 1);
        assert!(mgr.deliver(99, |_| Ok(vec![])).is_err());
        // A failing event generator surfaces through the reply channel
        // and counts as a session error, not a dead worker.
        let err = mgr.deliver(ids[0], |_| Err(IrError::Invalid("boom".into())));
        assert!(err.is_err());
        let out = mgr.deliver(ids[0], job_event(Arc::clone(&program), 16)).unwrap();
        assert_eq!(out.ret, Some(Value::Int(1)));
    }
}
