//! The Runtime Reconfiguration Unit.
//!
//! "It invokes a max-flow algorithm to re-select the optimal partitioning
//! from the graph of PSEs when profiling data changes significantly.
//! Finally, it sends a new partitioning plan to the modulator side" (§2.5).
//!
//! The optimal partition is the s–t minimum cut of the Unit Graph with
//! PSE edges priced at their profiled runtime weights and all other edges
//! at infinity (see [`select_active_set`]). The unit may be placed with
//! the modulator, the demodulator, or a third party
//! ([`ReconfigPlacement`]); placement only affects where the computation
//! runs, not its result.

use std::sync::Arc;

use mpart_analysis::{HandlerAnalysis, StaticCost, ENTRY};
use mpart_cost::{CompositeModel, CostModel, DataSizeModel, ExecTimeModel, RuntimeCostKind};
use mpart_flow::{Dinic, INF};
use mpart_ir::IrError;
use mpart_obs::{pse_mask, Counter, Gauge, ModelTag, ObsHub, TraceEvent};

use crate::plan::PartitionPlan;
use crate::profile::{
    DemodMessageProfile, Ewma, ModMessageProfile, ProfileSnapshot, ProfilingUnit, TriggerPolicy,
};
use crate::PseId;

/// Where the Reconfiguration Unit runs (§2.5: "the location of the
/// reconfiguration unit is variable").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReconfigPlacement {
    /// Co-located with the modulator (sender).
    Modulator,
    /// Co-located with the demodulator (receiver) — the default, since the
    /// receiver owns the handler.
    #[default]
    Demodulator,
    /// A third party, appropriate "when repartitioning requires large
    /// amounts of computation".
    ThirdParty,
}

/// Selects the minimum-weight cut of the Unit Graph, returning the PSE ids
/// whose split flags should be set.
///
/// Graph construction: nodes are the handler's instructions plus a source
/// (the synthetic entry) and a super-sink; each stop node connects to the
/// super-sink with infinite capacity; each Unit Graph edge gets its PSE's
/// `weight` or infinity when it is not a PSE.
///
/// # Errors
///
/// Returns [`IrError::Continuation`] if no finite cut exists (cannot
/// happen for analyses produced by `ConvexCut`, which guarantees a finite
/// candidate on every path — this guards against inconsistent inputs).
pub fn select_active_set(
    analysis: &HandlerAnalysis,
    weights: &[u64],
) -> Result<Vec<PseId>, IrError> {
    let n = analysis.ug.len();
    let source = n; // stands in for ENTRY
    let sink = n + 1;
    let mut dinic = Dinic::new(n + 2);

    // Cap weights so that summing them can never reach INF.
    let cap_of = |pse: PseId| -> u64 { weights.get(pse).copied().unwrap_or(0).min(INF / 1024) };

    let mut handles = Vec::new(); // (pse, handle, from-node)
                                  // Entry edge.
    let entry_to = analysis.ug.start();
    match analysis.pses().iter().position(|p| p.edge.from == ENTRY && p.edge.to == entry_to) {
        Some(pse) => {
            let h = dinic.add_edge(source, entry_to, cap_of(pse));
            handles.push((pse, h, source));
        }
        None => {
            dinic.add_edge(source, entry_to, INF);
        }
    }

    // Real edges.
    for e in analysis.ug.edges() {
        match analysis.pse_for_edge(e) {
            Some(pse) => {
                let h = dinic.add_edge(e.from, e.to, cap_of(pse));
                handles.push((pse, h, e.from));
            }
            None => {
                dinic.add_edge(e.from, e.to, INF);
            }
        }
    }
    // Stop nodes drain into the super-sink.
    for s in analysis.stops.iter() {
        dinic.add_edge(s, sink, INF);
    }

    let flow = dinic.max_flow(source, sink);
    if flow >= INF {
        return Err(IrError::Continuation(
            "no finite cut separates the start node from the stop nodes".into(),
        ));
    }
    let side = dinic.min_cut_source_side(source);
    let mut active: Vec<PseId> = handles
        .iter()
        .filter(|(_, h, from)| dinic.edge_in_cut(*h, &side, *from))
        .map(|(pse, _, _)| *pse)
        .collect();
    active.sort_unstable();
    active.dedup();
    Ok(active)
}

/// Computes per-PSE weights from profiled statistics under the given cost
/// model kind, falling back to static costs for unprofiled PSEs.
///
/// * [`RuntimeCostKind::DataSize`]: weight is the smoothed payload size in
///   bytes.
/// * [`RuntimeCostKind::ExecTime`]: weight is
///   `max(w_mod/speed_mod, (W_total − w_mod)/speed_demod)` in
///   microseconds — the §4.2 `max(T_mod, T_demod)` per-message balance
///   objective evaluated for *every* candidate edge from the single
///   profiled execution (work-to-edge plus measured total work).
pub fn runtime_weights(
    analysis: &HandlerAnalysis,
    kind: RuntimeCostKind,
    snapshot: &ProfileSnapshot,
) -> Vec<u64> {
    runtime_weights_with(analysis, kind, snapshot, 0.0)
}

/// Like [`runtime_weights`], additionally charging each side
/// `serialize_work_per_byte × payload size` of marshalling work when
/// pricing a candidate split under the execution-time model ("as well as
/// the actual data sizes passed across the network", §4.2).
pub fn runtime_weights_with(
    analysis: &HandlerAnalysis,
    kind: RuntimeCostKind,
    snapshot: &ProfileSnapshot,
    serialize_work_per_byte: f64,
) -> Vec<u64> {
    runtime_weights_opts(
        analysis,
        kind,
        snapshot,
        WeightOptions { serialize_work_per_byte, frequency_weighted: false },
    )
}

/// Options for [`runtime_weights_opts`].
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightOptions {
    /// Marshalling work charged per payload byte on each side (exec-time
    /// model only).
    pub serialize_work_per_byte: f64,
    /// Scale each PSE's cost by its observed traversal frequency — the
    /// §2.3 path-sensitive optimization. The min cut then minimizes the
    /// *expected* cost per message instead of the per-traversal cost,
    /// which matters when target paths have very different hit rates
    /// (e.g. a filter that rejects most events).
    pub frequency_weighted: bool,
}

/// Fully-parameterized weight computation; see [`runtime_weights`].
pub fn runtime_weights_opts(
    analysis: &HandlerAnalysis,
    kind: RuntimeCostKind,
    snapshot: &ProfileSnapshot,
    options: WeightOptions,
) -> Vec<u64> {
    let serialize_work_per_byte = options.serialize_work_per_byte;
    let freq = |pse: PseId| -> f64 {
        if !options.frequency_weighted || snapshot.messages == 0 {
            return 1.0;
        }
        (snapshot.traversals[pse] as f64 / snapshot.messages as f64).min(1.0)
    };
    let static_weight = |pse: PseId| -> u64 {
        match &analysis.pses()[pse].static_cost {
            StaticCost::Known(k) => *k,
            StaticCost::LowerBounded { det, .. } => *det,
            StaticCost::Infinite => INF,
        }
    };
    (0..analysis.pses().len())
        .map(|pse| match kind {
            RuntimeCostKind::DataSize => snapshot.size[pse]
                .map(|s| (s * freq(pse)).round() as u64)
                .unwrap_or_else(|| static_weight(pse)),
            RuntimeCostKind::ExecTime => {
                let (Some(w_mod), Some(total)) = (snapshot.mod_work[pse], snapshot.total_work)
                else {
                    return static_weight(pse);
                };
                let speed_mod = snapshot.speed_mod.unwrap_or(1.0).max(1e-9);
                let speed_demod = snapshot.speed_demod.unwrap_or(1.0).max(1e-9);
                let ser = serialize_work_per_byte * snapshot.size[pse].unwrap_or(0.0);
                let w_demod = (total - w_mod).max(0.0);
                let t = ((w_mod + ser) / speed_mod).max((w_demod + ser) / speed_demod);
                // Scale seconds to microseconds for integer weights.
                (t * freq(pse) * 1e6).round() as u64
            }
        })
        .collect()
}

/// A proposed plan change emitted by the Reconfiguration Unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanUpdate {
    /// PSE ids whose split flags should be set (all others cleared).
    pub active: Vec<PseId>,
    /// The weights that produced this plan (diagnostics).
    pub weights: Vec<u64>,
}

/// The Runtime Reconfiguration Unit: owns the profiling statistics and
/// re-runs the min-cut when feedback triggers fire.
#[derive(Debug)]
pub struct ReconfigUnit {
    analysis: std::sync::Arc<HandlerAnalysis>,
    kind: RuntimeCostKind,
    profiling: ProfilingUnit,
    trigger: TriggerPolicy,
    placement: ReconfigPlacement,
    serialize_work_per_byte: f64,
    frequency_weighted: bool,
    last_weights: Option<Vec<u64>>,
    messages_since: u64,
    reconfigurations: u64,
    /// Plan watched for epoch bumps the unit did not initiate (degradation
    /// fallback, operator installs); see [`with_plan_watch`](Self::with_plan_watch).
    watch: Option<PartitionPlan>,
    /// The newest epoch the unit's owner has acknowledged as one of *our*
    /// (or an expected) installs.
    expected_epoch: u64,
    obs: Option<ReconfigObs>,
}

/// Instruments registered by the Reconfiguration Unit on a shared hub.
#[derive(Debug)]
struct ReconfigObs {
    hub: std::sync::Arc<ObsHub>,
    reconfigurations: Counter,
    feedback_resets: Counter,
    cut_weight: Gauge,
}

impl ReconfigUnit {
    /// Creates a unit for `analysis` under cost-model `kind`.
    pub fn new(
        analysis: std::sync::Arc<HandlerAnalysis>,
        kind: RuntimeCostKind,
        trigger: TriggerPolicy,
    ) -> Self {
        let n = analysis.pses().len();
        ReconfigUnit {
            analysis,
            kind,
            profiling: ProfilingUnit::new(n, 0.5),
            trigger,
            placement: ReconfigPlacement::default(),
            serialize_work_per_byte: 0.0,
            frequency_weighted: false,
            last_weights: None,
            messages_since: 0,
            reconfigurations: 0,
            watch: None,
            expected_epoch: 0,
            obs: None,
        }
    }

    /// Sets where the unit notionally runs (diagnostics only; computation
    /// is identical).
    pub fn with_placement(mut self, placement: ReconfigPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Accounts marshalling work (per wire byte, both sides) when pricing
    /// candidate splits under the execution-time model.
    pub fn with_serialize_cost(mut self, work_per_byte: f64) -> Self {
        self.serialize_work_per_byte = work_per_byte;
        self
    }

    /// Weights PSE costs by observed traversal frequency (§2.3's
    /// path-sensitive optimization): the min cut then minimizes expected
    /// cost per message.
    pub fn with_frequency_weighting(mut self, on: bool) -> Self {
        self.frequency_weighted = on;
        self
    }

    /// Registers the unit's instruments (`reconfigurations_total`,
    /// `feedback_window_resets_total`, `reconfig_cut_weight`) on `hub` and
    /// records every decision as a [`TraceEvent::Reconfig`].
    pub fn with_obs(mut self, hub: std::sync::Arc<ObsHub>) -> Self {
        let registry = hub.registry();
        self.obs = Some(ReconfigObs {
            reconfigurations: registry.counter("reconfigurations_total", &[]),
            feedback_resets: registry.counter("feedback_window_resets_total", &[]),
            cut_weight: registry.gauge("reconfig_cut_weight", &[]),
            hub,
        });
        self
    }

    /// Watches `plan` for epoch bumps the unit did not initiate.
    ///
    /// Plans can be switched behind the unit's back — the degradation
    /// controller installing the entry cut, an operator install. Profiled
    /// feedback accumulated under the superseded plan (split ratios, EWMA
    /// windows, the rate trigger's message count) then describes a plan
    /// that no longer exists, and without a reset the very next
    /// `maybe_reconfigure` could fire spuriously from that stale window.
    /// With a watch installed, an unacknowledged epoch advance clears the
    /// feedback window first (see
    /// [`acknowledge_epoch`](Self::acknowledge_epoch)).
    pub fn with_plan_watch(mut self, plan: PartitionPlan) -> Self {
        self.expected_epoch = plan.epoch();
        self.watch = Some(plan);
        self
    }

    /// Marks `epoch` (and everything older) as an expected plan install —
    /// one this unit produced, or one its owner deliberately applied.
    /// Expected installs do not reset the feedback window.
    pub fn acknowledge_epoch(&mut self, epoch: u64) {
        self.expected_epoch = self.expected_epoch.max(epoch);
    }

    /// Detects an unacknowledged plan switch and, if one happened, resets
    /// the feedback window so EWMA state from the superseded plan cannot
    /// trigger an immediate spurious reconfiguration. Returns `true` when
    /// a reset occurred.
    fn reset_if_plan_switched(&mut self) -> bool {
        let Some(watch) = &self.watch else {
            return false;
        };
        let epoch = watch.epoch();
        if epoch <= self.expected_epoch {
            return false;
        }
        self.expected_epoch = epoch;
        self.messages_since = 0;
        self.profiling.reset_window();
        // Re-baseline the diff trigger at the current weights: "change"
        // is measured from the moment of the switch, not from the last
        // feedback under the old plan.
        self.last_weights = Some(self.current_weights());
        if let Some(obs) = &self.obs {
            obs.feedback_resets.inc();
            obs.hub.record(TraceEvent::FeedbackReset { epoch });
        }
        true
    }

    /// Swaps the unit onto a re-priced analysis under a new cost-model
    /// `kind` — the Reconfiguration-Unit half of a runtime model switch
    /// (the handler half is `PartitionedHandler::reprice`).
    ///
    /// The feedback window resets exactly as for an external plan switch
    /// ([`with_plan_watch`](Self::with_plan_watch)): EWMA state and the
    /// rate trigger's message count were gathered under the *old*
    /// pricing, and letting them stand would let stale feedback fire an
    /// immediate spurious re-selection (or, symmetrically, an immediate
    /// re-switch back — model flapping). The diff trigger re-baselines at
    /// the current weights *as priced by the new model*, so "change" is
    /// measured from the moment of the switch.
    pub fn switch_model(&mut self, analysis: Arc<HandlerAnalysis>, kind: RuntimeCostKind) {
        debug_assert_eq!(
            analysis.pses().len(),
            self.analysis.pses().len(),
            "a re-priced analysis keeps the PSE set"
        );
        self.analysis = analysis;
        self.kind = kind;
        self.messages_since = 0;
        self.profiling.reset_window();
        self.last_weights = Some(self.current_weights());
        if let Some(obs) = &self.obs {
            obs.feedback_resets.inc();
            let epoch = self.watch.as_ref().map(|p| p.epoch()).unwrap_or(self.expected_epoch);
            obs.hub.record(TraceEvent::FeedbackReset { epoch });
        }
    }

    /// The cost-model kind currently steering weight computation.
    pub fn kind(&self) -> RuntimeCostKind {
        self.kind
    }

    /// Replaces the EWMA smoothing factor (default 0.5). Smaller values
    /// damp noisy profiles; larger values adapt faster.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        let n = self.analysis.pses().len();
        self.profiling = ProfilingUnit::new(n, alpha);
        self
    }

    /// The unit's placement.
    pub fn placement(&self) -> ReconfigPlacement {
        self.placement
    }

    /// Number of plan re-selections performed so far.
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// Read access to the owned profiling unit.
    pub fn profiling(&self) -> &ProfilingUnit {
        &self.profiling
    }

    /// Feeds one message's modulator-side profile.
    pub fn record_mod(&mut self, profile: ModMessageProfile) {
        self.profiling.record_mod(profile);
        self.messages_since += 1;
    }

    /// Feeds one message's demodulator-side profile.
    pub fn record_demod(&mut self, profile: DemodMessageProfile) {
        self.profiling.record_demod(profile);
    }

    /// Feeds loose per-PSE observations (the demodulator's suffix
    /// profiling samples).
    pub fn record_samples(&mut self, samples: &[crate::profile::PseSample]) {
        self.profiling.record_samples(samples);
    }

    /// Checks the feedback trigger and, if it fires and the weights moved,
    /// re-selects the optimal partition.
    ///
    /// # Errors
    ///
    /// Propagates [`select_active_set`] failures.
    pub fn maybe_reconfigure(&mut self) -> Result<Option<PlanUpdate>, IrError> {
        if self.reset_if_plan_switched() {
            return Ok(None);
        }
        let window = self.messages_since;
        let weights = self.current_weights();
        let max_rel_change = match &self.last_weights {
            None => f64::INFINITY,
            Some(last) => weights
                .iter()
                .zip(last)
                .map(|(&w, &l)| {
                    let base = l.max(1) as f64;
                    ((w as f64 - l as f64).abs()) / base
                })
                .fold(0.0, f64::max),
        };
        if !self.trigger.fires(self.messages_since, max_rel_change) {
            return Ok(None);
        }
        self.messages_since = 0;
        self.last_weights = Some(weights.clone());
        let active = select_active_set(&self.analysis, &weights)?;
        self.reconfigurations += 1;
        self.observe_decision(&active, &weights, window);
        Ok(Some(PlanUpdate { active, weights }))
    }

    /// Records one produced [`PlanUpdate`] on the registered hub.
    fn observe_decision(&self, active: &[PseId], weights: &[u64], window: u64) {
        let Some(obs) = &self.obs else {
            return;
        };
        let cut_weight: f64 =
            active.iter().filter_map(|&p| weights.get(p)).map(|&w| w as f64).sum();
        obs.reconfigurations.inc();
        obs.cut_weight.set(cut_weight);
        obs.hub.record(TraceEvent::Reconfig {
            active_mask: pse_mask(active),
            cut_weight,
            messages: window,
        });
    }

    /// Per-PSE weights under the current statistics and options.
    fn current_weights(&self) -> Vec<u64> {
        runtime_weights_opts(
            &self.analysis,
            self.kind,
            &self.profiling.snapshot(),
            WeightOptions {
                serialize_work_per_byte: self.serialize_work_per_byte,
                frequency_weighted: self.frequency_weighted,
            },
        )
    }

    /// Unconditionally re-selects the plan from current statistics.
    ///
    /// # Errors
    ///
    /// Propagates [`select_active_set`] failures.
    pub fn force_reconfigure(&mut self) -> Result<PlanUpdate, IrError> {
        let window = self.messages_since;
        let weights = self.current_weights();
        self.messages_since = 0;
        self.last_weights = Some(weights.clone());
        let active = select_active_set(&self.analysis, &weights)?;
        self.reconfigurations += 1;
        self.observe_decision(&active, &weights, window);
        Ok(PlanUpdate { active, weights })
    }
}

/// Tunables for the post-commit canary window (DESIGN.md §16).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Envelopes the guard watches after a commit before promoting.
    pub canary: u64,
    /// Allowed regression over the pre-switch baseline, in percent: an
    /// error-rate rise of more than `breach_pct / 100` absolute, or a mean
    /// per-envelope work growth beyond `1 + breach_pct / 100` relative,
    /// rolls the plan back.
    pub breach_pct: f64,
    /// Reconfiguration evaluations a quarantined active set stays on the
    /// blacklist before it may be re-picked.
    pub quarantine_decay: u32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig { canary: 16, breach_pct: 25.0, quarantine_decay: 32 }
    }
}

/// Error/work accumulators over a stretch of envelopes, comparable
/// between the pre-switch baseline and the canary window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Envelopes observed.
    pub envelopes: u64,
    /// Envelopes that erred (handler trap, validation failure).
    pub errors: u64,
    /// Total work units (latency proxy) across observed envelopes.
    pub work: u64,
}

impl GuardStats {
    fn record(&mut self, ok: bool, work: u64) {
        self.envelopes += 1;
        self.errors += u64::from(!ok);
        self.work = self.work.saturating_add(work);
    }

    /// Fraction of observed envelopes that erred (0 when empty).
    pub fn error_rate(&self) -> f64 {
        if self.envelopes == 0 {
            0.0
        } else {
            self.errors as f64 / self.envelopes as f64
        }
    }

    /// Mean work units per envelope (0 when empty).
    pub fn mean_work(&self) -> f64 {
        if self.envelopes == 0 {
            0.0
        } else {
            self.work as f64 / self.envelopes as f64
        }
    }
}

/// What the guard concluded from one observed envelope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardVerdict {
    /// No canary in progress; the envelope fed the baseline.
    Idle,
    /// Canary in progress, no breach yet; `remaining` more envelopes
    /// until promotion.
    Watching {
        /// Envelopes left in the window.
        remaining: u64,
    },
    /// The canary window completed without a breach: the plan is trusted
    /// and its window statistics become the new baseline.
    Promoted {
        /// The promoted plan's epoch.
        epoch: u64,
    },
    /// The guard breached: the owner must reinstall the prior plan and
    /// quarantine the offender.
    Rollback {
        /// Epoch serving before the breaching commit.
        prior_epoch: u64,
        /// Active set serving before the breaching commit (the rollback
        /// target when plan retention no longer holds `prior_epoch`).
        prior_active: Vec<PseId>,
        /// The breaching plan's epoch.
        from_epoch: u64,
        /// The breaching active set (to quarantine).
        active: Vec<PseId>,
        /// Envelopes observed before the breach fired.
        observed: u64,
    },
}

/// One in-flight canary window.
#[derive(Debug, Clone)]
struct CanaryWindow {
    prior_epoch: u64,
    prior_active: Vec<PseId>,
    epoch: u64,
    active: Vec<PseId>,
    remaining: u64,
    window: GuardStats,
    baseline: GuardStats,
}

/// Watches the first K envelopes after a plan commit and compares their
/// error rate and mean work against the pre-switch baseline; a breach
/// demands rollback (tentpole part 2). Outside a canary the guard simply
/// accumulates the serving plan's baseline.
#[derive(Debug)]
pub struct PlanGuard {
    config: GuardConfig,
    baseline: GuardStats,
    canary: Option<CanaryWindow>,
}

impl PlanGuard {
    /// Creates an idle guard.
    pub fn new(config: GuardConfig) -> Self {
        PlanGuard { config, baseline: GuardStats::default(), canary: None }
    }

    /// The guard's tunables.
    pub fn config(&self) -> GuardConfig {
        self.config
    }

    /// Whether a canary window is in progress.
    pub fn in_canary(&self) -> bool {
        self.canary.is_some()
    }

    /// The in-flight window as `(prior_epoch, prior_active, epoch,
    /// remaining)` for journaling, or `None` when idle.
    pub fn canary_state(&self) -> Option<(u64, &[PseId], u64, u64)> {
        self.canary
            .as_ref()
            .map(|c| (c.prior_epoch, c.prior_active.as_slice(), c.epoch, c.remaining))
    }

    /// Opens a canary window for the commit of `epoch`/`active`, retaining
    /// `prior_epoch`/`prior_active` as the rollback target. The current
    /// baseline is snapshotted for comparison; a window already in
    /// progress is replaced.
    pub fn begin_canary(
        &mut self,
        prior_epoch: u64,
        prior_active: Vec<PseId>,
        epoch: u64,
        active: Vec<PseId>,
    ) {
        self.canary = Some(CanaryWindow {
            prior_epoch,
            prior_active,
            epoch,
            active,
            remaining: self.config.canary.max(1),
            window: GuardStats::default(),
            baseline: self.baseline,
        });
    }

    /// Reopens a journaled canary window after restart/migration. The
    /// pre-crash baseline is gone, so the resumed window compares against
    /// an empty baseline (strictest interpretation: any regression
    /// breaches).
    pub fn resume_canary(
        &mut self,
        prior_epoch: u64,
        prior_active: Vec<PseId>,
        epoch: u64,
        remaining: u64,
        active: Vec<PseId>,
    ) {
        self.canary = Some(CanaryWindow {
            prior_epoch,
            prior_active,
            epoch,
            active,
            remaining: remaining.max(1),
            window: GuardStats::default(),
            baseline: self.baseline,
        });
    }

    /// Feeds one envelope outcome (`ok`, its work units) and returns the
    /// guard's verdict. On [`GuardVerdict::Rollback`] the window is closed
    /// and the baseline keeps describing the prior plan; on
    /// [`GuardVerdict::Promoted`] the window statistics replace the
    /// baseline.
    pub fn observe(&mut self, ok: bool, work: u64) -> GuardVerdict {
        let Some(canary) = &mut self.canary else {
            self.baseline.record(ok, work);
            return GuardVerdict::Idle;
        };
        canary.window.record(ok, work);
        canary.remaining = canary.remaining.saturating_sub(1);
        let margin = self.config.breach_pct / 100.0;
        let error_breach = canary.window.errors > 0
            && canary.window.error_rate() > canary.baseline.error_rate() + margin;
        // Mean work needs a few samples before it is meaningful, and a
        // comparison target at all.
        let work_samples = self.config.canary.clamp(1, 4);
        let work_breach = canary.baseline.envelopes > 0
            && canary.window.envelopes >= work_samples
            && canary.window.mean_work() > canary.baseline.mean_work() * (1.0 + margin);
        if error_breach || work_breach {
            let canary = self.canary.take().expect("canary in progress");
            return GuardVerdict::Rollback {
                prior_epoch: canary.prior_epoch,
                prior_active: canary.prior_active,
                from_epoch: canary.epoch,
                active: canary.active,
                observed: canary.window.envelopes,
            };
        }
        if canary.remaining == 0 {
            let canary = self.canary.take().expect("canary in progress");
            self.baseline = canary.window;
            return GuardVerdict::Promoted { epoch: canary.epoch };
        }
        GuardVerdict::Watching { remaining: canary.remaining }
    }
}

/// A decaying blacklist of active sets that breached their canary: the
/// owner consults it before applying a [`PlanUpdate`] so the selector
/// cannot immediately re-pick a just-rolled-back plan. Entries expire
/// after a fixed number of [`decay`](Self::decay) calls (one per
/// reconfiguration evaluation that produced an update).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineList {
    entries: Vec<(Vec<PseId>, u32)>,
}

impl QuarantineList {
    /// An empty list.
    pub fn new() -> Self {
        QuarantineList::default()
    }

    /// Rebuilds a list from journaled `(active, ttl)` entries.
    pub fn restore(entries: Vec<(Vec<PseId>, u32)>) -> Self {
        let mut list = QuarantineList::new();
        for (active, ttl) in entries {
            list.quarantine(&active, ttl);
        }
        list
    }

    /// Blacklists `active` for `ttl` decay steps (refreshes the ttl if
    /// already present). A zero ttl is ignored.
    pub fn quarantine(&mut self, active: &[PseId], ttl: u32) {
        if ttl == 0 {
            return;
        }
        let key = normalized(active);
        match self.entries.iter_mut().find(|(set, _)| *set == key) {
            Some((_, existing)) => *existing = (*existing).max(ttl),
            None => self.entries.push((key, ttl)),
        }
    }

    /// Whether `active` is currently blacklisted.
    pub fn contains(&self, active: &[PseId]) -> bool {
        let key = normalized(active);
        self.entries.iter().any(|(set, _)| *set == key)
    }

    /// Ages every entry by one step, dropping the expired.
    pub fn decay(&mut self) {
        for (_, ttl) in &mut self.entries {
            *ttl -= 1;
        }
        self.entries.retain(|(_, ttl)| *ttl > 0);
    }

    /// Current entries as `(active, remaining-ttl)` for journaling.
    pub fn entries(&self) -> &[(Vec<PseId>, u32)] {
        &self.entries
    }

    /// Number of blacklisted sets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the blacklist is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Active sets compare as sorted id lists regardless of input order.
fn normalized(active: &[PseId]) -> Vec<PseId> {
    let mut key = active.to_vec();
    key.sort_unstable();
    key.dedup();
    key
}

/// A runtime cost-model operating point the [`ModelSelector`] can choose.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelChoice {
    /// Pure [`DataSizeModel`]: the workload is communication-bound.
    DataSize,
    /// Pure [`ExecTimeModel`]: the workload is compute-bound.
    ExecTime,
    /// A [`CompositeModel`] blend for the middle band, with weights
    /// quantized to quarter steps (see
    /// [`ModelSelector::observe`]) so retuning produces a small, bounded
    /// family of cache entries instead of one per EWMA wiggle.
    Composite {
        /// Weight of the data-size component (in `[0.25, 0.75]`).
        data_weight: f64,
        /// Weight of the exec-time component (`1 − data_weight`).
        exec_weight: f64,
    },
}

impl ModelChoice {
    /// Short stable label, used as the `from`/`to` label value of the
    /// `model_switch_total` counter.
    pub fn label(&self) -> &'static str {
        match self {
            ModelChoice::DataSize => "data-size",
            ModelChoice::ExecTime => "exec-time",
            ModelChoice::Composite { .. } => "composite",
        }
    }

    /// The trace-event tag for this choice.
    pub fn tag(&self) -> ModelTag {
        match self {
            ModelChoice::DataSize => ModelTag::DataSize,
            ModelChoice::ExecTime => ModelTag::ExecTime,
            ModelChoice::Composite { .. } => ModelTag::Composite,
        }
    }

    /// How profiled statistics translate into weights under this choice
    /// (composites follow their dominant component, like
    /// [`CompositeModel::kind`]).
    pub fn kind(&self) -> RuntimeCostKind {
        match *self {
            ModelChoice::DataSize => RuntimeCostKind::DataSize,
            ModelChoice::ExecTime => RuntimeCostKind::ExecTime,
            ModelChoice::Composite { data_weight, exec_weight } => {
                if data_weight >= exec_weight {
                    RuntimeCostKind::DataSize
                } else {
                    RuntimeCostKind::ExecTime
                }
            }
        }
    }

    /// Builds the concrete cost model for this choice.
    pub fn instantiate(&self) -> Arc<dyn CostModel> {
        match *self {
            ModelChoice::DataSize => Arc::new(DataSizeModel::new()),
            ModelChoice::ExecTime => Arc::new(ExecTimeModel::new()),
            ModelChoice::Composite { data_weight, exec_weight } => Arc::new(CompositeModel::new(
                Arc::new(DataSizeModel::new()),
                data_weight,
                Arc::new(ExecTimeModel::new()),
                exec_weight,
            )),
        }
    }
}

/// Tuning for a [`ModelSelector`].
#[derive(Debug, Clone, Copy)]
pub struct ModelSelectorConfig {
    /// Work units one wire byte is considered equivalent to, normalizing
    /// the envelope-byte EWMA against the work-unit EWMA. Calibrate to
    /// the deployment's link: a slow radio justifies a larger value.
    pub work_per_byte: f64,
    /// Ratio one signal must exceed the other by before the selector
    /// leaves the composite middle band for a pure model (must be > 1;
    /// the gap between `1/hysteresis` and `hysteresis` is the flap
    /// guard's dead zone).
    pub hysteresis: f64,
    /// Consecutive evaluations a new choice must persist before the
    /// selector commits to it (debounces single-message spikes).
    pub dwell: u64,
    /// Messages observed before the selector renders any opinion (EWMAs
    /// need samples to mean anything).
    pub min_messages: u64,
    /// Smoothing factor of the selector's own envelope-byte EWMA.
    pub alpha: f64,
}

impl Default for ModelSelectorConfig {
    fn default() -> Self {
        ModelSelectorConfig {
            work_per_byte: 1.0,
            hysteresis: 2.0,
            dwell: 3,
            min_messages: 8,
            alpha: 0.3,
        }
    }
}

impl ModelSelectorConfig {
    /// Sets the byte→work normalization factor.
    pub fn with_work_per_byte(mut self, v: f64) -> Self {
        self.work_per_byte = v;
        self
    }

    /// Sets the hysteresis ratio (values ≤ 1 are clamped to just above).
    pub fn with_hysteresis(mut self, v: f64) -> Self {
        self.hysteresis = v.max(1.0 + 1e-9);
        self
    }

    /// Sets the dwell count (minimum 1).
    pub fn with_dwell(mut self, v: u64) -> Self {
        self.dwell = v.max(1);
        self
    }

    /// Sets the warm-up message count.
    pub fn with_min_messages(mut self, v: u64) -> Self {
        self.min_messages = v;
        self
    }
}

/// Watches the feedback signals the Runtime Profiling Unit already
/// gathers — smoothed envelope bytes per message against smoothed total
/// work units per message — and decides when the live cost model no
/// longer matches the workload.
///
/// The paper fixes the cost model at deployment time (§2.6: the model is
/// "the only application-level knowledge" the system needs); this
/// selector closes the remaining loop. A workload whose messages are
/// expensive to ship but cheap to process should be priced by
/// [`DataSizeModel`]; one that is cheap to ship but expensive to process
/// by [`ExecTimeModel`]; the band between them by a [`CompositeModel`]
/// blend. Crossing between regimes requires beating the hysteresis ratio
/// and then surviving `dwell` consecutive evaluations, so a single
/// outlier message can never flip the model.
///
/// The selector only *decides*; the owner performs the switch
/// (`PartitionedHandler::reprice` + [`ReconfigUnit::switch_model`] +
/// plan re-selection). See `SessionState::deliver` for the wired-up
/// path.
#[derive(Debug, Clone)]
pub struct ModelSelector {
    config: ModelSelectorConfig,
    bytes: Ewma,
    observed: u64,
    current: ModelChoice,
    candidate: Option<ModelChoice>,
    streak: u64,
    switches: u64,
}

impl ModelSelector {
    /// Creates a selector that considers `initial` the live choice.
    pub fn new(initial: ModelChoice, config: ModelSelectorConfig) -> Self {
        ModelSelector {
            bytes: Ewma::new(config.alpha.clamp(1e-6, 1.0)),
            config,
            observed: 0,
            current: initial,
            candidate: None,
            streak: 0,
            switches: 0,
        }
    }

    /// The choice the selector currently considers live.
    pub fn current(&self) -> ModelChoice {
        self.current
    }

    /// Committed switches so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Feeds one delivered message's wire size plus the profiling
    /// snapshot, returning `Some(choice)` when the selector commits to a
    /// different model (the caller then performs the switch).
    pub fn observe(&mut self, wire_bytes: u64, snapshot: &ProfileSnapshot) -> Option<ModelChoice> {
        self.bytes.update(wire_bytes as f64);
        self.observed += 1;
        if self.observed < self.config.min_messages {
            return None;
        }
        let work = snapshot.total_work?;
        let comms = self.bytes.value()? * self.config.work_per_byte;
        let hysteresis = self.config.hysteresis.max(1.0 + 1e-9);
        let choice = if work > comms * hysteresis {
            ModelChoice::ExecTime
        } else if comms > work * hysteresis {
            ModelChoice::DataSize
        } else {
            let total = comms + work;
            if total <= 0.0 {
                return None;
            }
            // Quantize to quarter steps inside [0.25, 0.75]: retuning
            // yields at most three distinct composites (and so at most
            // three cache entries), not one per EWMA wiggle.
            let data_weight = ((comms / total) * 4.0).round().clamp(1.0, 3.0) / 4.0;
            ModelChoice::Composite { data_weight, exec_weight: 1.0 - data_weight }
        };
        if choice == self.current {
            self.candidate = None;
            self.streak = 0;
            return None;
        }
        match self.candidate {
            Some(c) if c == choice => self.streak += 1,
            _ => {
                self.candidate = Some(choice);
                self.streak = 1;
            }
        }
        if self.streak < self.config.dwell.max(1) {
            return None;
        }
        self.current = choice;
        self.candidate = None;
        self.streak = 0;
        self.switches += 1;
        Some(choice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PseSample;
    use mpart_analysis::analyze;
    use mpart_cost::DataSizeModel;
    use mpart_ir::parse::parse_program;
    use std::sync::Arc;

    const SRC: &str = r#"
        class ImageData { width: int, buff: ref }
        fn push(event) {
            z0 = event instanceof ImageData
            if z0 == 0 goto skip
            r2 = (ImageData) event
            r4 = call resize(r2, 100, 100)
            native display_image(r4)
            return
        skip:
            return
        }
    "#;

    fn analysis() -> Arc<HandlerAnalysis> {
        let program = parse_program(SRC).unwrap();
        Arc::new(analyze(&program, "push", &DataSizeModel::new(), Default::default()).unwrap())
    }

    #[test]
    fn min_cut_picks_cheapest_cut_per_path() {
        let ha = analysis();
        // Three PSEs: entry (raw event), post-resize, skip-return.
        // Make the post-resize edge cheap: the cut should split there on
        // the main path and at the free skip edge on the filter path.
        let entry = ha.pses().iter().position(|p| p.edge.is_entry()).unwrap();
        let mut weights = vec![0u64; ha.pses().len()];
        weights[entry] = 1000;
        for (i, p) in ha.pses().iter().enumerate() {
            if !p.edge.is_entry() {
                weights[i] = if p.inter.is_empty() { 0 } else { 10 };
            }
        }
        let active = select_active_set(&ha, &weights).unwrap();
        assert!(!active.contains(&entry), "expensive entry not cut: {active:?}");
        // Validity: the returned set covers every path.
        let plan = crate::plan::PartitionPlan::new(ha.pses().len());
        plan.install(&active);
        plan.validate_cut(&ha).unwrap();
    }

    #[test]
    fn expensive_downstream_prefers_entry() {
        let ha = analysis();
        let entry = ha.pses().iter().position(|p| p.edge.is_entry()).unwrap();
        let mut weights = vec![10_000u64; ha.pses().len()];
        weights[entry] = 1;
        // Skip edge stays free so the filter path uses it.
        for (i, p) in ha.pses().iter().enumerate() {
            if p.inter.is_empty() && !p.edge.is_entry() {
                weights[i] = 0;
            }
        }
        let active = select_active_set(&ha, &weights).unwrap();
        assert!(active.contains(&entry), "{active:?}");
    }

    #[test]
    fn runtime_weights_fall_back_to_static() {
        let ha = analysis();
        let unit = ProfilingUnit::new(ha.pses().len(), 0.5);
        let weights = runtime_weights(&ha, RuntimeCostKind::DataSize, &unit.snapshot());
        assert_eq!(weights.len(), ha.pses().len());
        // Skip edge (empty INTER) statically costs 0.
        let skip = ha.pses().iter().position(|p| p.inter.is_empty()).unwrap();
        assert_eq!(weights[skip], 0);
    }

    #[test]
    fn reconfigures_when_sizes_flip() {
        let ha = analysis();
        let entry = ha.pses().iter().position(|p| p.edge.is_entry()).unwrap();
        let main =
            ha.pses().iter().position(|p| !p.edge.is_entry() && !p.inter.is_empty()).unwrap();
        let mut unit =
            ReconfigUnit::new(Arc::clone(&ha), RuntimeCostKind::DataSize, TriggerPolicy::Rate(1));

        // Phase 1: big raw event, small processed result -> split late.
        for _ in 0..5 {
            unit.record_mod(ModMessageProfile {
                samples: vec![
                    PseSample {
                        pse: entry,
                        mod_work: 0,
                        payload_bytes: Some(40_000),
                        was_split: false,
                    },
                    PseSample {
                        pse: main,
                        mod_work: 50,
                        payload_bytes: Some(10_000),
                        was_split: true,
                    },
                ],
                split: main,
                mod_work: 50,
                t_mod: None,
            });
        }
        let update = unit.maybe_reconfigure().unwrap().expect("trigger fires");
        assert!(update.active.contains(&main), "{update:?}");
        assert!(!update.active.contains(&entry));

        // Phase 2: small raw event (upsampling case) -> ship raw, split at entry.
        for _ in 0..20 {
            unit.record_mod(ModMessageProfile {
                samples: vec![
                    PseSample {
                        pse: entry,
                        mod_work: 0,
                        payload_bytes: Some(6_400),
                        was_split: false,
                    },
                    PseSample {
                        pse: main,
                        mod_work: 50,
                        payload_bytes: Some(25_600),
                        was_split: true,
                    },
                ],
                split: main,
                mod_work: 50,
                t_mod: None,
            });
        }
        let update2 = unit.maybe_reconfigure().unwrap().expect("trigger fires again");
        assert!(update2.active.contains(&entry), "{update2:?}");
        assert_eq!(unit.reconfigurations(), 2);
    }

    #[test]
    fn diff_trigger_suppresses_stable_feedback() {
        let ha = analysis();
        let main =
            ha.pses().iter().position(|p| !p.edge.is_entry() && !p.inter.is_empty()).unwrap();
        let mut unit =
            ReconfigUnit::new(Arc::clone(&ha), RuntimeCostKind::DataSize, TriggerPolicy::Diff(0.5));
        let feed = |unit: &mut ReconfigUnit, bytes: u64| {
            unit.record_mod(ModMessageProfile {
                samples: vec![PseSample {
                    pse: main,
                    mod_work: 10,
                    payload_bytes: Some(bytes),
                    was_split: true,
                }],
                split: main,
                mod_work: 10,
                t_mod: None,
            });
        };
        feed(&mut unit, 1000);
        // First call always fires (no prior weights).
        assert!(unit.maybe_reconfigure().unwrap().is_some());
        for _ in 0..10 {
            feed(&mut unit, 1010);
            assert!(unit.maybe_reconfigure().unwrap().is_none(), "stable data");
        }
        for _ in 0..10 {
            feed(&mut unit, 40_000);
        }
        assert!(unit.maybe_reconfigure().unwrap().is_some(), "big shift fires");
    }

    #[test]
    fn frequency_weighting_prefers_filtered_paths() {
        // A filter rejects 90% of events. Shipping raw costs 1000 B on
        // every message; splitting late costs 5000 B but only for the 10%
        // that pass. Per-traversal weights pick "ship raw"; expected-cost
        // weights pick the late split.
        let ha = analysis();
        let entry = ha.pses().iter().position(|p| p.edge.is_entry()).unwrap();
        let main =
            ha.pses().iter().position(|p| !p.edge.is_entry() && !p.inter.is_empty()).unwrap();
        let mut unit =
            ReconfigUnit::new(Arc::clone(&ha), RuntimeCostKind::DataSize, TriggerPolicy::Rate(1))
                .with_frequency_weighting(true);
        let mut plain =
            ReconfigUnit::new(Arc::clone(&ha), RuntimeCostKind::DataSize, TriggerPolicy::Rate(1));
        for i in 0..40 {
            let passes = i % 10 == 0;
            let mut samples = vec![PseSample {
                pse: entry,
                mod_work: 0,
                payload_bytes: Some(1000),
                was_split: false,
            }];
            if passes {
                samples.push(PseSample {
                    pse: main,
                    mod_work: 50,
                    payload_bytes: Some(5000),
                    was_split: true,
                });
            }
            let profile = ModMessageProfile {
                samples,
                split: if passes { main } else { entry },
                mod_work: 50,
                t_mod: None,
            };
            unit.record_mod(profile.clone());
            plain.record_mod(profile);
        }
        let weighted = unit.force_reconfigure().unwrap();
        let unweighted = plain.force_reconfigure().unwrap();
        assert!(
            weighted.active.contains(&main),
            "expected-cost weighting splits late: {weighted:?}"
        );
        assert!(
            unweighted.active.contains(&entry),
            "per-traversal weighting ships raw: {unweighted:?}"
        );
    }

    #[test]
    fn external_plan_switch_resets_feedback_window() {
        // Regression: feedback accumulated under a superseded plan must
        // not trigger an immediate reconfiguration right after an epoch
        // bump the unit did not initiate (e.g. the degradation fallback).
        let ha = analysis();
        let main =
            ha.pses().iter().position(|p| !p.edge.is_entry() && !p.inter.is_empty()).unwrap();
        let plan = crate::plan::PartitionPlan::new(ha.pses().len());
        plan.install(&[main]);
        let mut unit =
            ReconfigUnit::new(Arc::clone(&ha), RuntimeCostKind::DataSize, TriggerPolicy::Rate(3))
                .with_plan_watch(plan.clone());
        unit.acknowledge_epoch(plan.epoch());
        let feed = |unit: &mut ReconfigUnit| {
            unit.record_mod(ModMessageProfile {
                samples: vec![PseSample {
                    pse: main,
                    mod_work: 10,
                    payload_bytes: Some(1000),
                    was_split: true,
                }],
                split: main,
                mod_work: 10,
                t_mod: None,
            });
        };
        // Enough messages for the rate trigger to be primed...
        for _ in 0..3 {
            feed(&mut unit);
        }
        assert!(unit.profiling().pending_mod_profiles() > 0);
        // ...then the plan switches behind the unit's back (epoch bump).
        let external_epoch = plan.install(&[main]);
        assert!(external_epoch > 0);
        // The primed window is discarded instead of firing.
        assert!(unit.maybe_reconfigure().unwrap().is_none(), "stale window must not fire");
        assert_eq!(unit.profiling().pending_mod_profiles(), 0, "stale mod halves dropped");
        assert_eq!(unit.reconfigurations(), 0);
        // Feedback gathered under the *new* plan fires normally.
        for _ in 0..3 {
            feed(&mut unit);
        }
        assert!(unit.maybe_reconfigure().unwrap().is_some(), "fresh window fires");
        assert_eq!(unit.reconfigurations(), 1);
        // Acknowledged installs (our own updates) do not reset the window.
        for _ in 0..3 {
            feed(&mut unit);
        }
        let own_epoch = plan.install(&[main]);
        unit.acknowledge_epoch(own_epoch);
        assert!(unit.maybe_reconfigure().unwrap().is_some(), "acknowledged install keeps window");
    }

    #[test]
    fn without_plan_watch_behavior_is_unchanged() {
        let ha = analysis();
        let main =
            ha.pses().iter().position(|p| !p.edge.is_entry() && !p.inter.is_empty()).unwrap();
        let mut unit =
            ReconfigUnit::new(Arc::clone(&ha), RuntimeCostKind::DataSize, TriggerPolicy::Rate(1));
        unit.record_mod(ModMessageProfile {
            samples: vec![PseSample {
                pse: main,
                mod_work: 10,
                payload_bytes: Some(1000),
                was_split: true,
            }],
            split: main,
            mod_work: 10,
            t_mod: None,
        });
        assert!(unit.maybe_reconfigure().unwrap().is_some());
    }

    #[test]
    fn placement_is_recorded() {
        let ha = analysis();
        let unit = ReconfigUnit::new(ha, RuntimeCostKind::DataSize, TriggerPolicy::Rate(1))
            .with_placement(ReconfigPlacement::ThirdParty);
        assert_eq!(unit.placement(), ReconfigPlacement::ThirdParty);
    }

    fn snap(total_work: f64) -> ProfileSnapshot {
        ProfileSnapshot {
            size: vec![],
            mod_work: vec![],
            traversals: vec![],
            total_work: Some(total_work),
            speed_mod: None,
            speed_demod: None,
            messages: 0,
        }
    }

    #[test]
    fn selector_switches_to_exec_time_for_compute_bound_workloads() {
        let config = ModelSelectorConfig::default().with_min_messages(4).with_dwell(2);
        let mut sel = ModelSelector::new(ModelChoice::DataSize, config);
        // Warm-up: no opinion regardless of how lopsided the signal is.
        for _ in 0..3 {
            assert_eq!(sel.observe(10, &snap(10_000.0)), None);
        }
        // First post-warm-up evaluation starts the dwell streak...
        assert_eq!(sel.observe(10, &snap(10_000.0)), None);
        // ...and the second commits.
        assert_eq!(sel.observe(10, &snap(10_000.0)), Some(ModelChoice::ExecTime));
        assert_eq!(sel.current(), ModelChoice::ExecTime);
        assert_eq!(sel.switches(), 1);
        // Steady state: no further proposals while the signal holds.
        assert_eq!(sel.observe(10, &snap(10_000.0)), None);
        assert_eq!(sel.switches(), 1);
    }

    #[test]
    fn selector_switches_to_data_size_for_comms_bound_workloads() {
        let config = ModelSelectorConfig::default().with_min_messages(1).with_dwell(1);
        let mut sel = ModelSelector::new(ModelChoice::ExecTime, config);
        assert_eq!(sel.observe(50_000, &snap(5.0)), Some(ModelChoice::DataSize));
    }

    #[test]
    fn selector_middle_band_retunes_quantized_composite() {
        let config = ModelSelectorConfig::default().with_min_messages(1).with_dwell(1);
        let mut sel = ModelSelector::new(ModelChoice::DataSize, config);
        // comms == work: dead zone -> an even composite blend.
        let got = sel.observe(100, &snap(100.0)).expect("middle band switches");
        let ModelChoice::Composite { data_weight, exec_weight } = got else {
            panic!("expected composite, got {got:?}");
        };
        assert_eq!(data_weight, 0.5);
        assert_eq!(exec_weight, 0.5);
        // Weights quantize to quarter steps: every reachable composite is
        // one of three, so model retuning cannot mint unbounded cache
        // entries.
        for bytes in [40u64, 70, 100, 160, 400] {
            let mut s = ModelSelector::new(ModelChoice::ExecTime, config);
            if let Some(ModelChoice::Composite { data_weight, .. }) = s.observe(bytes, &snap(100.0))
            {
                assert!(
                    [0.25, 0.5, 0.75].contains(&data_weight),
                    "unquantized weight {data_weight}"
                );
            }
        }
    }

    #[test]
    fn selector_dwell_guards_against_flapping() {
        // Regression (model-switch flap guard): a single outlier message
        // must never flip the model, and an interrupted streak restarts.
        let config = ModelSelectorConfig::default().with_min_messages(1).with_dwell(3);
        let mut sel = ModelSelector::new(ModelChoice::DataSize, config);
        let compute = snap(100_000.0);
        let comms = snap(1.0);
        // Two compute-bound spikes: streak at 2, still DataSize.
        assert_eq!(sel.observe(1, &compute), None);
        assert_eq!(sel.observe(1, &compute), None);
        // One comms-bound message agrees with the current model: the
        // candidate streak resets entirely.
        assert_eq!(sel.observe(100_000, &comms), None);
        // Two more compute-bound spikes still do not commit (streak 2/3)...
        assert_eq!(sel.observe(1, &compute), None);
        assert_eq!(sel.observe(1, &compute), None);
        // ...only the third consecutive one does.
        assert_eq!(sel.observe(1, &compute), Some(ModelChoice::ExecTime));
        assert_eq!(sel.switches(), 1);
    }

    #[test]
    fn selector_needs_profiled_work_before_deciding() {
        let config = ModelSelectorConfig::default().with_min_messages(1).with_dwell(1);
        let mut sel = ModelSelector::new(ModelChoice::DataSize, config);
        let mut no_work = snap(0.0);
        no_work.total_work = None;
        assert_eq!(sel.observe(100_000, &no_work), None, "no work signal, no opinion");
        assert_eq!(sel.switches(), 0);
    }

    #[test]
    fn model_choice_dominant_kind_and_labels() {
        assert_eq!(ModelChoice::DataSize.kind(), RuntimeCostKind::DataSize);
        assert_eq!(ModelChoice::ExecTime.kind(), RuntimeCostKind::ExecTime);
        let comp = ModelChoice::Composite { data_weight: 0.25, exec_weight: 0.75 };
        assert_eq!(comp.kind(), RuntimeCostKind::ExecTime);
        assert_eq!(comp.label(), "composite");
        assert_eq!(comp.tag().as_str(), "composite");
        assert_eq!(ModelChoice::DataSize.instantiate().name(), "data-size");
        // The instantiated composite folds its exact weights into the
        // cache key, so two retunings never share a cache entry.
        let a = ModelChoice::Composite { data_weight: 0.25, exec_weight: 0.75 }.instantiate();
        let b = ModelChoice::Composite { data_weight: 0.5, exec_weight: 0.5 }.instantiate();
        assert_ne!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn switch_model_resets_feedback_window() {
        // Regression (mirrors `external_plan_switch_resets_feedback_window`):
        // a model switch invalidates the EWMA window gathered under the old
        // pricing; letting it stand would fire an immediate spurious
        // re-selection — or flap straight back to the old model.
        let ha = analysis();
        let main =
            ha.pses().iter().position(|p| !p.edge.is_entry() && !p.inter.is_empty()).unwrap();
        let mut unit =
            ReconfigUnit::new(Arc::clone(&ha), RuntimeCostKind::DataSize, TriggerPolicy::Rate(3));
        let feed = |unit: &mut ReconfigUnit| {
            unit.record_mod(ModMessageProfile {
                samples: vec![PseSample {
                    pse: main,
                    mod_work: 10,
                    payload_bytes: Some(1000),
                    was_split: true,
                }],
                split: main,
                mod_work: 10,
                t_mod: None,
            });
        };
        // Prime the rate trigger under the old model...
        for _ in 0..3 {
            feed(&mut unit);
        }
        assert!(unit.profiling().pending_mod_profiles() > 0);
        // ...then switch models. The primed window is discarded.
        unit.switch_model(Arc::clone(&ha), RuntimeCostKind::ExecTime);
        assert_eq!(unit.kind(), RuntimeCostKind::ExecTime);
        assert_eq!(unit.profiling().pending_mod_profiles(), 0, "stale mod halves dropped");
        assert!(unit.maybe_reconfigure().unwrap().is_none(), "stale window must not fire");
        assert_eq!(unit.reconfigurations(), 0);
        // Feedback gathered under the new model fires normally.
        for _ in 0..3 {
            feed(&mut unit);
        }
        assert!(unit.maybe_reconfigure().unwrap().is_some(), "fresh window fires");
        assert_eq!(unit.reconfigurations(), 1);
    }

    #[test]
    fn guard_promotes_after_clean_canary() {
        let mut guard = PlanGuard::new(GuardConfig { canary: 3, ..GuardConfig::default() });
        // Baseline under the old plan.
        for _ in 0..8 {
            assert_eq!(guard.observe(true, 10), GuardVerdict::Idle);
        }
        guard.begin_canary(1, vec![0], 2, vec![1]);
        assert!(guard.in_canary());
        assert_eq!(guard.observe(true, 10), GuardVerdict::Watching { remaining: 2 });
        assert_eq!(guard.observe(true, 11), GuardVerdict::Watching { remaining: 1 });
        assert_eq!(guard.observe(true, 10), GuardVerdict::Promoted { epoch: 2 });
        assert!(!guard.in_canary());
        // Promotion replaced the baseline with the window statistics.
        assert_eq!(guard.observe(true, 10), GuardVerdict::Idle);
    }

    #[test]
    fn guard_rolls_back_on_error_breach() {
        let mut guard =
            PlanGuard::new(GuardConfig { canary: 8, breach_pct: 25.0, ..GuardConfig::default() });
        for _ in 0..10 {
            guard.observe(true, 10); // clean baseline: 0% errors
        }
        guard.begin_canary(3, vec![0, 2], 4, vec![1]);
        assert_eq!(guard.observe(true, 10), GuardVerdict::Watching { remaining: 7 });
        // One error over two envelopes → 50% > 0% + 25% margin.
        let verdict = guard.observe(false, 10);
        assert_eq!(
            verdict,
            GuardVerdict::Rollback {
                prior_epoch: 3,
                prior_active: vec![0, 2],
                from_epoch: 4,
                active: vec![1],
                observed: 2,
            }
        );
        assert!(!guard.in_canary());
    }

    #[test]
    fn guard_rolls_back_on_work_breach() {
        let mut guard =
            PlanGuard::new(GuardConfig { canary: 8, breach_pct: 25.0, ..GuardConfig::default() });
        for _ in 0..10 {
            guard.observe(true, 100);
        }
        guard.begin_canary(1, vec![0], 2, vec![1]);
        // Work breach waits for min(canary, 4) samples, then compares
        // mean work: 200 > 100 * 1.25.
        for _ in 0..3 {
            assert!(matches!(guard.observe(true, 200), GuardVerdict::Watching { .. }));
        }
        assert!(matches!(guard.observe(true, 200), GuardVerdict::Rollback { .. }));
    }

    #[test]
    fn guard_without_baseline_skips_work_breach() {
        // A resumed canary after restart has no baseline; elevated work
        // alone must not breach (nothing to compare against), but errors
        // still do.
        let mut guard = PlanGuard::new(GuardConfig { canary: 4, ..GuardConfig::default() });
        guard.resume_canary(1, vec![0], 2, 4, vec![1]);
        for _ in 0..3 {
            assert!(matches!(guard.observe(true, 1_000_000), GuardVerdict::Watching { .. }));
        }
        assert!(matches!(guard.observe(true, 1_000_000), GuardVerdict::Promoted { epoch: 2 }));
        guard.resume_canary(1, vec![0], 2, 4, vec![1]);
        assert!(matches!(guard.observe(false, 10), GuardVerdict::Rollback { .. }));
    }

    #[test]
    fn quarantine_suppresses_until_decay() {
        let mut list = QuarantineList::new();
        list.quarantine(&[2, 0], 2);
        // Order-insensitive membership.
        assert!(list.contains(&[0, 2]));
        assert!(!list.contains(&[0]));
        assert_eq!(list.len(), 1);
        list.decay();
        assert!(list.contains(&[0, 2]), "survives one step of a two-step ttl");
        list.decay();
        assert!(!list.contains(&[0, 2]), "expired after ttl decay steps");
        assert!(list.is_empty());
        // Zero ttl is a no-op; refresh takes the max ttl.
        list.quarantine(&[1], 0);
        assert!(list.is_empty());
        list.quarantine(&[1], 1);
        list.quarantine(&[1], 5);
        list.decay();
        assert!(list.contains(&[1]), "refresh extended the ttl");
        let restored = QuarantineList::restore(list.entries().to_vec());
        assert!(restored.contains(&[1]));
    }
}
