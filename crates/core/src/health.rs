//! Link health tracking and graceful degradation.
//!
//! When the link to the receiver is down — or the transport's error
//! budget is exhausted — an optimized partition plan is worse than
//! useless: the modulator keeps spending sender CPU preparing
//! continuations that cannot be delivered, and profiling feedback that
//! would correct the plan cannot arrive either. The degradation ladder is:
//!
//! 1. **Healthy** — the optimized plan (whatever the Reconfiguration Unit
//!    last selected) is active.
//! 2. **Degraded** — after `failure_budget` consecutive delivery failures,
//!    the modulator falls back to the *trivial plan*: the entry cut, which
//!    ships the raw event and runs the entire handler at the receiver
//!    (local execution). The entry cut is always a valid cut, needs no
//!    profiling data, and keeps sender-side work minimal while the link
//!    flaps.
//! 3. **Re-promotion** — after `recovery_streak` consecutive successful
//!    deliveries, the stashed optimized plan is reinstalled and the
//!    Reconfiguration Unit resumes tuning from there.
//!
//! Both thresholds give the transitions hysteresis: a single lost message
//! does not thrash the plan, and a single lucky delivery during an outage
//! does not re-promote prematurely.

use std::sync::Arc;
use std::time::Instant;

use mpart_obs::PlanReason;

use crate::partitioned::PartitionedHandler;
use crate::PseId;

/// Health of the delivery path, with hysteresis on both transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Deliveries are succeeding; the optimized plan is trusted.
    Healthy,
    /// The failure budget is exhausted; operate on the trivial plan.
    Degraded,
}

/// Consecutive-outcome counter driving the [`HealthState`] transitions.
#[derive(Debug, Clone)]
pub struct LinkHealth {
    state: HealthState,
    failure_budget: u32,
    recovery_streak: u32,
    consecutive_failures: u32,
    consecutive_successes: u32,
}

impl LinkHealth {
    /// Degrade after `failure_budget` consecutive failures; recover after
    /// `recovery_streak` consecutive successes (both clamped to ≥ 1).
    pub fn new(failure_budget: u32, recovery_streak: u32) -> Self {
        LinkHealth {
            state: HealthState::Healthy,
            failure_budget: failure_budget.max(1),
            recovery_streak: recovery_streak.max(1),
            consecutive_failures: 0,
            consecutive_successes: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Consecutive failures recorded since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// Consecutive successes recorded since the last failure.
    pub fn consecutive_successes(&self) -> u32 {
        self.consecutive_successes
    }

    /// Whether the path is currently degraded.
    pub fn is_degraded(&self) -> bool {
        self.state == HealthState::Degraded
    }

    /// Records a delivery failure; returns `true` on the Healthy →
    /// Degraded transition.
    pub fn record_failure(&mut self) -> bool {
        self.consecutive_successes = 0;
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        if self.state == HealthState::Healthy && self.consecutive_failures >= self.failure_budget {
            self.state = HealthState::Degraded;
            return true;
        }
        false
    }

    /// Records a delivery success; returns `true` on the Degraded →
    /// Healthy transition.
    pub fn record_success(&mut self) -> bool {
        self.consecutive_failures = 0;
        self.consecutive_successes = self.consecutive_successes.saturating_add(1);
        if self.state == HealthState::Degraded && self.consecutive_successes >= self.recovery_streak
        {
            self.state = HealthState::Healthy;
            return true;
        }
        false
    }
}

/// Ties [`LinkHealth`] to a handler's plan: installs the entry cut on
/// degradation and re-promotes the stashed optimized plan on recovery.
#[derive(Debug)]
pub struct DegradationController {
    handler: Arc<PartitionedHandler>,
    health: LinkHealth,
    /// The optimized active set stashed when degradation struck.
    stashed: Option<Vec<PseId>>,
    degradations: u64,
    promotions: u64,
    /// Wall-clock start of the current degraded interval, feeding the
    /// `degraded_seconds` metric on re-promotion.
    degraded_since: Option<Instant>,
}

impl DegradationController {
    /// Wraps `handler` with the given hysteresis thresholds.
    pub fn new(
        handler: Arc<PartitionedHandler>,
        failure_budget: u32,
        recovery_streak: u32,
    ) -> Self {
        DegradationController {
            handler,
            health: LinkHealth::new(failure_budget, recovery_streak),
            stashed: None,
            degradations: 0,
            promotions: 0,
            degraded_since: None,
        }
    }

    /// The health tracker.
    pub fn health(&self) -> &LinkHealth {
        &self.health
    }

    /// Whether the trivial plan is currently forced.
    pub fn is_degraded(&self) -> bool {
        self.health.is_degraded()
    }

    /// Healthy → Degraded transitions so far.
    pub fn degradations(&self) -> u64 {
        self.degradations
    }

    /// Degraded → Healthy transitions so far.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Records a delivery failure. On the transition into Degraded the
    /// current active set is stashed and the entry cut installed; returns
    /// the new plan epoch in that case.
    pub fn record_failure(&mut self) -> Option<u64> {
        if !self.health.record_failure() {
            return None;
        }
        let Some(entry) = self.handler.entry_pse() else {
            // No synthetic entry edge: there is no trivial plan to fall
            // back to, so keep whatever is installed.
            return None;
        };
        self.stashed = Some(self.handler.plan().active());
        self.degradations += 1;
        self.degraded_since = Some(Instant::now());
        self.handler
            .metrics()
            .note_degraded(self.handler.obs(), self.health.consecutive_failures());
        Some(self.handler.install_plan_reason(&[entry], PlanReason::Degraded))
    }

    /// Records a delivery success. On the transition back to Healthy the
    /// stashed optimized plan is reinstalled; returns the new plan epoch
    /// in that case.
    pub fn record_success(&mut self) -> Option<u64> {
        if !self.health.record_success() {
            return None;
        }
        let stashed = self.stashed.take()?;
        self.promotions += 1;
        let seconds = self.degraded_since.take().map_or(0.0, |since| since.elapsed().as_secs_f64());
        self.handler.metrics().note_promoted(
            self.handler.obs(),
            self.health.consecutive_successes(),
            seconds,
        );
        Some(self.handler.install_plan_reason(&stashed, PlanReason::Promoted))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpart_cost::DataSizeModel;
    use mpart_ir::parse::parse_program;

    const SRC: &str = r#"
        class Blob { size: int, data: ref }
        fn absorb(event) {
            ok = event instanceof Blob
            if ok == 0 goto skip
            b = (Blob) event
            d = b.data
            native keep(d)
            return 1
        skip:
            return 0
        }
    "#;

    fn handler() -> Arc<PartitionedHandler> {
        let program = Arc::new(parse_program(SRC).unwrap());
        PartitionedHandler::analyze(program, "absorb", Arc::new(DataSizeModel::new())).unwrap()
    }

    #[test]
    fn hysteresis_requires_consecutive_outcomes() {
        let mut h = LinkHealth::new(3, 2);
        assert_eq!(h.state(), HealthState::Healthy);
        // Failures interleaved with successes never accumulate.
        for _ in 0..10 {
            assert!(!h.record_failure());
            assert!(!h.record_failure());
            assert!(!h.record_success());
        }
        assert_eq!(h.state(), HealthState::Healthy);
        // Three in a row degrade (exactly once).
        assert!(!h.record_failure());
        assert!(!h.record_failure());
        assert!(h.record_failure());
        assert!(!h.record_failure(), "already degraded");
        // One success is not enough; two are.
        assert!(!h.record_success());
        assert!(h.record_success());
        assert_eq!(h.state(), HealthState::Healthy);
    }

    #[test]
    fn degradation_installs_entry_cut_and_promotion_restores() {
        let h = handler();
        let entry = h.entry_pse().unwrap();
        // Force a distinctive optimized plan (all PSEs active).
        let optimized: Vec<usize> = (0..h.analysis().pses().len()).collect();
        h.install_plan(&optimized);
        let mut ctl = DegradationController::new(Arc::clone(&h), 2, 2);

        assert!(ctl.record_failure().is_none(), "budget not exhausted yet");
        let epoch = ctl.record_failure().expect("second failure degrades");
        assert!(ctl.is_degraded());
        assert_eq!(ctl.degradations(), 1);
        assert_eq!(h.plan().active(), vec![entry], "trivial plan installed");
        assert_eq!(h.plan().epoch(), epoch);
        h.plan().validate_cut(h.analysis()).unwrap();

        assert!(ctl.record_success().is_none());
        let epoch = ctl.record_success().expect("streak re-promotes");
        assert!(!ctl.is_degraded());
        assert_eq!(ctl.promotions(), 1);
        assert_eq!(h.plan().active(), optimized, "optimized plan restored");
        assert_eq!(h.plan().epoch(), epoch);
    }

    #[test]
    fn repeated_outages_cycle_cleanly() {
        let h = handler();
        let mut ctl = DegradationController::new(Arc::clone(&h), 1, 1);
        for round in 1..=3 {
            assert!(ctl.record_failure().is_some(), "round {round} degrades");
            assert!(ctl.record_failure().is_none(), "idempotent while down");
            assert!(ctl.record_success().is_some(), "round {round} promotes");
            assert!(ctl.record_success().is_none(), "idempotent while up");
        }
        assert_eq!(ctl.degradations(), 3);
        assert_eq!(ctl.promotions(), 3);
        h.plan().validate_cut(h.analysis()).unwrap();
    }
}
