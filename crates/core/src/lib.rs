//! # mpart — the Method Partitioning runtime
//!
//! This crate is the paper's primary contribution: it turns the static
//! analysis of `mpart-analysis` and a cost model from `mpart-cost` into a
//! *running* partitioned handler.
//!
//! * [`plan`] — [`plan::PartitionPlan`]: the per-PSE split
//!   and profiling flags. "Switching plans is as efficient as changing
//!   flag values" — flags are atomics shared with the modulator.
//! * [`continuation`] — the Remote Continuation message: PSE id plus the
//!   marshalled live variables (`INTER` set) of the split edge.
//! * [`modulator`] — the sender-side half: runs the handler under an edge
//!   observer, stops at the first active PSE, packs the continuation, and
//!   gathers profiling samples.
//! * [`demodulator`] — the receiver-side half: restores live variables and
//!   resumes execution at the split edge's in-node (or runs the whole
//!   handler for an entry-edge split).
//! * [`profile`] — the Runtime Profiling Unit: per-PSE statistics with
//!   EWMA smoothing, conditional profiling flags, and rate-/diff-triggered
//!   feedback.
//! * [`reconfig`] — the Runtime Reconfiguration Unit: converts profiled
//!   statistics into per-PSE weights and re-selects the optimal partition
//!   with a max-flow/min-cut over the Unit Graph.
//! * [`codegen`] — renders the instrumented modulator/demodulator "classes"
//!   as text and accounts their size overhead (§5.3).
//! * [`obs`] — per-handler observability: pre-registered metric handles
//!   and trace events over the shared `mpart-obs` hub.
//! * [`health`] — link health with hysteresis and the degradation ladder:
//!   fall back to the trivial entry cut while the link is down, re-promote
//!   the optimized plan once it recovers.
//! * [`partitioned`] — [`partitioned::PartitionedHandler`],
//!   the deployment-time facade tying everything together.
//! * [`session`] — [`session::SessionManager`]: N concurrent sessions
//!   sharded over a fixed worker pool, sharing static analyses through the
//!   `mpart-analysis` cache while keeping plans and epochs per-session
//!   (see `ARCHITECTURE.md` §"Throughput layer").
//! * [`failure`] — the session failure domain: `catch_unwind` panic
//!   isolation, per-envelope retry budgets, and the bounded dead-letter
//!   ring for poison-envelope quarantine.
//! * [`journal`] — append-only session journal (plan epochs, model, ack
//!   watermark, profiling flags; no payloads) for crash-safe recovery
//!   through the analysis cache with zero re-analysis.
//! * [`router`] — [`router::Router`]: multi-host session routing; hashes
//!   sessions onto nodes, tracks node health (heartbeat misses +
//!   error-rate EWMA with hysteresis), and on node death drains the
//!   shared journal to migrate sessions onto survivors — kill-a-node
//!   recovery with zero re-analysis and preserved ack watermarks.
//!
//! ## End-to-end example
//!
//! ```
//! use mpart::partitioned::PartitionedHandler;
//! use mpart_cost::DataSizeModel;
//! use mpart_ir::parse::parse_program;
//! use mpart_ir::interp::ExecCtx;
//! use mpart_ir::Value;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = Arc::new(parse_program(r#"
//!     fn handle(x) {
//!         y = x * 2
//!         native deliver(y)
//!         return
//!     }
//! "#)?);
//! let handler = PartitionedHandler::analyze(
//!     program.clone(),
//!     "handle",
//!     Arc::new(DataSizeModel::new()),
//! )?;
//! // Sender side: run the modulator, which stops at the active split
//! // edge and emits a remote continuation.
//! let modulator = handler.modulator();
//! let mut sender_ctx = ExecCtx::new(&program);
//! let run = modulator.handle(&mut sender_ctx, vec![Value::Int(21)])?;
//! // Receiver side: the demodulator restores the live variables and
//! // finishes the handler, reaching the native stop node.
//! let demodulator = handler.demodulator();
//! let mut recv_ctx = ExecCtx::new(&program);
//! recv_ctx.builtins.register_native("deliver", 1, |_, _| Ok(Value::Null));
//! demodulator.handle(&mut recv_ctx, &run.message)?;
//! assert_eq!(recv_ctx.trace.len(), 1);
//! # Ok(())
//! # }
//! ```

pub mod codegen;
pub mod continuation;
pub mod demodulator;
pub mod failure;
pub mod health;
pub mod journal;
pub mod modulator;
pub mod obs;
pub mod partitioned;
pub mod plan;
pub mod profile;
pub mod reconfig;
pub mod router;
pub mod session;

/// Index of a Potential Split Edge within a handler's analysis results.
pub type PseId = usize;

pub use continuation::ContinuationMessage;
pub use partitioned::PartitionedHandler;
pub use plan::PartitionPlan;
