//! The session failure domain: panic isolation, retry budgets, and the
//! poison-envelope dead-letter ring.
//!
//! PR 1 hardened the *wire* — CRC frames, retransmission, plan-epoch
//! fencing — but above it a handler panic still tore down its worker and
//! a malformed-but-CRC-valid envelope was retried forever. This module
//! supplies the three small pieces the session layer composes into a real
//! failure domain:
//!
//! * [`isolate`] — runs one modulator/demodulator invocation under
//!   [`std::panic::catch_unwind`] and converts a panic into
//!   [`IrError::HandlerPanic`], so a panic fails only that envelope.
//! * [`RetryBudget`] — counts failures (panic or decode error) per
//!   envelope sequence number; once an envelope exhausts the budget it is
//!   *quarantined* instead of retried, so retransmission can advance the
//!   ack watermark past it instead of livelocking.
//! * [`DeadLetterRing`] — a bounded per-session ring of quarantined
//!   envelopes (sequence number, failure kind, rendered error; never the
//!   payload) for `mpart deadletter` inspection.
//!
//! The pieces are deliberately passive — no threads, no clocks — so the
//! seeded chaos suite stays deterministic.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use mpart_ir::IrError;

/// Renders a caught panic payload as text (the common `&str` / `String`
/// payloads verbatim, anything else a placeholder).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one handler invocation under `catch_unwind`, converting a panic
/// into [`IrError::HandlerPanic`]. `IrError` results pass through
/// unchanged.
///
/// The closure typically borrows the handler halves and an `ExecCtx`
/// mutably; `AssertUnwindSafe` is sound here because a failed envelope's
/// context is either discarded (sender contexts are per-event) or only
/// ever observed through the failure path that reports the error.
pub fn isolate<T>(f: impl FnOnce() -> Result<T, IrError>) -> Result<T, IrError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(IrError::HandlerPanic(panic_message(payload))),
    }
}

/// What pushed an envelope toward quarantine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The handler invocation panicked (caught by [`isolate`]).
    Panic,
    /// The envelope decoded but the demodulator rejected it (marshal /
    /// continuation / stale-plan error).
    Decode,
    /// The envelope's deadline budget expired while the demodulator was
    /// stalled.
    Deadline,
}

impl FailureKind {
    /// Stable lowercase label for metrics and the CLI.
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Decode => "decode",
            FailureKind::Deadline => "deadline",
        }
    }
}

/// Tuning knobs for the failure domain.
#[derive(Debug, Clone, Copy)]
pub struct FailureConfig {
    /// Failures (panic or decode error) an envelope may accumulate before
    /// it is quarantined. Clamped to at least 1.
    pub retry_budget: u32,
    /// Capacity of the per-session dead-letter ring. Clamped to at
    /// least 1.
    pub deadletter_capacity: usize,
}

impl Default for FailureConfig {
    fn default() -> Self {
        FailureConfig { retry_budget: 3, deadletter_capacity: 32 }
    }
}

impl FailureConfig {
    /// Sets the per-envelope retry budget (min 1).
    pub fn with_retry_budget(mut self, budget: u32) -> Self {
        self.retry_budget = budget.max(1);
        self
    }

    /// Sets the dead-letter ring capacity (min 1).
    pub fn with_deadletter_capacity(mut self, capacity: usize) -> Self {
        self.deadletter_capacity = capacity.max(1);
        self
    }
}

/// Per-envelope failure accounting: decides *when* an envelope has failed
/// often enough to quarantine.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    budget: u32,
    failures: HashMap<u64, u32>,
}

impl RetryBudget {
    /// A budget allowing `budget` failures per envelope (min 1).
    pub fn new(budget: u32) -> Self {
        RetryBudget { budget: budget.max(1), failures: HashMap::new() }
    }

    /// Records one failure for `seq` and returns the running count.
    pub fn record(&mut self, seq: u64) -> u32 {
        let count = self.failures.entry(seq).or_insert(0);
        *count += 1;
        *count
    }

    /// Whether `count` failures exhaust the budget.
    pub fn exhausted(&self, count: u32) -> bool {
        count >= self.budget
    }

    /// Forgets an envelope that eventually succeeded (or was quarantined).
    pub fn clear(&mut self, seq: u64) {
        self.failures.remove(&seq);
    }

    /// Failures recorded so far for `seq`.
    pub fn failures(&self, seq: u64) -> u32 {
        self.failures.get(&seq).copied().unwrap_or(0)
    }
}

/// One quarantined envelope: metadata only, never the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadLetter {
    /// The envelope's sequence number.
    pub seq: u64,
    /// The failure class that exhausted the budget.
    pub kind: FailureKind,
    /// Failures accumulated before quarantine.
    pub failures: u32,
    /// The last error, rendered for humans.
    pub error: String,
}

#[derive(Debug, Default)]
struct RingInner {
    letters: std::collections::VecDeque<DeadLetter>,
    quarantined: u64,
    evicted: u64,
}

/// A bounded ring of quarantined envelopes. Shared between the owning
/// worker (writer) and inspection paths (`mpart deadletter`, the session
/// manager), hence the internal mutex; contention is nil because pushes
/// only happen on the rare quarantine path.
#[derive(Debug)]
pub struct DeadLetterRing {
    capacity: usize,
    inner: Mutex<RingInner>,
}

impl DeadLetterRing {
    /// A ring holding at most `capacity` letters (min 1); older letters
    /// are evicted once full.
    pub fn new(capacity: usize) -> Self {
        DeadLetterRing { capacity: capacity.max(1), inner: Mutex::new(RingInner::default()) }
    }

    /// Quarantines one envelope, evicting the oldest letter if full.
    pub fn push(&self, letter: DeadLetter) {
        let mut inner = self.inner.lock().expect("dead-letter ring poisoned");
        if inner.letters.len() == self.capacity {
            inner.letters.pop_front();
            inner.evicted += 1;
        }
        inner.letters.push_back(letter);
        inner.quarantined += 1;
    }

    /// All letters currently retained, oldest first.
    pub fn snapshot(&self) -> Vec<DeadLetter> {
        self.inner.lock().expect("dead-letter ring poisoned").letters.iter().cloned().collect()
    }

    /// Envelopes quarantined over the ring's lifetime (monotone; includes
    /// evicted letters).
    pub fn quarantined(&self) -> u64 {
        self.inner.lock().expect("dead-letter ring poisoned").quarantined
    }

    /// Letters evicted to make room.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().expect("dead-letter ring poisoned").evicted
    }

    /// Letters currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("dead-letter ring poisoned").letters.len()
    }

    /// Whether the ring holds no letters.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `seq` is among the retained letters.
    pub fn contains(&self, seq: u64) -> bool {
        self.inner.lock().expect("dead-letter ring poisoned").letters.iter().any(|l| l.seq == seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolate_converts_panics_and_passes_results_through() {
        let ok: Result<u64, IrError> = isolate(|| Ok(7));
        assert_eq!(ok, Ok(7));
        let err: Result<u64, IrError> = isolate(|| Err(IrError::DivideByZero));
        assert_eq!(err, Err(IrError::DivideByZero));
        let caught: Result<u64, IrError> = isolate(|| panic!("boom {}", 42));
        assert_eq!(caught, Err(IrError::HandlerPanic("boom 42".into())));
        let static_str: Result<u64, IrError> = isolate(|| panic!("plain"));
        assert_eq!(static_str, Err(IrError::HandlerPanic("plain".into())));
    }

    #[test]
    fn retry_budget_quarantines_at_the_configured_count() {
        let mut budget = RetryBudget::new(3);
        let first = budget.record(9);
        assert!(!budget.exhausted(first));
        let second = budget.record(9);
        assert!(!budget.exhausted(second));
        let third = budget.record(9);
        assert!(budget.exhausted(third));
        assert_eq!(budget.failures(9), 3);
        // Independent envelopes do not share a budget.
        let other = budget.record(10);
        assert!(!budget.exhausted(other));
        budget.clear(9);
        assert_eq!(budget.failures(9), 0);
        // Budget is clamped to at least one failure.
        let mut zero = RetryBudget::new(0);
        let only = zero.record(1);
        assert!(zero.exhausted(only));
    }

    #[test]
    fn dead_letter_ring_is_bounded_and_counts_evictions() {
        let ring = DeadLetterRing::new(2);
        for seq in 1..=3u64 {
            ring.push(DeadLetter {
                seq,
                kind: FailureKind::Panic,
                failures: 3,
                error: "injected".into(),
            });
        }
        assert_eq!(ring.quarantined(), 3);
        assert_eq!(ring.evicted(), 1);
        assert_eq!(ring.len(), 2);
        assert!(!ring.is_empty());
        assert!(!ring.contains(1), "oldest letter evicted");
        assert!(ring.contains(2) && ring.contains(3));
        let seqs: Vec<u64> = ring.snapshot().iter().map(|l| l.seq).collect();
        assert_eq!(seqs, vec![2, 3]);
    }

    #[test]
    fn failure_kind_labels_are_stable() {
        assert_eq!(FailureKind::Panic.label(), "panic");
        assert_eq!(FailureKind::Decode.label(), "decode");
        assert_eq!(FailureKind::Deadline.label(), "deadline");
    }
}
