//! Rendering of the generated modulator/demodulator "classes" and their
//! size accounting.
//!
//! The paper's Soot-based compiler emits real Java classes; our runtime
//! interprets the original function under instrumentation instead, which
//! is semantically identical. For inspection, documentation, and the §5.3
//! overhead accounting ("each additional PSE will require a new redirect
//! argument class (around 500 to 800 bytes) ... and about 150 bytes per
//! PSE of instrumentation"), this module renders the instrumented pair as
//! text and measures the implied class-size increments.

use std::fmt::Write as _;

use mpart_analysis::ENTRY;

use crate::partitioned::PartitionedHandler;

/// Size accounting for a generated modulator/demodulator pair (§5.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedSizes {
    /// Number of PSEs.
    pub pses: usize,
    /// Bytes of the rendered modulator "class".
    pub modulator_bytes: usize,
    /// Bytes of the rendered demodulator "class".
    pub demodulator_bytes: usize,
    /// Bytes of redirect-argument (continuation payload) class definitions,
    /// one per PSE — the paper reports 500–800 bytes each.
    pub redirect_classes_bytes: usize,
    /// Instrumentation bytes added per PSE (profiling + continuation code).
    pub instrumentation_bytes_per_pse: usize,
}

/// Renders the modulator as instrumented pseudo-Jimple: the original body
/// with explicit `split_check` / `profile` probes along every PSE.
pub fn modulator_text(handler: &PartitionedHandler) -> String {
    let program = handler.program();
    let func = handler.func();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// modulator for `{}` under cost model `{}`",
        func.name,
        handler.model().name()
    );
    let _ = writeln!(out, "fn {}__modulator({}) {{", func.name, params(func));
    for (pse_id, pse) in handler.analysis().pses().iter().enumerate() {
        if pse.edge.from == ENTRY {
            let _ = writeln!(
                out,
                "    // PSE {pse_id} @ entry: profile[{pse_id}] -> measure({}); \
                 split[{pse_id}] -> send Continuation{pse_id}({})",
                inter_list(func, pse),
                inter_list(func, pse)
            );
        }
    }
    for (pc, instr) in func.instrs.iter().enumerate() {
        let _ = writeln!(
            out,
            "    /*{pc:>3}*/ {}",
            mpart_ir::pretty::instr_to_string(program, func, instr)
        );
        for (pse_id, pse) in handler.analysis().pses().iter().enumerate() {
            if pse.edge.from == pc {
                let _ = writeln!(
                    out,
                    "    // PSE {pse_id} on edge ({},{}): profile[{pse_id}] -> \
                     measure({}); split[{pse_id}] -> send Continuation{pse_id}({})",
                    pse.edge.from,
                    pse.edge.to,
                    inter_list(func, pse),
                    inter_list(func, pse)
                );
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the demodulator: the resume-dispatch table plus the original
/// body.
pub fn demodulator_text(handler: &PartitionedHandler) -> String {
    let program = handler.program();
    let func = handler.func();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// demodulator for `{}` under cost model `{}`",
        func.name,
        handler.model().name()
    );
    let _ = writeln!(out, "fn {}__demodulator(continuation) {{", func.name);
    let _ = writeln!(out, "    // dispatch on continuation.pse_id:");
    for (pse_id, pse) in handler.analysis().pses().iter().enumerate() {
        let to = pse.edge.to;
        let _ =
            writeln!(out, "    //   {pse_id} -> restore {{{}}}; jump L{to}", inter_list(func, pse));
    }
    for (pc, instr) in func.instrs.iter().enumerate() {
        let _ = writeln!(out, "L{pc}: {}", mpart_ir::pretty::instr_to_string(program, func, instr));
    }
    out.push_str("}\n");
    out
}

/// Renders one redirect-argument class (the continuation payload carrier)
/// per PSE, mirroring the paper's generated argument classes.
pub fn redirect_class_text(handler: &PartitionedHandler, pse_id: crate::PseId) -> String {
    let func = handler.func();
    let pse = &handler.analysis().pses()[pse_id];
    let mut out = String::new();
    let _ = writeln!(out, "class {}__Continuation{} {{", func.name, pse_id);
    let _ = writeln!(out, "    pse_id: int,");
    for v in &pse.inter {
        let _ = writeln!(out, "    {}: ref,", func.var_name(*v));
    }
    let _ = writeln!(out, "    mod_work: int");
    out.push_str("}\n");
    out
}

/// Computes the §5.3 size accounting for a handler.
pub fn generated_sizes(handler: &PartitionedHandler) -> GeneratedSizes {
    let n = handler.analysis().pses().len().max(1);
    let modulator = modulator_text(handler);
    let demodulator = demodulator_text(handler);
    let redirect: usize = (0..handler.analysis().pses().len())
        .map(|p| redirect_class_text(handler, p).len() + REDIRECT_CLASS_OVERHEAD)
        .sum();
    let base = handler
        .program()
        .function(handler.func_name())
        .map(|f| mpart_ir::pretty::function_to_string(handler.program(), f).len())
        .unwrap_or(0);
    let instrumentation = (modulator.len() + demodulator.len()).saturating_sub(2 * base);
    GeneratedSizes {
        pses: handler.analysis().pses().len(),
        modulator_bytes: modulator.len(),
        demodulator_bytes: demodulator.len(),
        redirect_classes_bytes: redirect,
        instrumentation_bytes_per_pse: instrumentation / n,
    }
}

/// Fixed per-class overhead standing in for Java class-file structure
/// (constant pool, method tables) that our textual rendering lacks; chosen
/// so redirect classes land in the paper's reported 500–800 byte range.
const REDIRECT_CLASS_OVERHEAD: usize = 450;

fn params(func: &mpart_ir::Function) -> String {
    (0..func.params)
        .map(|i| func.var_name(mpart_ir::Var(i as u32)).to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn inter_list(func: &mpart_ir::Function, pse: &mpart_analysis::PseInfo) -> String {
    pse.inter.iter().map(|v| func.var_name(*v).to_string()).collect::<Vec<_>>().join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpart_cost::DataSizeModel;
    use mpart_ir::parse::parse_program;
    use std::sync::Arc;

    fn handler() -> Arc<PartitionedHandler> {
        let src = r#"
            class ImageData { width: int, buff: ref }
            fn push(event) {
                z0 = event instanceof ImageData
                if z0 == 0 goto skip
                r2 = (ImageData) event
                r4 = call resize(r2, 100, 100)
                native display_image(r4)
                return
            skip:
                return
            }
        "#;
        let program = Arc::new(parse_program(src).unwrap());
        PartitionedHandler::analyze(program, "push", Arc::new(DataSizeModel::new())).unwrap()
    }

    #[test]
    fn modulator_text_mentions_every_pse() {
        let h = handler();
        let text = modulator_text(&h);
        for i in 0..h.analysis().pses().len() {
            assert!(text.contains(&format!("PSE {i}")), "{text}");
        }
        assert!(text.contains("__modulator"));
    }

    #[test]
    fn demodulator_text_has_dispatch_table() {
        let h = handler();
        let text = demodulator_text(&h);
        assert!(text.contains("dispatch on continuation.pse_id"));
        for pse in h.analysis().pses() {
            assert!(text.contains(&format!("jump L{}", pse.edge.to)), "{text}");
        }
    }

    #[test]
    fn redirect_classes_in_papers_range() {
        let h = handler();
        for p in 0..h.analysis().pses().len() {
            let size = redirect_class_text(&h, p).len() + REDIRECT_CLASS_OVERHEAD;
            assert!((450..=900).contains(&size), "redirect class {p} is {size}B");
        }
    }

    #[test]
    fn size_accounting_plausible() {
        let h = handler();
        let sizes = generated_sizes(&h);
        assert_eq!(sizes.pses, 3);
        assert!(sizes.modulator_bytes > 0);
        assert!(sizes.demodulator_bytes > 0);
        assert!(sizes.instrumentation_bytes_per_pse > 50);
        assert!(sizes.redirect_classes_bytes >= 3 * 450);
    }
}
