//! Partition plans: the per-PSE split and profiling flags.
//!
//! "For each PSE, there is a dedicated flag controlling whether actual
//! splitting of the processing will happen there. ... At any given time,
//! the set of PSEs with their flags set comprise the actual partition of
//! the handling method" (§2.1). Flags are atomics so that the
//! Reconfiguration Unit can swap plans while messages are in flight —
//! adaptation really is just flag writes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use mpart_analysis::HandlerAnalysis;
use mpart_ir::IrError;

use crate::PseId;

/// Shared, atomically-updatable split/profile flags for one
/// modulator/demodulator pair.
///
/// ```
/// use mpart::plan::PartitionPlan;
///
/// let plan = PartitionPlan::new(3);
/// let modulator_view = plan.clone(); // clones share the flags
/// plan.install(&[1]);
/// assert!(modulator_view.is_split(1));
/// assert_eq!(modulator_view.active(), vec![1]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PartitionPlan {
    split: Arc<[AtomicBool]>,
    profile: Arc<[AtomicBool]>,
    /// Monotone plan generation. Bumped by every [`install`](Self::install);
    /// messages are stamped with the epoch they were modulated under so the
    /// receiver can tell in-flight continuations of superseded plans apart
    /// from current traffic.
    epoch: Arc<AtomicU64>,
}

impl PartitionPlan {
    /// Creates a plan for `n_pses` PSEs with all split flags clear and all
    /// profiling flags set (profile everything until statistics settle).
    pub fn new(n_pses: usize) -> Self {
        PartitionPlan {
            split: (0..n_pses).map(|_| AtomicBool::new(false)).collect(),
            profile: (0..n_pses).map(|_| AtomicBool::new(true)).collect(),
            epoch: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The current plan generation. Starts at 0; each install bumps it.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Number of PSEs covered.
    pub fn len(&self) -> usize {
        self.split.len()
    }

    /// Whether the plan covers no PSEs.
    pub fn is_empty(&self) -> bool {
        self.split.is_empty()
    }

    /// Whether splitting is active at `pse`.
    pub fn is_split(&self, pse: PseId) -> bool {
        self.split[pse].load(Ordering::Acquire)
    }

    /// Sets the split flag of one PSE.
    pub fn set_split(&self, pse: PseId, on: bool) {
        self.split[pse].store(on, Ordering::Release);
    }

    /// Whether profiling is active at `pse`.
    pub fn is_profiled(&self, pse: PseId) -> bool {
        self.profile[pse].load(Ordering::Acquire)
    }

    /// Sets the profiling flag of one PSE.
    pub fn set_profiled(&self, pse: PseId, on: bool) {
        self.profile[pse].store(on, Ordering::Release);
    }

    /// Installs a whole new active set: exactly the PSEs in `active` have
    /// their split flags set afterwards.
    ///
    /// Individual flag writes are atomic, and the new flags are set
    /// *before* the old ones are cleared, so a message racing with the
    /// switch observes a superset of either the old or the new active set
    /// — and every superset of a cut is itself a cut, so concurrent
    /// messages always find a valid split point. (Clearing first would
    /// expose an empty-plan window that lets execution reach a stop node
    /// on the sender.)
    ///
    /// Returns the new plan epoch. The epoch is bumped *before* the flags
    /// change, so a message that snapshots epoch-then-flags can observe a
    /// newer flag set than its stamp, but never flags older than it — and
    /// since flag updates keep the superset invariant, either view is a
    /// valid cut.
    pub fn install(&self, active: &[PseId]) -> u64 {
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        for &p in active {
            self.set_split(p, true);
        }
        for i in 0..self.split.len() {
            if !active.contains(&i) {
                self.set_split(i, false);
            }
        }
        epoch
    }

    /// The currently-active PSE ids, ascending.
    pub fn active(&self) -> Vec<PseId> {
        (0..self.split.len()).filter(|&i| self.is_split(i)).collect()
    }

    /// Whether `active` names exactly the currently-split PSEs (order and
    /// duplicates ignored). Lets callers skip no-op installs without
    /// allocating through [`active`](Self::active) comparisons.
    pub fn active_eq(&self, active: &[PseId]) -> bool {
        let count = (0..self.split.len()).filter(|&i| self.is_split(i)).count();
        let mut named = 0usize;
        for i in 0..self.split.len() {
            let listed = active.contains(&i);
            if listed != self.is_split(i) {
                return false;
            }
            named += usize::from(listed);
        }
        named == count && active.iter().all(|&p| p < self.split.len())
    }

    /// Validates that the active set forms a *cut*: every target path of
    /// `analysis` crosses at least one active PSE edge. A plan that is not
    /// a cut would let the modulator run into a stop node.
    ///
    /// Note this checks edge membership on each path, not just the per-path
    /// candidate sets — the min cut may legitimately cover a path with a
    /// PSE that `MinCostEdgeSet` pruned for that particular path (e.g. the
    /// entry edge covering every path at once).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Continuation`] naming the first uncovered path.
    pub fn validate_cut(&self, analysis: &HandlerAnalysis) -> Result<(), IrError> {
        let active_edges: Vec<mpart_analysis::Edge> =
            self.active().into_iter().map(|p| analysis.pses()[p].edge).collect();
        for (i, path) in analysis.paths.paths.iter().enumerate() {
            let edges = mpart_analysis::convex::path_edges(analysis.ug.start(), path);
            if !edges.iter().any(|e| active_edges.contains(e)) {
                return Err(IrError::Continuation(format!(
                    "plan {:?} does not cover target path {i} ({path:?})",
                    self.active()
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpart_analysis::analyze;
    use mpart_cost::DataSizeModel;
    use mpart_ir::parse::parse_program;

    #[test]
    fn flags_toggle() {
        let plan = PartitionPlan::new(3);
        assert!(!plan.is_split(0));
        assert!(plan.is_profiled(0));
        plan.set_split(0, true);
        plan.set_profiled(2, false);
        assert!(plan.is_split(0));
        assert!(!plan.is_profiled(2));
        assert_eq!(plan.active(), vec![0]);
    }

    #[test]
    fn install_replaces_active_set() {
        let plan = PartitionPlan::new(4);
        plan.install(&[0, 2]);
        assert_eq!(plan.active(), vec![0, 2]);
        plan.install(&[3]);
        assert_eq!(plan.active(), vec![3]);
    }

    #[test]
    fn installs_bump_the_epoch() {
        let plan = PartitionPlan::new(3);
        assert_eq!(plan.epoch(), 0);
        assert_eq!(plan.install(&[0]), 1);
        assert_eq!(plan.install(&[1, 2]), 2);
        assert_eq!(plan.epoch(), 2);
        let clone = plan.clone();
        plan.install(&[0]);
        assert_eq!(clone.epoch(), 3, "clones share the epoch counter");
    }

    #[test]
    fn active_eq_ignores_order_and_duplicates() {
        let plan = PartitionPlan::new(4);
        plan.install(&[0, 2]);
        assert!(plan.active_eq(&[2, 0]));
        assert!(plan.active_eq(&[0, 2, 2]));
        assert!(!plan.active_eq(&[0]));
        assert!(!plan.active_eq(&[0, 2, 3]));
        assert!(!plan.active_eq(&[0, 2, 9]), "out-of-range id never matches");
    }

    #[test]
    fn clones_share_flags() {
        let plan = PartitionPlan::new(2);
        let clone = plan.clone();
        plan.set_split(1, true);
        assert!(clone.is_split(1), "clone must observe the shared flag");
    }

    #[test]
    fn cut_validation() {
        let src = r#"
            fn f(x) {
                a = x + 1
                native out(a)
                return
            }
        "#;
        let program = parse_program(src).unwrap();
        let model = DataSizeModel::new();
        let ha = analyze(&program, "f", &model, Default::default()).unwrap();
        let plan = PartitionPlan::new(ha.pses().len());
        assert!(plan.validate_cut(&ha).is_err(), "empty plan is not a cut");
        // Activating every PSE is always a valid cut.
        plan.install(&(0..ha.pses().len()).collect::<Vec<_>>());
        plan.validate_cut(&ha).unwrap();
    }
}
