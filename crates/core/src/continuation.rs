//! Remote Continuation messages.
//!
//! "At the modulator side, when the split flag of this PSE is set, the
//! continuation code packs live variables of the PSE ... along with the
//! unique ID for the PSE into a continuation message" (§2.4). The message
//! is self-contained: the demodulator needs only the shared handler
//! analysis to restore state and jump to the right instruction.
//!
//! Packing is the *only* serialization point: `pack` marshals the `INTER`
//! live set once into an immutable, refcounted buffer
//! ([`Marshalled`]), and every downstream holder — the wire envelope, a
//! retransmission window, the simulated link — shares that buffer via
//! [`Marshalled::shared_bytes`] instead of copying it. Frame encoders
//! splice it into the byte stream as a borrowed scatter-gather segment
//! (see `EncodedFrame` in the jecho crate and WIRE.md in the repo root).

use mpart_analysis::PseInfo;
use mpart_ir::heap::Heap;
use mpart_ir::marshal::{marshal_values, unmarshal_values, Marshalled};
use mpart_ir::types::ClassTable;
use mpart_ir::{IrError, Value};

use crate::PseId;

/// Wire overhead of a continuation message beyond its payload: the PSE id
/// and a small header. Charged by the data-size accounting.
pub const CONTINUATION_HEADER_BYTES: usize = 16;

/// A packed remote continuation: "resume handler `H` at split point `pse`
/// with these live variables".
#[derive(Debug, Clone, PartialEq)]
pub struct ContinuationMessage {
    /// The split point's id in the handler's PSE table.
    pub pse: PseId,
    /// Marshalled live variables (the `INTER` set of the split edge, in
    /// sorted variable order).
    pub payload: Marshalled,
    /// Work units the modulator spent before splitting (profiling data
    /// piggy-backed on the continuation, as the paper's instrumentation
    /// does).
    pub mod_work: u64,
    /// The plan generation this message was modulated under (see
    /// [`PartitionPlan::epoch`](crate::plan::PartitionPlan::epoch)). The
    /// demodulator rejects messages older than its retained plan history
    /// with [`IrError::StalePlan`].
    pub epoch: u64,
}

impl ContinuationMessage {
    /// Packs the live variables of `pse` out of the modulator's
    /// environment and heap.
    ///
    /// The returned message owns the payload's only serialization: the
    /// marshalled bytes are frozen here and never copied again on the
    /// send path (clones of this message, and the frames encoded from it,
    /// share the buffer by refcount).
    ///
    /// # Errors
    ///
    /// Propagates marshalling failures.
    pub fn pack(
        pse_id: PseId,
        pse: &PseInfo,
        env: &[Value],
        heap: &Heap,
        mod_work: u64,
        epoch: u64,
    ) -> Result<Self, IrError> {
        let roots: Vec<Value> = pse.inter.iter().map(|v| env[v.index()].clone()).collect();
        let payload = marshal_values(heap, &roots)?;
        Ok(ContinuationMessage { pse: pse_id, payload, mod_work, epoch })
    }

    /// Unpacks the live variables into the demodulator's heap, returning a
    /// full variable environment for `locals` slots (non-live slots are
    /// `Null`, matching fresh-frame semantics).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Continuation`] if the payload does not match the
    /// PSE's `INTER` arity, plus any unmarshalling failure.
    pub fn unpack(
        &self,
        pse: &PseInfo,
        locals: usize,
        heap: &mut Heap,
        classes: &ClassTable,
    ) -> Result<Vec<Value>, IrError> {
        let roots = unmarshal_values(heap, classes, &self.payload)?;
        if roots.len() != pse.inter.len() {
            return Err(IrError::Continuation(format!(
                "payload carries {} values but PSE {} expects {}",
                roots.len(),
                self.pse,
                pse.inter.len()
            )));
        }
        let mut env = vec![Value::Null; locals];
        for (var, value) in pse.inter.iter().zip(roots) {
            if var.index() >= locals {
                return Err(IrError::Continuation(format!(
                    "live variable {var} out of range for {locals} locals"
                )));
            }
            env[var.index()] = value;
        }
        Ok(env)
    }

    /// Total bytes this message puts on the wire.
    pub fn wire_size(&self) -> usize {
        self.payload.wire_size() + CONTINUATION_HEADER_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpart_analysis::{analyze, Edge};
    use mpart_cost::DataSizeModel;
    use mpart_ir::parse::parse_program;

    fn setup() -> (mpart_ir::Program, mpart_analysis::HandlerAnalysis) {
        let src = r#"
            class Payload { size: int, data: ref }
            fn f(p) {
                q = (Payload) p
                d = q.data
                native out(d)
                return
            }
        "#;
        let program = parse_program(src).unwrap();
        let model = DataSizeModel::new();
        let ha = analyze(&program, "f", &model, Default::default()).unwrap();
        (program, ha)
    }

    #[test]
    fn pack_unpack_round_trip() {
        let (program, ha) = setup();
        let f = program.function("f").unwrap();
        // Find the PSE after `d = q.data` (edge (1,2)) carrying {d}.
        let (pse_id, pse) = ha
            .pses()
            .iter()
            .enumerate()
            .find(|(_, p)| p.edge == Edge::new(1, 2))
            .expect("post-field-load PSE");

        let mut sender_heap = Heap::new();
        let arr = sender_heap.alloc_array(mpart_ir::types::ElemType::Byte, 5);
        sender_heap.array_set(arr, 3, Value::Int(9)).unwrap();
        let mut env = vec![Value::Null; f.locals];
        let d = f.var_by_name("d").unwrap();
        env[d.index()] = Value::Ref(arr);

        let msg = ContinuationMessage::pack(pse_id, pse, &env, &sender_heap, 7, 3).unwrap();
        assert_eq!(msg.pse, pse_id);
        assert_eq!(msg.mod_work, 7);
        assert_eq!(msg.epoch, 3);
        assert!(msg.wire_size() > CONTINUATION_HEADER_BYTES);

        let mut recv_heap = Heap::new();
        let env2 = msg.unpack(pse, f.locals, &mut recv_heap, &program.classes).unwrap();
        let d2 = env2[d.index()].as_ref("d").unwrap();
        assert_eq!(recv_heap.array_get(d2, 3).unwrap(), Value::Int(9));
        // Non-live slots are Null.
        let q = f.var_by_name("q").unwrap();
        assert_eq!(env2[q.index()], Value::Null);
    }

    #[test]
    fn unpack_arity_mismatch_rejected() {
        let (program, ha) = setup();
        let f = program.function("f").unwrap();
        let (pse_id, pse) =
            ha.pses().iter().enumerate().find(|(_, p)| !p.inter.is_empty()).unwrap();
        // Craft a payload with the wrong number of roots.
        let heap = Heap::new();
        let bogus = marshal_values(&heap, &[]).unwrap();
        let msg = ContinuationMessage { pse: pse_id, payload: bogus, mod_work: 0, epoch: 0 };
        let mut recv_heap = Heap::new();
        let err = msg.unpack(pse, f.locals, &mut recv_heap, &program.classes).unwrap_err();
        assert!(matches!(err, IrError::Continuation(_)), "{err}");
    }
}
