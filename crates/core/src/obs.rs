//! The handler's observability surface: named instruments for the paper's
//! runtime mechanisms.
//!
//! Every [`PartitionedHandler`](crate::partitioned::PartitionedHandler)
//! owns an [`ObsHub`] (metrics registry + trace ring) and a
//! [`HandlerMetrics`] bundle of pre-registered instrument handles, so the
//! modulator/demodulator hot paths update plain atomics without a
//! registry lookup. Each metric is catalogued in `OBSERVABILITY.md`.

use mpart_obs::{Counter, Gauge, Histogram, ObsHub, PlanReason, Registry, TraceEvent};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::PseId;

/// Sentinel for "no split observed yet" in [`HandlerMetrics::note_split`].
const NO_SPLIT: u64 = u64::MAX;

/// Pre-registered instrument handles for one partitioned handler.
///
/// Created at analysis time from the handler's [`ObsHub`]; the modulator,
/// demodulator, plan installer, and health tracker all update through
/// these shared handles.
#[derive(Debug)]
pub struct HandlerMetrics {
    /// `continuations_sent_total{pse}` — messages the modulator split at
    /// each PSE.
    continuations_sent: Vec<Counter>,
    /// `continuations_resumed_total{pse}` — messages the demodulator
    /// resumed at each PSE.
    continuations_resumed: Vec<Counter>,
    /// `envelope_bytes` — wire size of packed continuation messages.
    envelope_bytes: Histogram,
    /// `mod_work_units` — sender-side work per message.
    mod_work: Histogram,
    /// `demod_work_units` — receiver-side work per message.
    demod_work: Histogram,
    /// `profile_work_units_total` — cumulative cost of the §2.5
    /// conditional profiling probes (both sides).
    profile_work_total: Counter,
    /// `plan_switch_total{reason}` — installs by [`PlanReason`].
    plan_switch: [Counter; 6],
    /// `plan_prepares_total{outcome}` — two-phase install prepare steps
    /// by outcome (`[ready, rejected, quarantined, timeout]`).
    plan_prepares: [Counter; 4],
    /// `plan_rollbacks_total{reason}` — canary rollbacks (guard breach).
    plan_rollbacks: Counter,
    /// `plans_quarantined` — active sets currently on the decaying
    /// quarantine blacklist.
    plans_quarantined: Gauge,
    /// `plan_epoch` — the current plan generation.
    plan_epoch: Gauge,
    /// `stale_plan_rejected_total` — continuations refused because their
    /// epoch predates the retained plan history.
    stale_rejected: Counter,
    /// `degradations_total` — Healthy → Degraded transitions.
    degradations: Counter,
    /// `promotions_total` — Degraded → Healthy transitions.
    promotions: Counter,
    /// `degraded_seconds` — cumulative wall-clock time spent degraded.
    degraded_seconds: Gauge,
    /// `degraded` — 1 while the entry-cut fallback is forced, else 0.
    degraded: Gauge,
    /// `engine_dispatch_total{engine}` — modulator runs and demodulator
    /// resumes executed by each engine (`[interp, compiled]`).
    engine_dispatch: [Counter; 2],
    /// `compiled_bodies_total` — bodies accepted by the bytecode compiler
    /// across engine builds.
    compiled_bodies: Counter,
    /// `compile_fallbacks_total` — bodies the compiler declined to the
    /// interpreter fallback across engine builds.
    compile_fallbacks: Counter,
    /// Last split PSE seen by [`note_split`](Self::note_split)
    /// ([`NO_SPLIT`] before the first message).
    last_split: AtomicU64,
}

impl HandlerMetrics {
    /// Registers every handler-level instrument on `registry`.
    pub(crate) fn register(registry: &Registry, n_pses: usize) -> Self {
        let per_pse = |name: &str| -> Vec<Counter> {
            (0..n_pses).map(|p| registry.counter(name, &[("pse", &p.to_string())])).collect()
        };
        // Byte sizes up to 16 MiB, work units up to ~1M per message.
        let byte_bounds: Vec<u64> = (0..=24).map(|e| 1u64 << e).collect();
        let work_bounds: Vec<u64> = (0..=20).map(|e| 1u64 << e).collect();
        let plan_switch = PlanReason::all()
            .map(|r| registry.counter("plan_switch_total", &[("reason", r.as_str())]));
        HandlerMetrics {
            continuations_sent: per_pse("continuations_sent_total"),
            continuations_resumed: per_pse("continuations_resumed_total"),
            envelope_bytes: registry.histogram("envelope_bytes", &[], &byte_bounds),
            mod_work: registry.histogram("mod_work_units", &[], &work_bounds),
            demod_work: registry.histogram("demod_work_units", &[], &work_bounds),
            profile_work_total: registry.counter("profile_work_units_total", &[]),
            plan_switch,
            plan_prepares: ["ready", "rejected", "quarantined", "timeout"]
                .map(|o| registry.counter("plan_prepares_total", &[("outcome", o)])),
            plan_rollbacks: registry.counter("plan_rollbacks_total", &[("reason", "guard")]),
            plans_quarantined: registry.gauge("plans_quarantined", &[]),
            plan_epoch: registry.gauge("plan_epoch", &[]),
            stale_rejected: registry.counter("stale_plan_rejected_total", &[]),
            degradations: registry.counter("degradations_total", &[]),
            promotions: registry.counter("promotions_total", &[]),
            degraded_seconds: registry.gauge("degraded_seconds", &[]),
            degraded: registry.gauge("degraded", &[]),
            engine_dispatch: [
                registry.counter("engine_dispatch_total", &[("engine", "interp")]),
                registry.counter("engine_dispatch_total", &[("engine", "compiled")]),
            ],
            compiled_bodies: registry.counter("compiled_bodies_total", &[]),
            compile_fallbacks: registry.counter("compile_fallbacks_total", &[]),
            last_split: AtomicU64::new(NO_SPLIT),
        }
    }

    /// Records one modulator run: the split PSE, the packed envelope
    /// size, and the work split between handler prefix and profiling
    /// probes. Emits a [`TraceEvent::PseActivated`] when the split moved
    /// to a PSE the previous message did not use.
    pub fn note_mod_run(
        &self,
        hub: &ObsHub,
        pse: PseId,
        epoch: u64,
        envelope_bytes: u64,
        mod_work: u64,
        profile_work: u64,
    ) {
        if let Some(c) = self.continuations_sent.get(pse) {
            c.inc();
        }
        self.envelope_bytes.observe(envelope_bytes);
        self.mod_work.observe(mod_work);
        self.profile_work_total.add(profile_work);
        self.note_split(hub, pse, epoch);
    }

    /// Records one demodulator run.
    pub fn note_demod_run(&self, pse: PseId, demod_work: u64, profile_work: u64) {
        if let Some(c) = self.continuations_resumed.get(pse) {
            c.inc();
        }
        self.demod_work.observe(demod_work);
        self.profile_work_total.add(profile_work);
    }

    /// Records a plan install.
    pub fn note_plan_switch(&self, reason: PlanReason, epoch: u64) {
        self.plan_switch[reason_index(reason)].inc();
        self.plan_epoch.set(epoch as f64);
    }

    /// Records one two-phase prepare step by its outcome label
    /// (`ready`/`rejected`/`quarantined`/`timeout`).
    pub fn note_prepare(&self, outcome: &str) {
        let index = match outcome {
            "ready" => 0,
            "rejected" => 1,
            "quarantined" => 2,
            _ => 3,
        };
        self.plan_prepares[index].inc();
    }

    /// Records one guard-breach rollback.
    pub fn note_rollback(&self) {
        self.plan_rollbacks.inc();
    }

    /// Publishes the current quarantine-blacklist size.
    pub fn note_quarantine_size(&self, entries: usize) {
        self.plans_quarantined.set(entries as f64);
    }

    /// Records a stale-epoch rejection.
    pub fn note_stale_rejected(&self, hub: &ObsHub, epoch: u64, oldest_retained: u64) {
        self.stale_rejected.inc();
        hub.record(TraceEvent::StaleRejected { epoch, oldest_retained });
    }

    /// Records a Healthy → Degraded transition.
    pub fn note_degraded(&self, hub: &ObsHub, consecutive_failures: u32) {
        self.degradations.inc();
        self.degraded.set(1.0);
        hub.record(TraceEvent::Degraded { consecutive_failures });
    }

    /// Records a Degraded → Healthy transition after `seconds` spent
    /// degraded.
    pub fn note_promoted(&self, hub: &ObsHub, consecutive_successes: u32, seconds: f64) {
        self.promotions.inc();
        self.degraded.set(0.0);
        self.degraded_seconds.add(seconds);
        hub.record(TraceEvent::Promoted { consecutive_successes });
    }

    /// Records one engine dispatch (a modulator run or a demodulator
    /// resume) under the engine's stable name (`interp`/`compiled`).
    pub fn note_engine_dispatch(&self, engine: &str) {
        self.engine_dispatch[usize::from(engine == "compiled")].inc();
    }

    /// Records one bytecode-engine build: bodies the compiler accepted
    /// and bodies it declined to the interpreter fallback.
    pub fn note_engine_build(&self, bodies: u64, declined: u64) {
        self.compiled_bodies.add(bodies);
        self.compile_fallbacks.add(declined);
    }

    fn note_split(&self, hub: &ObsHub, pse: PseId, epoch: u64) {
        let previous = self.last_split.swap(pse as u64, Ordering::Relaxed);
        if previous != pse as u64 {
            hub.record(TraceEvent::PseActivated { pse: pse as u32, epoch });
        }
    }
}

fn reason_index(reason: PlanReason) -> usize {
    PlanReason::all().iter().position(|r| *r == reason).expect("all reasons enumerated")
}
