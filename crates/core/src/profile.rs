//! The Runtime Profiling Unit.
//!
//! "The profiling code inserted by static analysis is invoked by the
//! Runtime Profiling Unit. The invocation of such profiling code is
//! conditional" (§2.5) — the per-PSE profiling flags live in
//! [`PartitionPlan`](crate::plan::PartitionPlan); this module keeps the
//! statistics those probes produce and decides when to emit feedback
//! (rate- or diff-triggered) to the Reconfiguration Unit.

use crate::PseId;

/// Exponentially-weighted moving average.
///
/// ```
/// use mpart::profile::Ewma;
///
/// let mut size = Ewma::new(0.5);
/// size.update(1000.0);
/// size.update(2000.0);
/// assert_eq!(size.value(), Some(1500.0));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    value: Option<f64>,
    alpha: f64,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]` (1 keeps
    /// only the latest sample).
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { value: None, alpha }
    }

    /// Feeds a sample.
    pub fn update(&mut self, sample: f64) {
        self.value = Some(match self.value {
            None => sample,
            Some(v) => v + self.alpha * (sample - v),
        });
    }

    /// Current smoothed value, if any sample arrived.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current value or `default`.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }
}

/// One per-PSE observation made by the modulator's profiling code while a
/// message traversed the edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PseSample {
    /// The observed PSE.
    pub pse: PseId,
    /// Work units spent by the modulator from message start to this edge.
    pub mod_work: u64,
    /// Measured continuation payload size at this edge, if the cost model
    /// profiles sizes.
    pub payload_bytes: Option<u64>,
    /// Whether the message actually split here.
    pub was_split: bool,
}

/// Per-message profile from the modulator side.
#[derive(Debug, Clone)]
pub struct ModMessageProfile {
    /// Per-PSE observations along the executed prefix.
    pub samples: Vec<PseSample>,
    /// The PSE the message split at.
    pub split: PseId,
    /// Total modulator work for the message.
    pub mod_work: u64,
    /// Elapsed sender-side time (seconds, virtual or wall), when the
    /// integration layer can measure it.
    pub t_mod: Option<f64>,
}

/// Per-message profile from the demodulator side.
#[derive(Debug, Clone, Copy)]
pub struct DemodMessageProfile {
    /// The PSE the message resumed at.
    pub pse: PseId,
    /// Total demodulator work for the message.
    pub demod_work: u64,
    /// Elapsed receiver-side time (seconds), when measurable.
    pub t_demod: Option<f64>,
}

/// Per-PSE aggregated statistics.
#[derive(Debug, Clone)]
pub struct PseStats {
    /// Smoothed continuation payload size (bytes) observed at this edge.
    pub size: Ewma,
    /// Smoothed modulator work from message start to this edge.
    pub mod_work: Ewma,
    /// Traversal count (how many profiled messages crossed this edge).
    pub traversals: u64,
    /// Split count (how many messages actually split here).
    pub splits: u64,
}

impl PseStats {
    fn new(alpha: f64) -> Self {
        PseStats { size: Ewma::new(alpha), mod_work: Ewma::new(alpha), traversals: 0, splits: 0 }
    }
}

/// Immutable snapshot of the profiling state, shipped to the
/// Reconfiguration Unit as feedback.
#[derive(Debug, Clone)]
pub struct ProfileSnapshot {
    /// Per-PSE smoothed payload size (bytes), `None` before any sample.
    pub size: Vec<Option<f64>>,
    /// Per-PSE smoothed modulator work to reach the edge.
    pub mod_work: Vec<Option<f64>>,
    /// Per-PSE traversal counts.
    pub traversals: Vec<u64>,
    /// Smoothed total work per message (modulator + demodulator).
    pub total_work: Option<f64>,
    /// Estimated sender speed (work units per second).
    pub speed_mod: Option<f64>,
    /// Estimated receiver speed (work units per second).
    pub speed_demod: Option<f64>,
    /// Messages profiled so far.
    pub messages: u64,
}

/// The Runtime Profiling Unit: aggregates both sides' per-message profiles.
#[derive(Debug, Clone)]
pub struct ProfilingUnit {
    stats: Vec<PseStats>,
    total_work: Ewma,
    speed_mod: Ewma,
    speed_demod: Ewma,
    messages: u64,
    // Pending modulator halves keyed by split PSE, awaiting the matching
    // demodulator profile (messages are processed in order per pair, so a
    // small queue suffices).
    pending_mod: Vec<ModMessageProfile>,
}

impl ProfilingUnit {
    /// Creates a unit for `n_pses` PSEs with EWMA smoothing `alpha`.
    pub fn new(n_pses: usize, alpha: f64) -> Self {
        ProfilingUnit {
            stats: (0..n_pses).map(|_| PseStats::new(alpha)).collect(),
            total_work: Ewma::new(alpha),
            speed_mod: Ewma::new(alpha),
            speed_demod: Ewma::new(alpha),
            messages: 0,
            pending_mod: Vec::new(),
        }
    }

    /// Number of PSEs tracked.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Whether no PSEs are tracked.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Records loose per-PSE observations that are not tied to message
    /// bookkeeping — e.g. the demodulator side's suffix profiling.
    pub fn record_samples(&mut self, samples: &[PseSample]) {
        for s in samples {
            if s.pse >= self.stats.len() {
                continue;
            }
            let st = &mut self.stats[s.pse];
            st.traversals += 1;
            st.mod_work.update(s.mod_work as f64);
            if let Some(b) = s.payload_bytes {
                st.size.update(b as f64);
            }
        }
    }

    /// Records the modulator half of a message profile.
    pub fn record_mod(&mut self, profile: ModMessageProfile) {
        for s in &profile.samples {
            if s.pse >= self.stats.len() {
                continue;
            }
            let st = &mut self.stats[s.pse];
            st.traversals += 1;
            if s.was_split {
                st.splits += 1;
            }
            st.mod_work.update(s.mod_work as f64);
            if let Some(b) = s.payload_bytes {
                st.size.update(b as f64);
            }
        }
        if let Some(t) = profile.t_mod {
            if t > 0.0 && profile.mod_work > 0 {
                self.speed_mod.update(profile.mod_work as f64 / t);
            }
        }
        self.messages += 1;
        self.pending_mod.push(profile);
        // Bound memory if demod profiles never arrive (e.g. lost feedback).
        if self.pending_mod.len() > 64 {
            self.pending_mod.remove(0);
        }
    }

    /// Records the demodulator half; pairs it with the oldest pending
    /// modulator profile of the same split PSE to update totals.
    pub fn record_demod(&mut self, profile: DemodMessageProfile) {
        if let Some(t) = profile.t_demod {
            if t > 0.0 && profile.demod_work > 0 {
                self.speed_demod.update(profile.demod_work as f64 / t);
            }
        }
        if let Some(pos) = self.pending_mod.iter().position(|m| m.split == profile.pse) {
            let m = self.pending_mod.remove(pos);
            self.total_work.update((m.mod_work + profile.demod_work) as f64);
        } else {
            // Unpaired demod profile (e.g. entry split with zero mod work).
            self.total_work.update(profile.demod_work as f64);
        }
    }

    /// Takes an immutable snapshot for feedback.
    pub fn snapshot(&self) -> ProfileSnapshot {
        ProfileSnapshot {
            size: self.stats.iter().map(|s| s.size.value()).collect(),
            mod_work: self.stats.iter().map(|s| s.mod_work.value()).collect(),
            traversals: self.stats.iter().map(|s| s.traversals).collect(),
            total_work: self.total_work.value(),
            speed_mod: self.speed_mod.value(),
            speed_demod: self.speed_demod.value(),
            messages: self.messages,
        }
    }

    /// Per-PSE stats (read-only).
    pub fn stats(&self) -> &[PseStats] {
        &self.stats
    }

    /// Modulator halves still waiting for their demodulator profile.
    pub fn pending_mod_profiles(&self) -> usize {
        self.pending_mod.len()
    }

    /// Discards window state tied to the superseded plan after an external
    /// plan switch: pending modulator halves were produced under split
    /// decisions that no longer exist, so pairing them with post-switch
    /// demodulator profiles would corrupt the total-work EWMA. The
    /// long-horizon per-PSE EWMAs are workload properties, not plan
    /// properties, and survive the reset.
    pub fn reset_window(&mut self) {
        self.pending_mod.clear();
    }
}

/// When the Profiling Unit pushes feedback to the Reconfiguration Unit.
///
/// "An application can choose to send feedback only when a certain amount
/// of time has elapsed (rate-triggered), or when the profiling data for
/// one of the PSEs has changed significantly (diff-triggered)" (§2.5).
#[derive(Debug, Clone, Copy)]
pub enum TriggerPolicy {
    /// Never send feedback: the plan installed at deployment time stays
    /// fixed. Models the paper's manually-coded baseline versions.
    Never,
    /// Feedback every `n` messages.
    Rate(u64),
    /// Feedback when any PSE's smoothed cost moved by more than the given
    /// relative fraction since the last feedback.
    Diff(f64),
    /// Rate and diff combined (whichever fires first).
    RateOrDiff(u64, f64),
}

impl TriggerPolicy {
    /// Decides whether feedback should fire, given messages since the last
    /// feedback and the maximum relative change across PSE costs.
    pub fn fires(&self, messages_since: u64, max_rel_change: f64) -> bool {
        match *self {
            TriggerPolicy::Never => false,
            TriggerPolicy::Rate(n) => messages_since >= n,
            TriggerPolicy::Diff(d) => max_rel_change > d,
            TriggerPolicy::RateOrDiff(n, d) => messages_since >= n || max_rel_change > d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        e.update(10.0);
        assert_eq!(e.value(), Some(10.0));
        e.update(20.0);
        assert_eq!(e.value(), Some(15.0));
        for _ in 0..50 {
            e.update(20.0);
        }
        assert!((e.value().unwrap() - 20.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0);
    }

    fn sample(pse: PseId, work: u64, bytes: u64, split: bool) -> PseSample {
        PseSample { pse, mod_work: work, payload_bytes: Some(bytes), was_split: split }
    }

    #[test]
    fn mod_and_demod_profiles_aggregate() {
        let mut unit = ProfilingUnit::new(3, 0.5);
        unit.record_mod(ModMessageProfile {
            samples: vec![sample(0, 0, 800, false), sample(1, 10, 100, true)],
            split: 1,
            mod_work: 10,
            t_mod: Some(0.001),
        });
        unit.record_demod(DemodMessageProfile { pse: 1, demod_work: 30, t_demod: Some(0.003) });
        let snap = unit.snapshot();
        assert_eq!(snap.size[0], Some(800.0));
        assert_eq!(snap.size[1], Some(100.0));
        assert_eq!(snap.size[2], None);
        assert_eq!(snap.total_work, Some(40.0));
        assert_eq!(snap.speed_mod, Some(10_000.0));
        assert_eq!(snap.speed_demod, Some(10_000.0));
        assert_eq!(snap.traversals, vec![1, 1, 0]);
        assert_eq!(unit.stats()[1].splits, 1);
    }

    #[test]
    fn unpaired_demod_still_updates_total() {
        let mut unit = ProfilingUnit::new(1, 1.0);
        unit.record_demod(DemodMessageProfile { pse: 0, demod_work: 42, t_demod: None });
        assert_eq!(unit.snapshot().total_work, Some(42.0));
    }

    #[test]
    fn pending_queue_is_bounded() {
        let mut unit = ProfilingUnit::new(1, 1.0);
        for i in 0..100 {
            unit.record_mod(ModMessageProfile {
                samples: vec![],
                split: 0,
                mod_work: i,
                t_mod: None,
            });
        }
        assert!(unit.pending_mod.len() <= 64);
    }

    #[test]
    fn trigger_policies() {
        assert!(!TriggerPolicy::Never.fires(u64::MAX, f64::INFINITY));
        assert!(TriggerPolicy::Rate(5).fires(5, 0.0));
        assert!(!TriggerPolicy::Rate(5).fires(4, 10.0));
        assert!(TriggerPolicy::Diff(0.2).fires(0, 0.3));
        assert!(!TriggerPolicy::Diff(0.2).fires(100, 0.1));
        assert!(TriggerPolicy::RateOrDiff(5, 0.2).fires(5, 0.0));
        assert!(TriggerPolicy::RateOrDiff(5, 0.2).fires(1, 0.5));
        assert!(!TriggerPolicy::RateOrDiff(5, 0.2).fires(1, 0.1));
    }
}
