//! The modulator: the sender-side half of a partitioned handler.
//!
//! "When a message is sent to a receiver, the message is first touched by
//! the sender using the receiver's modulator, and any data emitted by the
//! modulator is sent and then touched by the demodulator in the receiver"
//! (§2.1). The modulator executes the handler prefix up to the first
//! *active* Potential Split Edge, runs the per-PSE profiling code on the
//! way (when the PSE's profiling flag is set), and packs a
//! [`ContinuationMessage`] at the split.
//!
//! The pack is the hot path's one serialization: the `INTER` live set is
//! marshalled into a single immutable buffer that transports then borrow
//! by refcount all the way to the socket (zero-copy frame encoding;
//! WIRE.md). Everything the modulator returns in a [`ModRun`] is
//! therefore cheap to clone and to retransmit.

use std::sync::Arc;

use mpart_ir::heap::Heap;
use mpart_ir::interp::{EdgeAction, EdgeObserver, ExecCtx, Outcome};
use mpart_ir::{IrError, Value};

use crate::continuation::ContinuationMessage;
use crate::partitioned::PartitionedHandler;
use crate::profile::PseSample;
use crate::PseId;

/// Result of one modulator invocation.
#[derive(Debug, Clone)]
pub struct ModRun {
    /// The continuation to ship to the receiver.
    pub message: ContinuationMessage,
    /// Profiling observations collected along the executed prefix (one per
    /// traversed PSE whose profiling flag was set).
    pub samples: Vec<PseSample>,
    /// Work units the modulator consumed for this message.
    pub mod_work: u64,
    /// Work units spent running the profiling probes themselves (§2.5's
    /// conditional profiling exists to bound this).
    pub profile_work: u64,
}

/// The sender-side half of a [`PartitionedHandler`].
///
/// Cheap to clone; all clones share the handler's atomic plan, so a
/// reconfiguration is visible to every installed modulator instantly.
#[derive(Debug, Clone)]
pub struct Modulator {
    handler: Arc<PartitionedHandler>,
}

impl Modulator {
    pub(crate) fn new(handler: Arc<PartitionedHandler>) -> Self {
        Modulator { handler }
    }

    /// The shared handler.
    pub fn handler(&self) -> &Arc<PartitionedHandler> {
        &self.handler
    }

    /// Processes one message on the sender: executes the handler prefix up
    /// to the first active PSE and packs the remote continuation.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Continuation`] if the current plan is not a
    /// valid cut (execution would reach a stop node on the sender), plus
    /// any runtime error from the handler prefix.
    pub fn handle(&self, ctx: &mut ExecCtx, args: Vec<Value>) -> Result<ModRun, IrError> {
        let func = self.handler.func();
        if args.len() != func.params {
            return Err(IrError::Type(format!(
                "handler `{}` expects {} args, got {}",
                func.name,
                func.params,
                args.len()
            )));
        }
        let work_start = ctx.work;
        let mut samples = Vec::new();
        let mut profile_work = 0u64;

        // Snapshot the plan at message start: a reconfiguration racing
        // with this message must not change its split decisions
        // mid-flight (a torn view could miss every active edge on the
        // taken path and run into a stop node).
        let n_pses = self.handler.analysis().pses().len();
        let plan = self.handler.plan();
        // The epoch is read before the flags: an install racing with this
        // snapshot can at worst stamp the message one generation behind
        // the flags actually used, which the receiver's retained plan
        // history absorbs.
        let epoch = plan.epoch();
        let split: Vec<bool> = (0..n_pses).map(|p| plan.is_split(p)).collect();
        let profiled: Vec<bool> = (0..n_pses).map(|p| plan.is_profiled(p)).collect();

        // Entry-edge split: ship the raw message without touching it.
        if let Some(entry) = self.handler.entry_pse() {
            if profiled[entry] {
                let pse = &self.handler.analysis().pses()[entry];
                let roots: Vec<Value> = pse.inter.iter().map(|v| args[v.index()].clone()).collect();
                let classes = &self.handler.program().classes;
                let bytes = self.handler.model().measure_payload(&ctx.heap, classes, &roots);
                profile_work += self.handler.model().profiling_work(&ctx.heap, classes, &roots);
                samples.push(PseSample {
                    pse: entry,
                    mod_work: 0,
                    payload_bytes: Some(bytes),
                    was_split: split[entry],
                });
            }
            if split[entry] {
                let mut env = vec![Value::Null; func.locals];
                for (i, a) in args.into_iter().enumerate() {
                    env[i] = a;
                }
                let pse = &self.handler.analysis().pses()[entry];
                let message = ContinuationMessage::pack(entry, pse, &env, &ctx.heap, 0, epoch)?;
                let mod_work = ctx.work - work_start;
                let run = ModRun { message, samples, mod_work, profile_work };
                self.observe_run(&run, epoch);
                return Ok(run);
            }
        }

        // A handler whose very first instruction is a stop node can only
        // be covered by the entry split; edge observation starts after the
        // first instruction, so catch this before executing anything.
        let start = self.handler.analysis().ug.start();
        if self.handler.analysis().stops.is_stop(start) {
            return Err(IrError::Continuation(format!(
                "plan {:?} lets execution reach stop node {start} (the start node) on the sender",
                active_of(&split)
            )));
        }

        let mut observer = ModObserver {
            handler: &self.handler,
            samples: &mut samples,
            work_base: work_start,
            split_at: None,
            violation: None,
            profile_work: &mut profile_work,
            split: &split,
            profiled: &profiled,
        };
        // Dispatch through the handler's selected engine: the interpreter
        // is the reference; the bytecode engine observes exactly the same
        // edges (its watched set covers every PSE and stop in-edge).
        let engine = self.handler.engine();
        self.handler.metrics().note_engine_dispatch(engine.name());
        let outcome = engine.run_observed(ctx, func, args, &mut observer)?;
        let split_at = observer.split_at;
        let violation = observer.violation;

        if let Some((from, to)) = violation {
            return Err(IrError::Continuation(format!(
                "plan {:?} lets execution reach stop node {to} from {from} on the sender",
                active_of(&split)
            )));
        }
        match outcome {
            Outcome::Suspended(sp) => {
                let pse_id = split_at.ok_or_else(|| {
                    IrError::Continuation("suspended without recorded PSE".into())
                })?;
                let pse = &self.handler.analysis().pses()[pse_id];
                let mod_work = ctx.work - work_start;
                let message =
                    ContinuationMessage::pack(pse_id, pse, &sp.env, &ctx.heap, mod_work, epoch)?;
                let run = ModRun { message, samples, mod_work, profile_work };
                self.observe_run(&run, epoch);
                Ok(run)
            }
            Outcome::Finished(_) => Err(IrError::Continuation(format!(
                "plan {:?} is not a cut: handler completed inside the sender",
                active_of(&split)
            ))),
        }
    }

    /// Feeds one successful run into the handler's instruments.
    fn observe_run(&self, run: &ModRun, epoch: u64) {
        self.handler.metrics().note_mod_run(
            self.handler.obs(),
            run.message.pse,
            epoch,
            run.message.wire_size() as u64,
            run.mod_work,
            run.profile_work,
        );
    }
}

/// The PSE ids active in a snapshot, for diagnostics.
fn active_of(split: &[bool]) -> Vec<PseId> {
    split.iter().enumerate().filter(|(_, on)| **on).map(|(i, _)| i).collect()
}

struct ModObserver<'a> {
    handler: &'a Arc<PartitionedHandler>,
    samples: &'a mut Vec<PseSample>,
    work_base: u64,
    split_at: Option<PseId>,
    violation: Option<(usize, usize)>,
    profile_work: &'a mut u64,
    split: &'a [bool],
    profiled: &'a [bool],
}

impl EdgeObserver for ModObserver<'_> {
    fn on_edge(
        &mut self,
        from: usize,
        to: usize,
        vars: &[Value],
        heap: &Heap,
        work: u64,
    ) -> EdgeAction {
        if let Some(pse_id) = self.handler.pse_of_edge(from, to) {
            let split = self.split[pse_id];
            if self.profiled[pse_id] {
                let pse = &self.handler.analysis().pses()[pse_id];
                let roots: Vec<Value> = pse.inter.iter().map(|v| vars[v.index()].clone()).collect();
                let classes = &self.handler.program().classes;
                let bytes = self.handler.model().measure_payload(heap, classes, &roots);
                *self.profile_work += self.handler.model().profiling_work(heap, classes, &roots);
                self.samples.push(PseSample {
                    pse: pse_id,
                    mod_work: work - self.work_base,
                    payload_bytes: Some(bytes),
                    was_split: split,
                });
            }
            if split {
                self.split_at = Some(pse_id);
                return EdgeAction::Suspend;
            }
        }
        // Defensive cut check: an edge into a stop node that we are not
        // splitting at means the plan would execute receiver-anchored code
        // on the sender. Halt before it runs.
        if self.handler.analysis().stops.is_stop(to) {
            self.violation = Some((from, to));
            return EdgeAction::Suspend;
        }
        EdgeAction::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpart_cost::DataSizeModel;
    use mpart_ir::parse::parse_program;

    const SRC: &str = r#"
        class ImageData { width: int, buff: ref }
        fn push(event) {
            z0 = event instanceof ImageData
            if z0 == 0 goto skip
            r2 = (ImageData) event
            w = r2.width
            native display_image(w)
            return
        skip:
            return
        }
    "#;

    fn setup() -> (Arc<mpart_ir::Program>, Arc<PartitionedHandler>) {
        let program = Arc::new(parse_program(SRC).unwrap());
        let h = PartitionedHandler::analyze(
            Arc::clone(&program),
            "push",
            Arc::new(DataSizeModel::new()),
        )
        .unwrap();
        (program, h)
    }

    /// Installs the "process on the sender" plan: split at the last edge
    /// of every path instead of the entry.
    fn install_late_plan(h: &Arc<PartitionedHandler>) {
        let late: Vec<usize> = h
            .analysis()
            .pses()
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.edge.is_entry())
            .map(|(i, _)| i)
            .collect();
        h.plan().install(&late);
        h.plan().validate_cut(h.analysis()).unwrap();
    }

    #[test]
    fn modulator_filters_wrong_type_on_sender() {
        let (program, h) = setup();
        install_late_plan(&h);
        let m = h.modulator();
        let mut ctx = ExecCtx::new(&program);
        // A non-ImageData event: the skip path's PSE carries nothing.
        let run = m.handle(&mut ctx, vec![Value::Int(7)]).unwrap();
        let pse = &h.analysis().pses()[run.message.pse];
        assert!(pse.inter.is_empty(), "filtered event ships no data");
        assert!(run.message.payload.wire_size() < 16);
    }

    #[test]
    fn modulator_ships_processed_data_on_main_path() {
        let (program, h) = setup();
        install_late_plan(&h);
        let m = h.modulator();
        let mut ctx = ExecCtx::new(&program);
        let image =
            ctx.heap.alloc_object(&program.classes, program.classes.id("ImageData").unwrap());
        ctx.heap
            .set_field(
                image,
                program
                    .classes
                    .decl(program.classes.id("ImageData").unwrap())
                    .field("width")
                    .unwrap(),
                Value::Int(320),
            )
            .unwrap();
        let run = m.handle(&mut ctx, vec![Value::Ref(image)]).unwrap();
        assert!(run.mod_work > 0);
        assert!(!run.samples.is_empty(), "profiling flags default on");
    }

    #[test]
    fn empty_plan_is_rejected_at_runtime() {
        let (program, h) = setup();
        h.plan().install(&[]); // deliberately invalid
        let m = h.modulator();
        let mut ctx = ExecCtx::new(&program);
        let err = m.handle(&mut ctx, vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, IrError::Continuation(_)), "{err}");
    }

    #[test]
    fn arity_checked() {
        let (program, h) = setup();
        let m = h.modulator();
        let mut ctx = ExecCtx::new(&program);
        assert!(m.handle(&mut ctx, vec![]).is_err());
    }

    #[test]
    fn profiling_flags_suppress_samples() {
        let (program, h) = setup();
        for i in 0..h.analysis().pses().len() {
            h.plan().set_profiled(i, false);
        }
        let m = h.modulator();
        let mut ctx = ExecCtx::new(&program);
        let run = m.handle(&mut ctx, vec![Value::Int(7)]).unwrap();
        assert!(run.samples.is_empty());
    }
}
