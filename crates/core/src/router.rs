//! Multi-host session routing with node-failure failover.
//!
//! The [`session::SessionManager`](crate::session::SessionManager) shards
//! sessions over worker *threads*; this module shards them over *nodes* —
//! independent failure domains, each wrapping its own manager — and
//! promotes the failure domain from "envelope" (dead-letter quarantine)
//! and "process" (journal recovery) to "node". The design follows the
//! retraction idea of the partitioning literature: a placement is a
//! runtime property, re-decided when the host underneath it dies.
//!
//! * [`Router`] hashes cluster-global session ids onto a set of
//!   [`NodeEndpoint`]s (`home = gid % nodes`) and owns the failover state
//!   machine.
//! * [`NodeHealth`] tracks each node with heartbeat-miss hysteresis plus
//!   an error-rate EWMA, mirroring the per-link
//!   [`LinkHealth`](crate::health::LinkHealth) ladder one level up.
//! * On node death the router drains the affected sessions from the
//!   shared [`SessionJournal`] and re-opens them on surviving nodes via
//!   the restore path. Because every node shares one
//!   [`AnalysisCache`], a kill-one-node failover re-analyzes **nothing**
//!   (every restore is a cache hit), and the journaled ack watermark
//!   resumes sequence numbering so no envelope is double-applied.
//! * On rejoin (a down node answering `rejoin_streak` consecutive
//!   heartbeats) the router migrates the node's *home* sessions back —
//!   hysteresis keeps a flapping node from thrashing sessions.
//!
//! Two endpoint flavors exist: [`LocalNode`] (an in-process manager with
//! a kill switch — deterministic, used by chaos tests and the failover
//! bench) and the loopback-TCP node client in the `mpart-jecho` crate
//! (used by `mpart route`).
//!
//! Retraction is a first-class lifecycle phase. A session retracted from
//! a node that later proves alive (a heartbeat partition rather than a
//! crash) leaves an orphaned copy behind; the router never delivers to it
//! again — exactly-once holds — and additionally *reclaims* the orphan's
//! worker slot: every migration records the old `(node, local)` copy, and
//! the heartbeat tick evicts it as soon as the node answers again
//! (`orphans_reclaimed_total`). Reclamation is fenced by the placement
//! epoch: an orphan record is dropped, never evicted, when a live
//! placement occupies the same slot under a newer epoch, so a stale
//! record can never tear down a current copy — and the worker-side
//! tombstone left by an evict rejects any late delivery outright. The
//! same close/evict protocol powers [`Router::close_session`] (retire a
//! session cluster-wide, journal compaction included) and
//! [`Router::drain_node`] (migrate everything off a live node and remove
//! it from the ring — elastic scale-down, `mpart route --drain`).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use mpart_analysis::cache::AnalysisCache;
use mpart_cost::CostModel;
use mpart_ir::interp::BuiltinRegistry;
use mpart_ir::{IrError, Program, Value};
use mpart_obs::{Counter, Gauge, MetricValue, ObsHub, TraceEvent};

use crate::journal::{SessionJournal, SessionSnapshot};
use crate::session::{PrepareOutcome, SessionConfig, SessionManager, SessionOutcome};
use crate::PseId;

/// Cluster-global session id (stable across migrations; also the id the
/// shared journal records the session under).
pub type GlobalSessionId = u64;

/// Everything a node needs to *instantiate* a session: the code side.
/// State (plan epoch, active set, watermark, flags) lives in the journal;
/// the spec is deployment configuration and crosses migrations by clone.
#[derive(Clone)]
pub struct SessionSpec {
    /// The deployed program.
    pub program: Arc<Program>,
    /// Handler function name.
    pub func: String,
    /// Pricing model sessions open under.
    pub model: Arc<dyn CostModel>,
    /// Sender-side builtin registry.
    pub sender_builtins: BuiltinRegistry,
    /// Receiver-side builtin registry.
    pub receiver_builtins: BuiltinRegistry,
}

impl std::fmt::Debug for SessionSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionSpec")
            .field("func", &self.func)
            .field("model", &self.model.name())
            .finish()
    }
}

/// Why a node operation failed — the distinction the failover state
/// machine runs on.
#[derive(Debug)]
pub enum NodeError {
    /// The node itself is unreachable or dead (connection refused, socket
    /// error, manager gone). Counts against [`NodeHealth`] and can trip a
    /// failover.
    Transport(String),
    /// The node is alive but the session-level operation failed (handler
    /// error, analysis failure). Propagated to the caller; the node stays
    /// healthy.
    Handler(IrError),
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NodeError::Transport(msg) => write!(f, "transport: {msg}"),
            NodeError::Handler(e) => write!(f, "handler: {e}"),
        }
    }
}

/// One host in the cluster, as the router sees it.
///
/// Implementations must be cheap to probe: `heartbeat` is called on every
/// router heartbeat tick for every node, up or down.
pub trait NodeEndpoint: Send {
    /// Stable human-readable node name (addresses, diagnostics).
    fn name(&self) -> String;

    /// Opens a fresh session journaled under cluster-global id `gid`;
    /// returns the node-local session id deliveries address.
    fn open(&mut self, gid: GlobalSessionId, spec: &SessionSpec) -> Result<usize, NodeError>;

    /// Re-opens a journaled session from `snapshot` (the migration path);
    /// returns the node-local session id.
    fn restore(
        &mut self,
        gid: GlobalSessionId,
        spec: &SessionSpec,
        snapshot: &SessionSnapshot,
    ) -> Result<usize, NodeError>;

    /// Delivers one event (scalar arguments) through local session
    /// `local`.
    fn deliver(&mut self, local: usize, args: Vec<Value>) -> Result<SessionOutcome, NodeError>;

    /// Closes local session `local` for good (journals the close so
    /// replay drops it); returns its final ack watermark.
    fn close(&mut self, local: usize) -> Result<u64, NodeError>;

    /// Tears down local session `local` without retiring its journal
    /// tail — the migration/orphan-reclaim path; returns its final ack
    /// watermark.
    fn evict(&mut self, local: usize) -> Result<u64, NodeError>;

    /// Two-phase install, step 1: asks the endpoint to validate `active`
    /// as a candidate plan for local session `local`, waiting at most
    /// `budget`. The serving plan is untouched whatever the outcome.
    fn prepare_plan(
        &mut self,
        local: usize,
        active: &[PseId],
        budget: Duration,
    ) -> Result<PrepareOutcome, NodeError>;

    /// Two-phase install, step 2: installs a prepared candidate on local
    /// session `local` (opening its canary window when the node runs a
    /// plan guard); returns the new plan epoch.
    fn commit_plan(&mut self, local: usize, active: &[PseId]) -> Result<u64, NodeError>;

    /// Liveness probe; `false` counts as a heartbeat miss.
    fn heartbeat(&mut self) -> bool;

    /// The node's observability surface flattened to `(identity, value)`
    /// pairs — counters and gauges by their `name{labels}` identity,
    /// histograms as `identity_count` / `identity_sum`. Empty when the
    /// node is unreachable.
    fn metrics(&mut self) -> Vec<(String, f64)>;
}

/// Hysteresis thresholds for [`NodeHealth`].
#[derive(Debug, Clone, Copy)]
pub struct NodeHealthConfig {
    /// Consecutive heartbeat misses before a node is declared dead.
    pub miss_budget: u32,
    /// Consecutive heartbeats a dead node must answer before rejoining.
    pub rejoin_streak: u32,
    /// EWMA smoothing factor for the delivery error rate (0 < α ≤ 1).
    pub ewma_alpha: f64,
    /// Error-rate EWMA at or above which a transport error kills the
    /// node. With the default α = 0.5 a single hard transport error
    /// trips immediately (0.5 ≥ 0.5) — connection refused *is* death —
    /// while raising the threshold tolerates sporadic transport noise.
    pub error_threshold: f64,
}

impl Default for NodeHealthConfig {
    fn default() -> Self {
        NodeHealthConfig { miss_budget: 3, rejoin_streak: 3, ewma_alpha: 0.5, error_threshold: 0.5 }
    }
}

/// Per-node health: heartbeat-miss hysteresis plus an error-rate EWMA,
/// the node-level analogue of [`LinkHealth`](crate::health::LinkHealth).
#[derive(Debug, Clone)]
pub struct NodeHealth {
    config: NodeHealthConfig,
    up: bool,
    consecutive_misses: u32,
    consecutive_beats: u32,
    error_ewma: f64,
}

impl NodeHealth {
    /// A healthy tracker with the given thresholds.
    pub fn new(config: NodeHealthConfig) -> Self {
        NodeHealth {
            config,
            up: true,
            consecutive_misses: 0,
            consecutive_beats: 0,
            error_ewma: 0.0,
        }
    }

    /// Whether the node is currently considered alive.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Smoothed delivery error rate.
    pub fn error_rate(&self) -> f64 {
        self.error_ewma
    }

    /// Records a successful delivery: decays the error EWMA and clears
    /// the miss streak.
    pub fn record_success(&mut self) {
        self.consecutive_misses = 0;
        self.error_ewma *= 1.0 - self.config.ewma_alpha;
    }

    /// Records a transport-level delivery error; returns `true` on the
    /// up → down transition (error EWMA crossed the threshold).
    pub fn record_error(&mut self) -> bool {
        self.error_ewma = self.config.ewma_alpha + (1.0 - self.config.ewma_alpha) * self.error_ewma;
        if self.up && self.error_ewma >= self.config.error_threshold {
            self.force_down();
            return true;
        }
        false
    }

    /// Records a heartbeat miss; returns `true` on the up → down
    /// transition (miss budget exhausted).
    pub fn record_miss(&mut self) -> bool {
        self.consecutive_beats = 0;
        self.consecutive_misses = self.consecutive_misses.saturating_add(1);
        if self.up && self.consecutive_misses >= self.config.miss_budget.max(1) {
            self.force_down();
            return true;
        }
        false
    }

    /// Records an answered heartbeat; returns `true` on the down → up
    /// transition (rejoin streak reached).
    pub fn record_beat(&mut self) -> bool {
        self.consecutive_misses = 0;
        if self.up {
            return false;
        }
        self.consecutive_beats = self.consecutive_beats.saturating_add(1);
        if self.consecutive_beats >= self.config.rejoin_streak.max(1) {
            self.up = true;
            self.consecutive_beats = 0;
            self.error_ewma = 0.0;
            return true;
        }
        false
    }

    /// Marks the node dead unconditionally (idempotent).
    pub fn force_down(&mut self) {
        self.up = false;
        self.consecutive_beats = 0;
        self.consecutive_misses = 0;
    }
}

/// Router policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouterConfig {
    /// Node health thresholds.
    pub health: NodeHealthConfig,
}

struct NodeSlot {
    endpoint: Box<dyn NodeEndpoint>,
    health: NodeHealth,
    up_gauge: Gauge,
    misses: Counter,
    /// Drained out of the ring ([`Router::drain_node`]): never picked as
    /// a migration target, never heartbeated, never rejoined.
    removed: bool,
}

struct Placement {
    /// Hash-preferred node (`gid % nodes`); rejoin migrates back here.
    home: usize,
    /// Node currently hosting the session.
    node: usize,
    /// Node-local session id on `node`.
    local: usize,
    /// Placement epoch, bumped on every migration — the fencing token
    /// orphan reclamation checks before touching a slot.
    epoch: u64,
    /// Code side, for re-instantiation on migration.
    spec: SessionSpec,
}

/// A session copy left behind by a migration, awaiting reclamation on a
/// node that may yet prove alive.
struct OrphanCopy {
    gid: GlobalSessionId,
    node: usize,
    local: usize,
    /// Placement epoch at orphaning time; a live placement on the same
    /// slot always carries a newer epoch, which fences the evict.
    epoch: u64,
}

/// Why the router tore a session copy down — the label on
/// `sessions_closed_total{reason}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CloseReason {
    /// Explicit [`Router::close_session`]: retired cluster-wide.
    Close,
    /// Migration cleanup: the old copy retracted right after a restore
    /// was acked elsewhere (rejoin rebalance, live migrations).
    Evict,
    /// [`Router::drain_node`] scale-down.
    Drain,
    /// Heartbeat-tick reclamation of an orphan on a survived node.
    Orphan,
}

struct RouterMetrics {
    node_failovers: Counter,
    sessions_migrated: Counter,
    route_errors: Counter,
    orphans_reclaimed: Counter,
    closed_close: Counter,
    closed_evict: Counter,
    closed_drain: Counter,
    closed_orphan: Counter,
    cache_hits: Gauge,
    cache_misses: Gauge,
}

impl RouterMetrics {
    fn closed(&self, reason: CloseReason) -> &Counter {
        match reason {
            CloseReason::Close => &self.closed_close,
            CloseReason::Evict => &self.closed_evict,
            CloseReason::Drain => &self.closed_drain,
            CloseReason::Orphan => &self.closed_orphan,
        }
    }
}

/// Hashes sessions onto nodes and migrates them off dead ones. See the
/// [module docs](self) for the failure model.
pub struct Router {
    nodes: Vec<NodeSlot>,
    placements: BTreeMap<GlobalSessionId, Placement>,
    orphans: Vec<OrphanCopy>,
    next_gid: GlobalSessionId,
    journal: Arc<SessionJournal>,
    cache: Arc<AnalysisCache>,
    obs: Arc<ObsHub>,
    metrics: RouterMetrics,
    config: RouterConfig,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("nodes", &self.nodes.len())
            .field("sessions", &self.placements.len())
            .finish()
    }
}

impl Router {
    /// An empty router over the shared `journal` (the migration
    /// authority) and `cache` (what makes migration analysis-free). Every
    /// node added later must share both.
    pub fn new(
        config: RouterConfig,
        journal: Arc<SessionJournal>,
        cache: Arc<AnalysisCache>,
    ) -> Self {
        let obs = Arc::new(ObsHub::new());
        let registry = obs.registry();
        let metrics = RouterMetrics {
            node_failovers: registry.counter("node_failovers_total", &[]),
            sessions_migrated: registry.counter("sessions_migrated_total", &[]),
            route_errors: registry.counter("route_errors_total", &[]),
            orphans_reclaimed: registry.counter("orphans_reclaimed_total", &[]),
            closed_close: registry.counter("sessions_closed_total", &[("reason", "close")]),
            closed_evict: registry.counter("sessions_closed_total", &[("reason", "evict")]),
            closed_drain: registry.counter("sessions_closed_total", &[("reason", "drain")]),
            closed_orphan: registry.counter("sessions_closed_total", &[("reason", "orphan")]),
            cache_hits: registry.gauge("cluster_analysis_cache_hits", &[]),
            cache_misses: registry.gauge("cluster_analysis_cache_misses", &[]),
        };
        Router {
            nodes: Vec::new(),
            placements: BTreeMap::new(),
            orphans: Vec::new(),
            next_gid: 0,
            journal,
            cache,
            obs,
            metrics,
            config,
        }
    }

    /// Registers a node; returns its index. Nodes are added before
    /// sessions are opened — the hash ring does not resize live.
    pub fn add_node(&mut self, endpoint: Box<dyn NodeEndpoint>) -> usize {
        let index = self.nodes.len();
        let label = index.to_string();
        let registry = self.obs.registry();
        let up_gauge = registry.gauge("node_up", &[("node", &label)]);
        up_gauge.set(1.0);
        let misses = registry.counter("node_heartbeat_misses_total", &[("node", &label)]);
        self.nodes.push(NodeSlot {
            endpoint,
            health: NodeHealth::new(self.config.health),
            up_gauge,
            misses,
            removed: false,
        });
        index
    }

    /// Registered nodes (up or down).
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Routed sessions.
    pub fn sessions(&self) -> usize {
        self.placements.len()
    }

    /// Whether node `node` is currently considered alive (a drained node
    /// is out of the ring and reads as down).
    pub fn node_is_up(&self, node: usize) -> bool {
        self.nodes.get(node).is_some_and(|slot| slot.health.is_up() && !slot.removed)
    }

    /// Orphaned session copies awaiting reclamation.
    pub fn orphans(&self) -> usize {
        self.orphans.len()
    }

    /// The node currently hosting session `gid`.
    pub fn placement(&self, gid: GlobalSessionId) -> Option<usize> {
        self.placements.get(&gid).map(|p| p.node)
    }

    /// The router's observability hub (failover counters, `node_up`
    /// gauges, `node_failover`/`node_rejoin` trace events).
    pub fn obs(&self) -> &Arc<ObsHub> {
        self.metrics.cache_hits.set(self.cache.hits() as f64);
        self.metrics.cache_misses.set(self.cache.misses() as f64);
        &self.obs
    }

    /// The shared journal.
    pub fn journal(&self) -> &Arc<SessionJournal> {
        &self.journal
    }

    /// The shared analysis cache.
    pub fn cache(&self) -> &Arc<AnalysisCache> {
        &self.cache
    }

    /// Opens a session on its home node (`gid % nodes`), falling forward
    /// around the ring if the home node is down.
    ///
    /// # Errors
    ///
    /// [`IrError::Continuation`] when no node is up, transport failures,
    /// and analysis errors from the node.
    pub fn open_session(&mut self, spec: SessionSpec) -> Result<GlobalSessionId, IrError> {
        if self.nodes.is_empty() {
            return Err(IrError::Continuation("router has no nodes".into()));
        }
        let gid = self.next_gid;
        let home = (gid % self.nodes.len() as u64) as usize;
        let target = self.pick_up_node(home)?;
        let local = self.nodes[target]
            .endpoint
            .open(gid, &spec)
            .map_err(|e| node_ir_error(target, "open", &e))?;
        self.next_gid += 1;
        self.placements.insert(gid, Placement { home, node: target, local, epoch: 0, spec });
        Ok(gid)
    }

    /// Delivers one event to session `gid`, wherever it currently lives.
    /// A transport failure that trips the hosting node's health triggers
    /// failover *inline*: the affected sessions (this one included) are
    /// drained from the journal, restored on survivors, and the delivery
    /// is retried on the new placement.
    ///
    /// # Errors
    ///
    /// Handler-level errors from the session; [`IrError::Continuation`]
    /// when the cluster has no surviving node to migrate to.
    pub fn deliver(
        &mut self,
        gid: GlobalSessionId,
        args: Vec<Value>,
    ) -> Result<SessionOutcome, IrError> {
        // One attempt per node plus one: a failover mid-loop re-routes to
        // a survivor, which may itself die and fail over again.
        for _ in 0..=self.nodes.len() {
            let placement = self
                .placements
                .get(&gid)
                .ok_or_else(|| IrError::Unresolved(format!("unknown routed session {gid}")))?;
            let (node, local) = (placement.node, placement.local);
            if !self.nodes[node].health.is_up() {
                self.fail_node(node)?;
                continue;
            }
            match self.nodes[node].endpoint.deliver(local, args.clone()) {
                Ok(outcome) => {
                    self.nodes[node].health.record_success();
                    return Ok(outcome);
                }
                Err(NodeError::Handler(e)) => {
                    self.nodes[node].health.record_success();
                    return Err(e);
                }
                Err(NodeError::Transport(msg)) => {
                    self.metrics.route_errors.inc();
                    if self.nodes[node].health.record_error() {
                        self.fail_node(node)?;
                        continue;
                    }
                    return Err(IrError::Continuation(format!("node {node}: {msg}")));
                }
            }
        }
        Err(IrError::Continuation(format!("session {gid}: no healthy placement")))
    }

    /// Transactionally re-partitions routed session `gid` (DESIGN.md
    /// §16): `Prepare` on the hosting node validates the candidate within
    /// `budget`, and only a [`PrepareOutcome::Ready`] endpoint receives
    /// the `Commit` (which opens the canary window on the session's
    /// worker). Every other path — rejection, quarantine, prepare timeout,
    /// transport failure — returns an error and leaves the old plan
    /// serving untouched; a prepare failure never triggers failover.
    ///
    /// # Errors
    ///
    /// [`IrError::Unresolved`] for an unknown session,
    /// [`IrError::Invalid`] for a rejected or quarantined candidate,
    /// [`IrError::Deadline`] when prepare timed out, transport errors
    /// from either step.
    pub fn reconfigure_session(
        &mut self,
        gid: GlobalSessionId,
        active: &[PseId],
        budget: Duration,
    ) -> Result<u64, IrError> {
        let placement = self
            .placements
            .get(&gid)
            .ok_or_else(|| IrError::Unresolved(format!("unknown routed session {gid}")))?;
        let (node, local) = (placement.node, placement.local);
        if !self.nodes[node].health.is_up() {
            return Err(IrError::Continuation(format!(
                "session {gid}: hosting node {node} is down"
            )));
        }
        let outcome = self.nodes[node]
            .endpoint
            .prepare_plan(local, active, budget)
            .map_err(|e| node_ir_error(node, "prepare", &e))?;
        match outcome {
            PrepareOutcome::Ready => {}
            PrepareOutcome::Rejected(msg) => {
                return Err(IrError::Invalid(format!("plan prepare rejected: {msg}")));
            }
            PrepareOutcome::Quarantined => {
                return Err(IrError::Invalid(format!(
                    "plan prepare rejected: {active:?} is quarantined"
                )));
            }
        }
        self.nodes[node]
            .endpoint
            .commit_plan(local, active)
            .map_err(|e| node_ir_error(node, "commit", &e))
    }

    /// One heartbeat tick: probes every node, charges misses against the
    /// miss budget (failing nodes over it), and credits beats toward the
    /// rejoin streak (rebalancing home sessions back on the transition).
    ///
    /// # Errors
    ///
    /// Migration failures (journal drain or restore on the target node).
    pub fn heartbeat(&mut self) -> Result<(), IrError> {
        for node in 0..self.nodes.len() {
            if self.nodes[node].removed {
                continue;
            }
            let beat = self.nodes[node].endpoint.heartbeat();
            let slot = &mut self.nodes[node];
            if beat {
                if slot.health.record_beat() {
                    self.rejoin_node(node)?;
                }
            } else {
                slot.misses.inc();
                if slot.health.record_miss() {
                    self.fail_node(node)?;
                }
            }
        }
        self.reconcile_orphans();
        Ok(())
    }

    /// First up node at or after `home` on the ring (drained nodes are
    /// off the ring).
    fn pick_up_node(&self, home: usize) -> Result<usize, IrError> {
        let n = self.nodes.len();
        (0..n)
            .map(|k| (home + k) % n)
            .find(|&i| self.nodes[i].health.is_up() && !self.nodes[i].removed)
            .ok_or_else(|| IrError::Continuation("no surviving nodes".into()))
    }

    /// Declares `node` dead and migrates every session it hosts onto
    /// survivors: drain the shared journal once, then restore each
    /// affected session (cache hit — zero re-analysis) with its journaled
    /// watermark, so numbering resumes exactly where the dead node acked.
    fn fail_node(&mut self, node: usize) -> Result<(), IrError> {
        self.nodes[node].health.force_down();
        self.nodes[node].up_gauge.set(0.0);
        let affected: Vec<GlobalSessionId> =
            self.placements.iter().filter(|(_, p)| p.node == node).map(|(gid, _)| *gid).collect();
        if affected.is_empty() {
            // Repeated declaration (e.g. miss budget after an inline
            // failover already drained it): nothing left to migrate.
            return Ok(());
        }
        self.metrics.node_failovers.inc();
        let snapshots = self.journal.replay()?;
        let mut migrated = 0u32;
        for gid in affected {
            migrated += self.migrate(gid, None, &snapshots, CloseReason::Evict)?;
        }
        self.metrics.sessions_migrated.add(migrated as u64);
        self.obs.record(TraceEvent::NodeFailover { node: node as u32, sessions: migrated });
        Ok(())
    }

    /// Rejoin transition: bring `node` back up and migrate its *home*
    /// sessions (those hashed to it but displaced by an earlier failover)
    /// back onto it. A session closed during the outage no longer has a
    /// placement (the session table is placement-authoritative), so it is
    /// never restored — see [`close_session`](Self::close_session).
    fn rejoin_node(&mut self, node: usize) -> Result<(), IrError> {
        self.nodes[node].up_gauge.set(1.0);
        let coming_home: Vec<GlobalSessionId> = self
            .placements
            .iter()
            .filter(|(_, p)| p.home == node && p.node != node)
            .map(|(gid, _)| *gid)
            .collect();
        let mut migrated = 0u32;
        if !coming_home.is_empty() {
            let snapshots = self.journal.replay()?;
            for gid in coming_home {
                migrated += self.migrate(gid, Some(node), &snapshots, CloseReason::Evict)?;
            }
            self.metrics.sessions_migrated.add(migrated as u64);
        }
        self.obs.record(TraceEvent::NodeRejoin { node: node as u32, sessions: migrated });
        Ok(())
    }

    /// Moves one session to `target` (or its ring-preferred survivor),
    /// restoring journaled state when the journal has any. A target that
    /// proves dead during the restore is marked down and the next
    /// survivor tried — a cascading failure drains the whole ring before
    /// giving up.
    ///
    /// Only after the restore is acked is the old copy retracted: evicted
    /// immediately when its node is up (the rejoin-rebalance and drain
    /// paths), or recorded as an orphan for heartbeat-tick reclamation
    /// when it is not (the node may yet prove to have survived a
    /// partition). A session closed concurrently (no placement left) is
    /// skipped, not resurrected.
    fn migrate(
        &mut self,
        gid: GlobalSessionId,
        target: Option<usize>,
        snapshots: &BTreeMap<u64, SessionSnapshot>,
        reason: CloseReason,
    ) -> Result<u32, IrError> {
        let Some(placement) = self.placements.get(&gid) else {
            return Ok(0);
        };
        let home = placement.home;
        let old = (placement.node, placement.local, placement.epoch);
        let mut target = match target {
            Some(t) => t,
            None => self.pick_up_node(home)?,
        };
        loop {
            let spec = self.placements[&gid].spec.clone();
            let result = match snapshots.get(&gid) {
                Some(snapshot) => self.nodes[target].endpoint.restore(gid, &spec, snapshot),
                None => self.nodes[target].endpoint.open(gid, &spec),
            };
            match result {
                Ok(local) => {
                    let placement = self.placements.get_mut(&gid).expect("placement exists");
                    placement.node = target;
                    placement.local = local;
                    placement.epoch += 1;
                    self.retract_copy(gid, old.0, old.1, old.2, reason);
                    return Ok(1);
                }
                Err(NodeError::Transport(_)) => {
                    self.nodes[target].health.force_down();
                    self.nodes[target].up_gauge.set(0.0);
                    target = self.pick_up_node(home)?;
                }
                Err(e @ NodeError::Handler(_)) => return Err(node_ir_error(target, "migrate", &e)),
            }
        }
    }

    /// Retracts the pre-migration copy of `gid` at `(node, local)`:
    /// evicted now when the node is reachable, recorded for the heartbeat
    /// tick to reclaim otherwise.
    fn retract_copy(
        &mut self,
        gid: GlobalSessionId,
        node: usize,
        local: usize,
        epoch: u64,
        reason: CloseReason,
    ) {
        if self.nodes[node].health.is_up() {
            match self.nodes[node].endpoint.evict(local) {
                Ok(watermark) => {
                    self.metrics.closed(reason).inc();
                    self.obs.record(TraceEvent::SessionClosed { session: gid, watermark });
                    return;
                }
                Err(NodeError::Handler(_)) => {
                    // The copy is already gone (fresh manager after a
                    // reboot, or closed earlier) — nothing to reclaim.
                    return;
                }
                Err(NodeError::Transport(_)) => {
                    // Unreachable after all; fall through to the orphan
                    // list without touching health — a cleanup call must
                    // not cascade into another failover.
                }
            }
        }
        self.orphans.push(OrphanCopy { gid, node, local, epoch });
    }

    /// Heartbeat-tick reconciliation: for every recorded orphan whose
    /// node answers again, evict the leftover copy and reclaim its worker
    /// slot. The placement epoch is the fence — a record whose slot is
    /// now occupied by a live placement (necessarily under a newer epoch)
    /// is dropped, never evicted, so reclamation can never tear down a
    /// current copy. A `Handler` error means the node was rebuilt and the
    /// copy died with it; the record is dropped as settled.
    fn reconcile_orphans(&mut self) {
        if self.orphans.is_empty() {
            return;
        }
        let orphans = std::mem::take(&mut self.orphans);
        for orphan in orphans {
            // A live placement on the same slot always carries a newer
            // epoch (every migration bumps it); either way the slot is
            // current, not orphaned — drop the record untouched.
            let fenced =
                self.placements.values().any(|p| p.node == orphan.node && p.local == orphan.local);
            if fenced {
                debug_assert!(self.placements.values().all(|p| {
                    p.node != orphan.node || p.local != orphan.local || p.epoch != orphan.epoch
                }));
                continue;
            }
            if !self.nodes[orphan.node].health.is_up() || self.nodes[orphan.node].removed {
                self.orphans.push(orphan);
                continue;
            }
            match self.nodes[orphan.node].endpoint.evict(orphan.local) {
                Ok(watermark) => {
                    self.metrics.orphans_reclaimed.inc();
                    self.metrics.closed(CloseReason::Orphan).inc();
                    self.obs.record(TraceEvent::SessionClosed { session: orphan.gid, watermark });
                }
                Err(NodeError::Handler(_)) => {}
                Err(NodeError::Transport(_)) => self.orphans.push(orphan),
            }
        }
    }

    /// Closes session `gid` cluster-wide: tears down the live copy (or,
    /// when its node is unreachable, records the copy for heartbeat-tick
    /// reclamation), retires the journal tail with a close record,
    /// compacts the journal, and removes the placement — after which no
    /// rejoin or failover will ever restore it. Returns the final ack
    /// watermark.
    ///
    /// # Errors
    ///
    /// [`IrError::Unresolved`] for an unknown session; journal I/O
    /// failures.
    pub fn close_session(&mut self, gid: GlobalSessionId) -> Result<u64, IrError> {
        let placement = self
            .placements
            .get(&gid)
            .ok_or_else(|| IrError::Unresolved(format!("unknown routed session {gid}")))?;
        let (node, local, epoch) = (placement.node, placement.local, placement.epoch);
        let watermark = if self.node_is_up(node) {
            match self.nodes[node].endpoint.close(local) {
                // The node's worker journals the close record itself.
                Ok(watermark) => watermark,
                Err(e) => return Err(node_ir_error(node, "close", &e)),
            }
        } else {
            // The hosting node is unreachable: retire the session in the
            // journal directly and leave the stranded copy to the orphan
            // reconciler (fenced from ever processing a late delivery by
            // its worker tombstone once evicted, and by the removed
            // placement meanwhile).
            let watermark = self.journal.replay()?.get(&gid).map_or(0, |s| s.watermark);
            self.journal.append(crate::journal::JournalRecord::Close { session: gid })?;
            self.orphans.push(OrphanCopy { gid, node, local, epoch });
            watermark
        };
        self.placements.remove(&gid);
        self.metrics.closed(CloseReason::Close).inc();
        self.obs.record(TraceEvent::SessionClosed { session: gid, watermark });
        self.journal.compact()?;
        Ok(watermark)
    }

    /// Elastic scale-down: migrates every session `node` hosts onto the
    /// rest of the ring (journal-drain + cache-hit restores — zero
    /// re-analysis), evicts the drained copies, removes the node from the
    /// ring for good (never heartbeated, never rejoined, never a
    /// migration target), and compacts the shared journal down to the
    /// live set. Returns the number of sessions migrated away.
    ///
    /// # Errors
    ///
    /// [`IrError::Unresolved`] for an unknown node,
    /// [`IrError::Continuation`] when no other node is up to take the
    /// sessions, and migration failures.
    pub fn drain_node(&mut self, node: usize) -> Result<u32, IrError> {
        if node >= self.nodes.len() {
            return Err(IrError::Unresolved(format!("unknown node {node}")));
        }
        if self.nodes[node].removed {
            return Err(IrError::Unresolved(format!("node {node} already drained")));
        }
        // Off the ring first, so migrations cannot pick it as a target.
        self.nodes[node].removed = true;
        let hosted: Vec<GlobalSessionId> =
            self.placements.iter().filter(|(_, p)| p.node == node).map(|(gid, _)| *gid).collect();
        let mut migrated = 0u32;
        if !hosted.is_empty() {
            let snapshots = self.journal.replay()?;
            for gid in hosted {
                migrated += self.migrate(gid, None, &snapshots, CloseReason::Drain)?;
            }
            self.metrics.sessions_migrated.add(migrated as u64);
        }
        self.nodes[node].up_gauge.set(0.0);
        self.journal.compact()?;
        Ok(migrated)
    }

    /// The whole cluster on one surface: the router hub's counters and
    /// gauges under their own identities, plus every node's metrics with
    /// a `node="i"` label injected (so per-node gauges never collide or
    /// silently sum across nodes), plus the placement-authoritative
    /// per-node session counts (`router_placed_sessions{node}` — what the
    /// router will actually deliver to, immune to the double counting a
    /// node-reported `sessions_open` suffers while an orphaned copy
    /// lingers) and the pending-orphan counts
    /// (`router_orphan_sessions{node}`). Sorted by identity.
    pub fn cluster_stats(&mut self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = Vec::new();
        for metric in self.obs().registry().snapshot().metrics {
            let identity = metric.identity();
            match metric.value {
                MetricValue::Counter(v) => out.push((identity, v as f64)),
                MetricValue::Gauge(v) => out.push((identity, v)),
                MetricValue::Histogram(h) => {
                    out.push((format!("{identity}_count"), h.count as f64));
                    out.push((format!("{identity}_sum"), h.sum as f64));
                }
            }
        }
        for index in 0..self.nodes.len() {
            let placed = self.placements.values().filter(|p| p.node == index).count();
            let orphaned = self.orphans.iter().filter(|o| o.node == index).count();
            out.push((inject_node_label("router_placed_sessions", index), placed as f64));
            out.push((inject_node_label("router_orphan_sessions", index), orphaned as f64));
        }
        for (index, slot) in self.nodes.iter_mut().enumerate() {
            for (identity, value) in slot.endpoint.metrics() {
                out.push((inject_node_label(&identity, index), value));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Rewrites `name{labels}` to carry a `node="i"` label.
fn inject_node_label(identity: &str, node: usize) -> String {
    match identity.find('{') {
        Some(at) => {
            let (name, rest) = identity.split_at(at + 1);
            format!("{name}node=\"{node}\",{rest}")
        }
        None => format!("{identity}{{node=\"{node}\"}}"),
    }
}

fn node_ir_error(node: usize, what: &str, error: &NodeError) -> IrError {
    match error {
        NodeError::Transport(msg) => {
            IrError::Continuation(format!("node {node} {what}: transport: {msg}"))
        }
        NodeError::Handler(e) => e.clone(),
    }
}

/// An in-process node: a [`SessionManager`] behind a kill switch.
///
/// `LocalNode` is the deterministic endpoint — no sockets, no timing —
/// used by node-level chaos tests and the `failover` bench. [`kill`]
/// drops the manager (sessions and their un-journaled in-memory state are
/// gone, exactly like a host crash); [`revive`] builds a fresh, empty
/// manager around the same shared cache, ready for the router's rejoin
/// migration. Clones share the same node.
///
/// [`kill`]: LocalNode::kill
/// [`revive`]: LocalNode::revive
#[derive(Clone)]
pub struct LocalNode {
    inner: Arc<Mutex<LocalNodeInner>>,
}

struct LocalNodeInner {
    name: String,
    config: SessionConfig,
    cache: Arc<AnalysisCache>,
    manager: Option<SessionManager>,
    /// Heartbeat partition: the node is alive (sessions keep their
    /// state) but unreachable from the router until [`LocalNode::heal`].
    partitioned: bool,
}

impl std::fmt::Debug for LocalNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().expect("local node poisoned");
        f.debug_struct("LocalNode")
            .field("name", &inner.name)
            .field("alive", &inner.manager.is_some())
            .finish()
    }
}

impl LocalNode {
    /// A live node named `name`. `config` should carry the cluster's
    /// shared journal ([`SessionConfig::with_journal`]) and `cache` must
    /// be the cluster-shared analysis cache — both survive [`kill`].
    ///
    /// [`kill`]: LocalNode::kill
    pub fn new(name: impl Into<String>, config: SessionConfig, cache: Arc<AnalysisCache>) -> Self {
        let manager = SessionManager::with_shared_cache(config.clone(), Arc::clone(&cache));
        LocalNode {
            inner: Arc::new(Mutex::new(LocalNodeInner {
                name: name.into(),
                config,
                cache,
                manager: Some(manager),
                partitioned: false,
            })),
        }
    }

    /// Partitions the node away from the router: heartbeats and every
    /// endpoint operation fail as transport errors, but the manager (and
    /// all session state, orphaned copies included) stays alive — the
    /// "node survived, router thinks it died" half of the failure matrix.
    pub fn partition(&self) {
        self.inner.lock().expect("local node poisoned").partitioned = true;
    }

    /// Heals a [`partition`](LocalNode::partition): the node answers
    /// again with its state intact.
    pub fn heal(&self) {
        self.inner.lock().expect("local node poisoned").partitioned = false;
    }

    /// Crashes the node: the manager is shut down and dropped. Deliveries
    /// and heartbeats fail until [`revive`](LocalNode::revive).
    pub fn kill(&self) {
        let mut inner = self.inner.lock().expect("local node poisoned");
        if let Some(manager) = inner.manager.take() {
            manager.shutdown();
        }
    }

    /// Restarts the node with a fresh, empty manager over the shared
    /// cache (the host rebooted; the process state did not survive).
    pub fn revive(&self) {
        let mut inner = self.inner.lock().expect("local node poisoned");
        if inner.manager.is_none() {
            inner.manager = Some(SessionManager::with_shared_cache(
                inner.config.clone(),
                Arc::clone(&inner.cache),
            ));
        }
    }

    /// Whether the node currently has a live manager.
    pub fn is_alive(&self) -> bool {
        self.inner.lock().expect("local node poisoned").manager.is_some()
    }

    /// Live sessions on the manager (0 when dead): worker slots actually
    /// held, so a reclaimed orphan or drained copy no longer counts.
    pub fn sessions(&self) -> usize {
        let inner = self.inner.lock().expect("local node poisoned");
        inner.manager.as_ref().map_or(0, |m| m.live_sessions())
    }
}

impl NodeEndpoint for LocalNode {
    fn name(&self) -> String {
        self.inner.lock().expect("local node poisoned").name.clone()
    }

    fn open(&mut self, gid: GlobalSessionId, spec: &SessionSpec) -> Result<usize, NodeError> {
        let mut inner = self.inner.lock().expect("local node poisoned");
        if inner.partitioned {
            return Err(partitioned());
        }
        let manager = inner.manager.as_mut().ok_or_else(down)?;
        manager
            .open_session_as(
                Arc::clone(&spec.program),
                &spec.func,
                Arc::clone(&spec.model),
                spec.sender_builtins.clone(),
                spec.receiver_builtins.clone(),
                gid,
            )
            .map_err(NodeError::Handler)
    }

    fn restore(
        &mut self,
        gid: GlobalSessionId,
        spec: &SessionSpec,
        snapshot: &SessionSnapshot,
    ) -> Result<usize, NodeError> {
        let mut inner = self.inner.lock().expect("local node poisoned");
        if inner.partitioned {
            return Err(partitioned());
        }
        let manager = inner.manager.as_mut().ok_or_else(down)?;
        manager
            .restore_session_as(
                Arc::clone(&spec.program),
                &spec.func,
                Arc::clone(&spec.model),
                spec.sender_builtins.clone(),
                spec.receiver_builtins.clone(),
                snapshot,
                gid,
            )
            .map_err(NodeError::Handler)
    }

    fn deliver(&mut self, local: usize, args: Vec<Value>) -> Result<SessionOutcome, NodeError> {
        let inner = self.inner.lock().expect("local node poisoned");
        if inner.partitioned {
            return Err(partitioned());
        }
        let manager = inner.manager.as_ref().ok_or_else(down)?;
        manager.deliver(local, move |_| Ok(args)).map_err(NodeError::Handler)
    }

    fn close(&mut self, local: usize) -> Result<u64, NodeError> {
        let mut inner = self.inner.lock().expect("local node poisoned");
        if inner.partitioned {
            return Err(partitioned());
        }
        let manager = inner.manager.as_mut().ok_or_else(down)?;
        manager.close_session(local).map_err(NodeError::Handler)
    }

    fn evict(&mut self, local: usize) -> Result<u64, NodeError> {
        let mut inner = self.inner.lock().expect("local node poisoned");
        if inner.partitioned {
            return Err(partitioned());
        }
        let manager = inner.manager.as_mut().ok_or_else(down)?;
        manager.evict_session(local).map_err(NodeError::Handler)
    }

    fn prepare_plan(
        &mut self,
        local: usize,
        active: &[PseId],
        budget: Duration,
    ) -> Result<PrepareOutcome, NodeError> {
        let inner = self.inner.lock().expect("local node poisoned");
        if inner.partitioned {
            return Err(partitioned());
        }
        let manager = inner.manager.as_ref().ok_or_else(down)?;
        manager.prepare_plan(local, active, budget).map_err(NodeError::Handler)
    }

    fn commit_plan(&mut self, local: usize, active: &[PseId]) -> Result<u64, NodeError> {
        let inner = self.inner.lock().expect("local node poisoned");
        if inner.partitioned {
            return Err(partitioned());
        }
        let manager = inner.manager.as_ref().ok_or_else(down)?;
        manager.commit_plan(local, active).map_err(NodeError::Handler)
    }

    fn heartbeat(&mut self) -> bool {
        let inner = self.inner.lock().expect("local node poisoned");
        inner.manager.is_some() && !inner.partitioned
    }

    fn metrics(&mut self) -> Vec<(String, f64)> {
        let inner = self.inner.lock().expect("local node poisoned");
        if inner.partitioned {
            return Vec::new();
        }
        let Some(manager) = inner.manager.as_ref() else {
            return Vec::new();
        };
        let mut merged: BTreeMap<String, f64> = BTreeMap::new();
        let mut absorb = |snapshot: mpart_obs::Snapshot| {
            for metric in snapshot.metrics {
                let identity = metric.identity();
                match metric.value {
                    MetricValue::Counter(v) => *merged.entry(identity).or_default() += v as f64,
                    MetricValue::Gauge(v) => *merged.entry(identity).or_default() += v,
                    MetricValue::Histogram(h) => {
                        *merged.entry(format!("{identity}_count")).or_default() += h.count as f64;
                        *merged.entry(format!("{identity}_sum")).or_default() += h.sum as f64;
                    }
                }
            }
        };
        absorb(manager.obs().registry().snapshot());
        for session in 0..manager.sessions() {
            if let Some(handler) = manager.handler(session) {
                absorb(handler.obs().registry().snapshot());
            }
        }
        merged.into_iter().collect()
    }
}

fn down() -> NodeError {
    NodeError::Transport("node is down".into())
}

fn partitioned() -> NodeError {
    NodeError::Transport("node is partitioned".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpart_cost::DataSizeModel;
    use mpart_ir::parse::parse_program;

    const SRC: &str = "fn double(x) {\n  y = x * 2\n  native emit(y)\n  return y\n}\n";

    fn spec() -> SessionSpec {
        let program = Arc::new(parse_program(SRC).unwrap());
        let mut receiver = BuiltinRegistry::new();
        receiver.register_native("emit", 1, |_, _| Ok(Value::Null));
        SessionSpec {
            program,
            func: "double".into(),
            model: Arc::new(DataSizeModel::new()),
            sender_builtins: BuiltinRegistry::new(),
            receiver_builtins: receiver,
        }
    }

    fn cluster(nodes: usize) -> (Router, Vec<LocalNode>) {
        let journal = Arc::new(SessionJournal::in_memory());
        let cache = Arc::new(AnalysisCache::new(64));
        let mut router =
            Router::new(RouterConfig::default(), Arc::clone(&journal), Arc::clone(&cache));
        let locals: Vec<LocalNode> = (0..nodes)
            .map(|i| {
                let config =
                    SessionConfig::default().with_workers(1).with_journal(Arc::clone(&journal));
                LocalNode::new(format!("node-{i}"), config, Arc::clone(&cache))
            })
            .collect();
        for node in &locals {
            router.add_node(Box::new(node.clone()));
        }
        (router, locals)
    }

    #[test]
    fn node_health_hysteresis_on_misses_and_rejoin() {
        let mut h = NodeHealth::new(NodeHealthConfig {
            miss_budget: 3,
            rejoin_streak: 2,
            ..NodeHealthConfig::default()
        });
        assert!(h.is_up());
        // Misses interleaved with beats never accumulate.
        for _ in 0..5 {
            assert!(!h.record_miss());
            assert!(!h.record_miss());
            assert!(!h.record_beat());
        }
        assert!(h.is_up());
        // Three straight misses kill the node, exactly once.
        assert!(!h.record_miss());
        assert!(!h.record_miss());
        assert!(h.record_miss());
        assert!(!h.record_miss(), "already down");
        // One beat is not enough to rejoin; two are.
        assert!(!h.record_beat());
        assert!(h.record_beat());
        assert!(h.is_up());
    }

    #[test]
    fn node_health_error_ewma_trips_and_decays() {
        // Defaults: α = 0.5, threshold = 0.5 — first hard error trips.
        let mut h = NodeHealth::new(NodeHealthConfig::default());
        assert!(h.record_error(), "hard transport error kills the node");
        assert!(!h.is_up());

        // A higher threshold tolerates isolated errors between successes.
        let mut h = NodeHealth::new(NodeHealthConfig {
            error_threshold: 0.9,
            ..NodeHealthConfig::default()
        });
        for _ in 0..10 {
            assert!(!h.record_error());
            h.record_success();
        }
        assert!(h.is_up());
        assert!(h.error_rate() < 0.9);
        // Sustained errors still cross eventually.
        assert!((0..8).any(|_| h.record_error()));
        assert!(!h.is_up());
    }

    #[test]
    fn sessions_hash_onto_home_nodes() {
        let (mut router, _locals) = cluster(3);
        for expect_home in [0usize, 1, 2, 0, 1, 2] {
            let gid = router.open_session(spec()).unwrap();
            assert_eq!(router.placement(gid), Some(expect_home));
        }
        assert_eq!(router.sessions(), 6);
    }

    #[test]
    fn kill_one_node_migrates_with_zero_reanalysis_and_watermark() {
        let (mut router, locals) = cluster(2);
        let gids: Vec<u64> = (0..4).map(|_| router.open_session(spec()).unwrap()).collect();
        // Warm up every session; the cache saw exactly one analysis.
        for (i, &gid) in gids.iter().enumerate() {
            for _ in 0..(i + 1) {
                router.deliver(gid, vec![Value::Int(3)]).unwrap();
            }
        }
        let misses_before = router.cache().misses();
        assert_eq!(misses_before, 1, "one analysis serves the whole cluster");

        locals[0].kill();
        // Sessions homed on node 0 (gids 0, 2) fail over inline on the
        // next delivery; survivors keep their seq streak.
        let out = router.deliver(gids[0], vec![Value::Int(5)]).unwrap();
        assert_eq!(out.ret, Some(Value::Int(10)));
        assert_eq!(out.seq, 2, "watermark preserved: session 0 had 1 ack");
        assert_eq!(router.placement(gids[0]), Some(1));
        assert_eq!(router.placement(gids[2]), Some(1), "all node-0 sessions drained together");
        assert_eq!(router.cache().misses(), misses_before, "zero re-analysis on failover");

        let out = router.deliver(gids[2], vec![Value::Int(7)]).unwrap();
        assert_eq!(out.seq, 4, "session 2 resumes after its 3 journaled acks");

        let snapshot = router.obs().registry().snapshot();
        assert_eq!(snapshot.counter_sum("node_failovers_total"), 1);
        assert_eq!(snapshot.counter_sum("sessions_migrated_total"), 2);
        assert_eq!(snapshot.get("node_up", &[("node", "0")]), Some(&MetricValue::Gauge(0.0)));
        let kinds: Vec<&str> =
            router.obs().trace().snapshot().iter().map(|r| r.event.kind()).collect();
        assert!(kinds.contains(&"node_failover"), "{kinds:?}");
    }

    #[test]
    fn rejoin_rebalances_home_sessions_with_hysteresis() {
        let (mut router, locals) = cluster(2);
        let gids: Vec<u64> = (0..4).map(|_| router.open_session(spec()).unwrap()).collect();
        for &gid in &gids {
            router.deliver(gid, vec![Value::Int(1)]).unwrap();
        }
        locals[0].kill();
        router.deliver(gids[0], vec![Value::Int(1)]).unwrap();
        assert!(!router.node_is_up(0));

        // The node comes back, but hysteresis holds until the streak.
        locals[0].revive();
        router.heartbeat().unwrap();
        assert!(!router.node_is_up(0), "one beat is not a rejoin");
        router.heartbeat().unwrap();
        router.heartbeat().unwrap();
        assert!(router.node_is_up(0), "streak of 3 rejoins");
        assert_eq!(router.placement(gids[0]), Some(0), "home sessions migrated back");
        assert_eq!(router.placement(gids[2]), Some(0));
        assert_eq!(router.placement(gids[1]), Some(1), "node-1 homes never moved");

        // Seq continuity across kill, failover, and rejoin: session 0 saw
        // 2 deliveries; the third lands back home at seq 3.
        let out = router.deliver(gids[0], vec![Value::Int(2)]).unwrap();
        assert_eq!(out.seq, 3);
        let kinds: Vec<&str> =
            router.obs().trace().snapshot().iter().map(|r| r.event.kind()).collect();
        assert!(kinds.contains(&"node_rejoin"), "{kinds:?}");
        let snapshot = router.obs().registry().snapshot();
        assert_eq!(
            snapshot.counter_sum("sessions_migrated_total"),
            4,
            "2 out on failover + 2 back on rejoin"
        );
    }

    #[test]
    fn survived_node_failover_reclaims_orphan_slots() {
        let (mut router, locals) = cluster(2);
        let gids: Vec<u64> = (0..4).map(|_| router.open_session(spec()).unwrap()).collect();
        for &gid in &gids {
            router.deliver(gid, vec![Value::Int(1)]).unwrap();
        }
        assert_eq!((locals[0].sessions(), locals[1].sessions()), (2, 2));

        // Heartbeat partition: node 0 stays alive but stops answering;
        // the miss budget declares it dead and its sessions migrate.
        locals[0].partition();
        for _ in 0..3 {
            router.heartbeat().unwrap();
        }
        assert!(!router.node_is_up(0));
        assert_eq!(router.placement(gids[0]), Some(1));
        assert_eq!(locals[0].sessions(), 2, "orphaned copies still hold their slots");
        assert_eq!(router.orphans(), 2);

        // The partition heals: the rejoin streak brings the node back,
        // home sessions migrate back (evicting the survivor's copies),
        // and the same tick reclaims the orphans.
        locals[0].heal();
        for _ in 0..3 {
            router.heartbeat().unwrap();
        }
        assert!(router.node_is_up(0));
        assert_eq!(router.orphans(), 0, "every orphan reclaimed");
        assert_eq!(
            (locals[0].sessions(), locals[1].sessions()),
            (2, 2),
            "worker slots back to baseline on both nodes"
        );
        let snapshot = router.obs().registry().snapshot();
        assert_eq!(snapshot.counter_sum("orphans_reclaimed_total"), 2);
        assert_eq!(
            snapshot.get("sessions_closed_total", &[("reason", "orphan")]),
            Some(&MetricValue::Counter(2))
        );
        assert_eq!(
            snapshot.get("sessions_closed_total", &[("reason", "evict")]),
            Some(&MetricValue::Counter(2)),
            "rejoin rebalance evicted the survivor's copies"
        );
        // Exactly-once continuity: every session saw exactly 1 delivery.
        for &gid in &gids {
            let out = router.deliver(gid, vec![Value::Int(2)]).unwrap();
            assert_eq!(out.seq, 2, "session {gid} numbered continuously");
        }
        let kinds: Vec<&str> =
            router.obs().trace().snapshot().iter().map(|r| r.event.kind()).collect();
        assert!(kinds.contains(&"session_closed"), "{kinds:?}");
    }

    #[test]
    fn drain_node_empties_it_and_removes_it_from_the_ring() {
        let (mut router, locals) = cluster(3);
        let gids: Vec<u64> = (0..6).map(|_| router.open_session(spec()).unwrap()).collect();
        for round in [1i64, 2] {
            for &gid in &gids {
                router.deliver(gid, vec![Value::Int(round)]).unwrap();
            }
        }
        let misses_before = router.cache().misses();
        let journal_before = router.journal().len();

        let drained = router.drain_node(0).unwrap();
        assert_eq!(drained, 2, "node 0 homed gids 0 and 3");
        assert_eq!(locals[0].sessions(), 0, "drained node emptied");
        assert!(!router.node_is_up(0), "drained node is off the ring");
        assert_eq!(router.cache().misses(), misses_before, "zero re-analysis on drain");
        assert!(
            router.journal().len() < journal_before,
            "journal compacted: {} -> {}",
            journal_before,
            router.journal().len()
        );
        assert_eq!(router.journal().len(), 3 * 6, "live set folds to open/plan/ack per session");

        // The drained node never rejoins, even though it is alive.
        for _ in 0..5 {
            router.heartbeat().unwrap();
        }
        assert!(!router.node_is_up(0));
        assert_eq!(locals[0].sessions(), 0);
        // Traffic continues exactly-once on the remaining nodes.
        for &gid in &gids {
            let out = router.deliver(gid, vec![Value::Int(3)]).unwrap();
            assert_eq!(out.seq, 3);
            assert_ne!(router.placement(gid), Some(0));
        }
        // Out-of-range and double drains are errors.
        assert!(router.drain_node(9).is_err());
        assert!(router.drain_node(0).is_err());
    }

    #[test]
    fn close_session_retires_cluster_wide_and_compacts() {
        let (mut router, locals) = cluster(2);
        let gids: Vec<u64> = (0..4).map(|_| router.open_session(spec()).unwrap()).collect();
        for &gid in &gids {
            router.deliver(gid, vec![Value::Int(1)]).unwrap();
            router.deliver(gid, vec![Value::Int(2)]).unwrap();
        }
        let watermark = router.close_session(gids[1]).unwrap();
        assert_eq!(watermark, 2, "final ack watermark returned");
        assert_eq!(router.sessions(), 3);
        assert_eq!(router.placement(gids[1]), None);
        assert!(!router.journal().replay().unwrap().contains_key(&gids[1]));
        assert_eq!(locals[1].sessions(), 1, "the copy's worker slot was reclaimed");
        let err = router.deliver(gids[1], vec![Value::Int(3)]).unwrap_err();
        assert!(matches!(err, IrError::Unresolved(_)), "{err:?}");
        assert!(router.close_session(gids[1]).is_err(), "double close rejected");
    }

    #[test]
    fn session_closed_during_outage_never_comes_back() {
        let (mut router, locals) = cluster(2);
        let gids: Vec<u64> = (0..4).map(|_| router.open_session(spec()).unwrap()).collect();
        for &gid in &gids {
            router.deliver(gid, vec![Value::Int(1)]).unwrap();
        }
        // Node 0 partitions away; its sessions fail over to node 1.
        locals[0].partition();
        for _ in 0..3 {
            router.heartbeat().unwrap();
        }
        assert_eq!(router.placement(gids[0]), Some(1));

        // The client closes gid 0 while its home node is unreachable.
        let watermark = router.close_session(gids[0]).unwrap();
        assert_eq!(watermark, 1);
        assert!(!router.journal().replay().unwrap().contains_key(&gids[0]));

        // The partition heals and the node rejoins: the closed session
        // must NOT be re-migrated home — the session table (placements)
        // is authoritative, and its journal records are gone.
        locals[0].heal();
        for _ in 0..4 {
            router.heartbeat().unwrap();
        }
        assert!(router.node_is_up(0));
        assert_eq!(router.placement(gids[0]), None, "closed session stayed closed");
        assert_eq!(router.placement(gids[2]), Some(0), "its sibling did come home");
        assert_eq!(locals[0].sessions(), 1, "only the sibling holds a slot on node 0");
        assert_eq!(router.orphans(), 0, "the stranded copy was reclaimed after heal");
        let err = router.deliver(gids[0], vec![Value::Int(9)]).unwrap_err();
        assert!(matches!(err, IrError::Unresolved(_)), "{err:?}");
        // Everyone else is exactly-once throughout.
        for &gid in &[gids[1], gids[2], gids[3]] {
            let out = router.deliver(gid, vec![Value::Int(2)]).unwrap();
            assert_eq!(out.seq, 2);
        }
    }

    #[test]
    fn cluster_stats_reports_placement_authoritative_counts() {
        let (mut router, locals) = cluster(2);
        let gids: Vec<u64> = (0..4).map(|_| router.open_session(spec()).unwrap()).collect();
        for &gid in &gids {
            router.deliver(gid, vec![Value::Int(1)]).unwrap();
        }
        // Mid-partition (before reclamation) the node's own counts would
        // double-count the orphaned copies; the placement rows don't.
        locals[0].partition();
        for _ in 0..3 {
            router.heartbeat().unwrap();
        }
        let stats = router.cluster_stats();
        let get = |name: &str| stats.iter().find(|(n, _)| n == name).map(|(_, v)| *v).expect(name);
        assert_eq!(get("router_placed_sessions{node=\"0\"}"), 0.0);
        assert_eq!(get("router_placed_sessions{node=\"1\"}"), 4.0);
        assert_eq!(get("router_orphan_sessions{node=\"0\"}"), 2.0);
        assert_eq!(get("router_orphan_sessions{node=\"1\"}"), 0.0);
    }

    #[test]
    fn no_surviving_nodes_is_an_error_not_a_hang() {
        let (mut router, locals) = cluster(2);
        let gid = router.open_session(spec()).unwrap();
        router.deliver(gid, vec![Value::Int(1)]).unwrap();
        locals[0].kill();
        locals[1].kill();
        let err = router.deliver(gid, vec![Value::Int(1)]).unwrap_err();
        assert!(format!("{err}").contains("no surviving nodes"), "{err}");
    }

    #[test]
    fn cluster_stats_aggregates_router_and_node_surfaces() {
        let (mut router, _locals) = cluster(2);
        let gid = router.open_session(spec()).unwrap();
        router.deliver(gid, vec![Value::Int(1)]).unwrap();
        let stats = router.cluster_stats();
        let names: Vec<&str> = stats.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"node_failovers_total"), "{names:?}");
        assert!(names.contains(&"node_up{node=\"0\"}"), "{names:?}");
        assert!(
            names.contains(&"session_messages_total{node=\"0\"}"),
            "node metrics carry the node label: {names:?}"
        );
        let total: f64 = stats
            .iter()
            .filter(|(n, _)| n.starts_with("session_messages_total{"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(total, 1.0);
        // Identities stay sorted for a stable text surface.
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn inject_node_label_handles_both_shapes() {
        assert_eq!(inject_node_label("x_total", 2), "x_total{node=\"2\"}");
        assert_eq!(
            inject_node_label("shed_total{reason=\"queue_full\"}", 0),
            "shed_total{node=\"0\",reason=\"queue_full\"}"
        );
    }
}
