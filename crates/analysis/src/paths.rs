//! TargetPath enumeration.
//!
//! "A TargetPath is a path in a UG that starts from StartNode, and ends at
//! either the ExitNode or a StopNode, where none of the intermediate nodes
//! are StopNodes." Paths are enumerated as *simple* paths (no repeated
//! node), which visits each loop at most once; edges strictly inside loops
//! are excluded from the PSE set anyway by the convexity pricing, so simple
//! paths suffice to discover every candidate split edge.

use mpart_ir::instr::Pc;

use crate::stop::StopNodes;
use crate::ug::UnitGraph;

/// Result of target-path enumeration.
#[derive(Debug, Clone)]
pub struct TargetPaths {
    /// Each path is the node sequence from the start node to (and
    /// including) its terminating stop node or exit.
    pub paths: Vec<Vec<Pc>>,
    /// True if enumeration hit [`EnumLimits`] and some paths were dropped.
    pub truncated: bool,
}

/// Bounds on path enumeration to keep worst-case handlers tractable.
#[derive(Debug, Clone, Copy)]
pub struct EnumLimits {
    /// Maximum number of paths collected.
    pub max_paths: usize,
    /// Maximum path length in nodes.
    pub max_len: usize,
}

impl Default for EnumLimits {
    fn default() -> Self {
        EnumLimits { max_paths: 4096, max_len: 4096 }
    }
}

/// Enumerates target paths by DFS from the start node.
pub fn target_paths(ug: &UnitGraph, stops: &StopNodes, limits: EnumLimits) -> TargetPaths {
    let mut paths = Vec::new();
    let mut truncated = false;
    let mut on_path = vec![false; ug.len()];
    let mut cur: Vec<Pc> = Vec::new();

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        node: Pc,
        ug: &UnitGraph,
        stops: &StopNodes,
        limits: &EnumLimits,
        on_path: &mut [bool],
        cur: &mut Vec<Pc>,
        paths: &mut Vec<Vec<Pc>>,
        truncated: &mut bool,
    ) {
        if paths.len() >= limits.max_paths || cur.len() >= limits.max_len {
            *truncated = true;
            return;
        }
        cur.push(node);
        on_path[node] = true;
        let terminal = stops.is_stop(node) || ug.succs(node).is_empty();
        if terminal {
            paths.push(cur.clone());
        } else {
            for &s in ug.succs(node) {
                if on_path[s] {
                    continue; // simple paths only
                }
                dfs(s, ug, stops, limits, on_path, cur, paths, truncated);
            }
        }
        on_path[node] = false;
        cur.pop();
    }

    if !ug.is_empty() {
        dfs(ug.start(), ug, stops, &limits, &mut on_path, &mut cur, &mut paths, &mut truncated);
    }
    TargetPaths { paths, truncated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpart_ir::parse::parse_program;

    fn enumerate(src: &str) -> TargetPaths {
        let p = parse_program(src).unwrap();
        let f = p.function("f").unwrap();
        let ug = UnitGraph::build(f);
        let stops = StopNodes::mark(f);
        target_paths(&ug, &stops, EnumLimits::default())
    }

    #[test]
    fn push_example_has_two_target_paths() {
        // Mirrors the paper's push() example: tp1 takes the early return,
        // tp2 runs the full processing to the native display.
        let src = r#"
            class ImageData { width: int, buff: ref }
            fn f(event) {
                z0 = event instanceof ImageData
                if z0 == 0 goto skip
                r2 = (ImageData) event
                r4 = call resize(r2, 100, 100)
                native display_image(r4)
                return
            skip:
                return
            }
        "#;
        let tp = enumerate(src);
        assert!(!tp.truncated);
        assert_eq!(tp.paths.len(), 2);
        // One path ends at the native call (pc 4), one at the skip return.
        let mut ends: Vec<Pc> = tp.paths.iter().map(|p| *p.last().unwrap()).collect();
        ends.sort_unstable();
        assert_eq!(ends, vec![4, 6]);
        // No intermediate stop nodes.
        for path in &tp.paths {
            for &n in &path[..path.len() - 1] {
                assert_ne!(n, *path.last().unwrap());
            }
        }
    }

    #[test]
    fn straight_line_single_path() {
        let tp = enumerate("fn f(x) {\n  a = x + 1\n  return a\n}\n");
        assert_eq!(tp.paths, vec![vec![0, 1]]);
    }

    #[test]
    fn loop_visited_once() {
        let src = r#"
            fn f(n) {
                i = 0
            head:
                if i >= n goto done
                i = i + 1
                goto head
            done:
                return i
            }
        "#;
        let tp = enumerate(src);
        assert!(!tp.truncated);
        // One simple path: the loop-exit branch straight to the return.
        // The walk through the body dies re-entering the visited head, so
        // it is not a target path (its interior edges are priced infinite
        // by the convexity rule anyway).
        assert_eq!(tp.paths.len(), 1);
        assert_eq!(tp.paths[0], vec![0, 1, 4]);
        for p in &tp.paths {
            let mut sorted = p.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), p.len(), "path must be simple: {p:?}");
        }
    }

    #[test]
    fn early_stop_cuts_path_short() {
        let src = r#"
            global g = 0
            fn f(x) {
                a = global::g
                b = a + x
                return b
            }
        "#;
        let tp = enumerate(src);
        // The global read at pc 0 is a stop node, so the single target path
        // is just [0].
        assert_eq!(tp.paths, vec![vec![0]]);
    }

    #[test]
    fn truncation_reported() {
        // 2^10 paths through 10 diamonds exceeds a tiny limit.
        let mut src = String::from("fn f(x) {\n");
        for i in 0..10 {
            src.push_str(&format!(
                "  if x == {i} goto a{i}\n  t{i} = 1\n  goto b{i}\na{i}:\n  t{i} = 2\nb{i}:\n  u{i} = t{i}\n"
            ));
        }
        src.push_str("  return x\n}\n");
        let p = parse_program(&src).unwrap();
        let f = p.function("f").unwrap();
        let ug = UnitGraph::build(f);
        let stops = StopNodes::mark(f);
        let tp = target_paths(&ug, &stops, EnumLimits { max_paths: 16, max_len: 4096 });
        assert!(tp.truncated);
        assert_eq!(tp.paths.len(), 16);
    }
}
