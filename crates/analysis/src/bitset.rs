//! A compact fixed-capacity bit set used by the dataflow analyses.

use std::fmt;

/// A fixed-capacity set of small integers backed by `u64` words.
///
/// ```
/// use mpart_analysis::bitset::BitSet;
///
/// let mut live = BitSet::new(128);
/// live.insert(3);
/// live.insert(90);
/// let mut other = BitSet::new(128);
/// other.insert(90);
/// live.intersect_with(&other);
/// assert_eq!(live.iter().collect::<Vec<_>>(), vec![90]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet { words: vec![0; capacity.div_ceil(64)], capacity }
    }

    /// The capacity this set was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.capacity, "bit {i} out of capacity {}", self.capacity);
        let (w, b) = (i / 64, i % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Removes `i`; returns whether it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        let (w, b) = (i / 64, i % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Whether `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Unions `other` into `self`; returns whether `self` changed.
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Intersects `self` with `other` in place.
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Removes all elements of `other` from `self`.
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the elements in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| (w & (1 << b) != 0).then_some(wi * 64 + b))
        })
    }

    /// Clears the set.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the maximum element plus one.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map(|m| m + 1).unwrap_or(0);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(100);
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        b.insert(65);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert!(a.contains(65));
    }

    #[test]
    fn intersect_and_difference() {
        let mut a: BitSet = [1, 2, 3].into_iter().collect();
        let b: BitSet = [2, 3].into_iter().collect();
        let mut a2 = a.clone();
        // Capacities differ (4 vs 4) — both sized by max+1 = 4.
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2, 3]);
        a2.difference_with(&b);
        assert_eq!(a2.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn iter_ascending_across_words() {
        let mut s = BitSet::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_beyond_capacity_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn contains_beyond_capacity_is_false() {
        let s = BitSet::new(4);
        assert!(!s.contains(100));
    }
}
