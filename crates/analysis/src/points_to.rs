//! Flow-insensitive, unification-based alias classes.
//!
//! The paper uses points-to analysis (citing Shapiro–Horwitz) to recognize
//! that "variables with different names but identical costs" — e.g. `r1`
//! and `r2 = (ImageData) r1` — denote the same runtime object, so two split
//! edges whose non-deterministic cost components differ only by such
//! renamings cost the same and one can be dropped from the PSE set.
//!
//! We implement the classic Steensgaard-style unification: every copy or
//! cast between variables merges their alias classes. This is sound for
//! the *identical-cost* use (variables in one class provably refer to the
//! same object along any path where both are defined by the merged copies).

use mpart_ir::func::Function;
use mpart_ir::instr::{Instr, Operand, Place, Rvalue, Var};

use crate::union_find::UnionFind;

/// Alias classes over a function's variables.
#[derive(Debug, Clone)]
pub struct AliasClasses {
    uf: UnionFind,
}

impl AliasClasses {
    /// Computes alias classes by unifying across copies and casts.
    pub fn compute(func: &Function) -> Self {
        let mut uf = UnionFind::new(func.locals);
        for instr in &func.instrs {
            if let Instr::Assign { place: Place::Var(dst), rvalue } = instr {
                match rvalue {
                    Rvalue::Use(Operand::Var(src)) => {
                        uf.union(dst.index(), src.index());
                    }
                    Rvalue::Cast(_, src) => {
                        uf.union(dst.index(), src.index());
                    }
                    _ => {}
                }
            }
        }
        AliasClasses { uf }
    }

    /// Canonical representative of `v`'s alias class.
    pub fn canon(&self, v: Var) -> Var {
        Var(self.uf.find_const(v.index()) as u32)
    }

    /// Whether `a` and `b` are in the same alias class.
    pub fn same(&self, a: Var, b: Var) -> bool {
        self.uf.find_const(a.index()) == self.uf.find_const(b.index())
    }

    /// Canonicalizes and sorts a variable set for structural comparison.
    pub fn canon_set(&self, vars: &[Var]) -> Vec<Var> {
        let mut out: Vec<Var> = vars.iter().map(|v| self.canon(*v)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpart_ir::parse::parse_program;

    fn classes(src: &str) -> (mpart_ir::Program, AliasClasses) {
        let p = parse_program(src).unwrap();
        let a = AliasClasses::compute(p.function("f").unwrap());
        (p, a)
    }

    #[test]
    fn cast_unifies() {
        let src = r#"
            class ImageData { width: int }
            fn f(event) {
                r2 = (ImageData) event
                w = r2.width
                return w
            }
        "#;
        let (p, a) = classes(src);
        let f = p.function("f").unwrap();
        let event = f.var_by_name("event").unwrap();
        let r2 = f.var_by_name("r2").unwrap();
        let w = f.var_by_name("w").unwrap();
        assert!(a.same(event, r2));
        assert!(!a.same(event, w));
    }

    #[test]
    fn copy_chain_unifies_transitively() {
        let src = "fn f(x) {\n  a = x\n  b = a\n  c = b\n  return c\n}\n";
        let (p, a) = classes(src);
        let f = p.function("f").unwrap();
        let x = f.var_by_name("x").unwrap();
        let c = f.var_by_name("c").unwrap();
        assert!(a.same(x, c));
    }

    #[test]
    fn arithmetic_does_not_unify() {
        let src = "fn f(x) {\n  a = x + 0\n  return a\n}\n";
        let (p, a) = classes(src);
        let f = p.function("f").unwrap();
        assert!(!a.same(f.var_by_name("x").unwrap(), f.var_by_name("a").unwrap()));
    }

    #[test]
    fn canon_set_dedups_aliases() {
        let src = "fn f(x) {\n  a = x\n  b = a + 1\n  return b\n}\n";
        let (p, al) = classes(src);
        let f = p.function("f").unwrap();
        let x = f.var_by_name("x").unwrap();
        let a = f.var_by_name("a").unwrap();
        let b = f.var_by_name("b").unwrap();
        let set = al.canon_set(&[x, a, b]);
        assert_eq!(set.len(), 2, "x and a collapse to one class: {set:?}");
    }
}
