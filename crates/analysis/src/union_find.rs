//! Union-find (disjoint sets) used by the flow-insensitive alias analysis.

/// A union-find structure over `0..len` with path compression and union by
/// rank.
///
/// ```
/// use mpart_analysis::union_find::UnionFind;
///
/// let mut aliases = UnionFind::new(4);
/// aliases.union(0, 2); // r2 = (Cast) r0
/// assert!(aliases.same(0, 2));
/// assert!(!aliases.same(0, 1));
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        UnionFind { parent: (0..len).collect(), rank: vec![0; len] }
    }

    /// Number of elements (not sets).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Canonical representative of `x`'s set.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of range.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Representative without mutation (no path compression).
    pub fn find_const(&self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns the new representative.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => {
                self.parent[ra] = rb;
                rb
            }
            std::cmp::Ordering::Greater => {
                self.parent[rb] = ra;
                ra
            }
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
                ra
            }
        }
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert!(!uf.same(0, 1));
        uf.union(0, 1);
        uf.union(2, 3);
        assert!(uf.same(0, 1));
        assert!(uf.same(2, 3));
        assert!(!uf.same(1, 2));
        uf.union(1, 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 4));
    }

    #[test]
    fn find_const_matches_find() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(1, 2);
        let r = uf.find(2);
        assert_eq!(uf.find_const(0), r);
        assert_eq!(uf.find_const(3), 3);
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new(3);
        let r1 = uf.union(0, 1);
        let r2 = uf.union(0, 1);
        assert_eq!(r1, r2);
    }
}
