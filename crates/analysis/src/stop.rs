//! Stop-node identification (the paper's `MarkStopNodes`).
//!
//! "A node is a StopNode if the node is a return instruction, uses
//! variable(s) that are mutable outside the event handler, or if it
//! references native variables or invokes native methods." Such nodes must
//! execute on the receiver.

use std::collections::HashMap;

use mpart_ir::func::{Function, Program};
use mpart_ir::instr::{Instr, Pc, Place, Rvalue};

use crate::bitset::BitSet;

/// The stop nodes of a handler, as a set of instruction indices.
#[derive(Debug, Clone)]
pub struct StopNodes {
    set: BitSet,
}

impl StopNodes {
    /// Marks stop nodes per [`Instr::is_stop`](mpart_ir::Instr::is_stop):
    /// returns, native invocations, and global (mutable-outside) accesses.
    ///
    /// This intraprocedural view treats every invocation as opaque *and
    /// unanchored*; prefer [`mark_with_program`](Self::mark_with_program),
    /// which also anchors calls to IR functions whose bodies (transitively)
    /// touch receiver-owned state.
    pub fn mark(func: &Function) -> Self {
        let mut set = BitSet::new(func.instrs.len());
        for (pc, instr) in func.instrs.iter().enumerate() {
            if instr.is_stop() {
                set.insert(pc);
            }
        }
        StopNodes { set }
    }

    /// Marks stop nodes with interprocedural anchoring: an invocation of
    /// an IR function is a stop node when the callee's body — transitively
    /// through further IR calls — invokes a native builtin or accesses a
    /// global. Such a call must execute on the receiver: running it inside
    /// the sender would execute receiver-anchored code there.
    ///
    /// Rust-implemented *pure* builtins stay unanchored by contract (the
    /// registry rejects calling a native builtin through `call`).
    pub fn mark_with_program(program: &Program, func: &Function) -> Self {
        let anchored = anchored_functions(program);
        let mut set = BitSet::new(func.instrs.len());
        for (pc, instr) in func.instrs.iter().enumerate() {
            if instr.is_stop() || invokes_anchored(instr, &anchored) {
                set.insert(pc);
            }
        }
        StopNodes { set }
    }

    /// Whether `pc` is a stop node.
    pub fn is_stop(&self, pc: Pc) -> bool {
        self.set.contains(pc)
    }

    /// Iterates over stop nodes in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Pc> + '_ {
        self.set.iter()
    }

    /// Number of stop nodes.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether there are no stop nodes (a malformed handler: every function
    /// ends in a return, so this indicates an empty body).
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

/// Returns whether `instr` invokes an IR function known to be anchored.
fn invokes_anchored(instr: &Instr, anchored: &HashMap<&str, bool>) -> bool {
    if let Instr::Assign { rvalue: Rvalue::Invoke { callee, .. }, .. } = instr {
        return anchored.get(callee.as_str()).copied().unwrap_or(false);
    }
    false
}

/// Fixpoint over the call graph: a function is *anchored* when its body
/// contains a native invocation, a global access, or a call to another
/// anchored function. Returns (the callee's `Return` instructions do not
/// anchor — every function returns) are excluded.
fn anchored_functions(program: &Program) -> HashMap<&str, bool> {
    let directly = |f: &Function| -> bool {
        f.instrs.iter().any(|i| match i {
            Instr::Assign { place, rvalue } => {
                matches!(place, Place::Global(_)) || rvalue.is_anchored()
            }
            _ => false,
        })
    };
    let mut anchored: HashMap<&str, bool> =
        program.functions().map(|f| (f.name.as_str(), directly(f))).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for f in program.functions() {
            if anchored[f.name.as_str()] {
                continue;
            }
            let calls_anchored = f.instrs.iter().any(|i| {
                matches!(
                    i,
                    Instr::Assign { rvalue: Rvalue::Invoke { callee, .. }, .. }
                    if anchored.get(callee.as_str()).copied().unwrap_or(false)
                )
            });
            if calls_anchored {
                anchored.insert(f.name.as_str(), true);
                changed = true;
            }
        }
    }
    anchored
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpart_ir::parse::parse_program;

    #[test]
    fn returns_native_and_globals_are_stops() {
        let src = r#"
            global shown = 0
            fn f(x) {
                a = x + 1
                s = global::shown
                native display(a)
                global::shown = s
                return a
            }
        "#;
        let p = parse_program(src).unwrap();
        let f = p.function("f").unwrap();
        let stops = StopNodes::mark(f);
        assert!(!stops.is_stop(0)); // arithmetic
        assert!(stops.is_stop(1)); // global read
        assert!(stops.is_stop(2)); // native invoke
        assert!(stops.is_stop(3)); // global write
        assert!(stops.is_stop(4)); // return
        assert_eq!(stops.len(), 4);
    }

    #[test]
    fn pure_calls_are_not_stops() {
        let src = "fn f(x) {\n  y = call helper(x)\n  return y\n}\n";
        let p = parse_program(src).unwrap();
        let stops = StopNodes::mark(p.function("f").unwrap());
        assert!(!stops.is_stop(0));
        assert!(stops.is_stop(1));
        assert_eq!(stops.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn anchored_ir_callees_anchor_their_call_sites() {
        let src = r#"
            global hits = 0

            fn pure_math(x) {
                y = x * 2
                return y
            }

            fn touches_global(x) {
                h = global::hits
                h = h + x
                global::hits = h
                return h
            }

            fn calls_native(x) {
                native ping(x)
                return x
            }

            fn indirect(x) {
                y = call calls_native(x)
                return y
            }

            fn handler(v) {
                a = call pure_math(v)
                b = call touches_global(a)
                c = call indirect(b)
                d = call unknown_builtin(c)
                return d
            }
        "#;
        let program = parse_program(src).unwrap();
        let f = program.function("handler").unwrap();
        let stops = StopNodes::mark_with_program(&program, f);
        assert!(!stops.is_stop(0), "pure IR callee stays unanchored");
        assert!(stops.is_stop(1), "global-touching callee anchors");
        assert!(stops.is_stop(2), "transitively-native callee anchors");
        assert!(!stops.is_stop(3), "unknown (builtin) callee stays pure by contract");
        assert!(stops.is_stop(4), "return");
    }

    #[test]
    fn recursive_anchoring_terminates() {
        let src = r#"
            fn even(n) {
                if n == 0 goto yes
                m = n - 1
                r = call odd(m)
                return r
            yes:
                return 1
            }
            fn odd(n) {
                if n == 0 goto no
                m = n - 1
                r = call even(m)
                native tick(r)
                return r
            no:
                return 0
            }
            fn handler(v) {
                e = call even(v)
                return e
            }
        "#;
        let program = parse_program(src).unwrap();
        let f = program.function("handler").unwrap();
        let stops = StopNodes::mark_with_program(&program, f);
        // even -> odd -> native: the mutual recursion anchors both.
        assert!(stops.is_stop(0));
    }
}
