//! A content-addressed cache of [`HandlerAnalysis`] results.
//!
//! Every [`analyze`] call re-runs the whole static
//! pipeline — Unit Graph, liveness, DDG, points-to, path enumeration, and
//! ConvexCut — even when the handler text has not changed. That is the
//! right default for a single session, but a multi-session runtime (see
//! `ARCHITECTURE.md` §"Throughput layer") serves many concurrent sessions
//! of the *same* handler, and the analysis is pure: its output depends
//! only on the program text, the handler name, the cost model, and the
//! enumeration limits. [`AnalysisCache`] keys on exactly those inputs (a
//! 64-bit FNV-1a content hash of the canonical pretty-printed program, so
//! structurally-identical programs parsed from different files still hit)
//! and shares one immutable [`HandlerAnalysis`] per distinct handler via
//! `Arc` across every session that needs it.
//!
//! The cache is a capacity-bounded LRU guarded by a mutex — analysis
//! results are a few kilobytes each, lookups are rare (once per session
//! open, not per message), and the critical section is a vector scan, so
//! contention is not a concern. Hit/miss/eviction counts are plain
//! atomics; runtimes that own an observability hub (e.g.
//! `mpart::session::SessionManager`) mirror them into gauges.
//!
//! ```
//! use mpart_analysis::cache::AnalysisCache;
//! use mpart_analysis::cost::InterCountEstimator;
//! use mpart_ir::parse::parse_program;
//!
//! let program = parse_program("fn f(x) {\n  y = x + 1\n  return y\n}\n").unwrap();
//! let cache = AnalysisCache::new(8);
//! let limits = Default::default();
//! let first =
//!     cache.get_or_analyze(&program, "f", "inter-count", &InterCountEstimator, limits).unwrap();
//! let second =
//!     cache.get_or_analyze(&program, "f", "inter-count", &InterCountEstimator, limits).unwrap();
//! // The second lookup is a hit and shares the same allocation.
//! assert!(std::sync::Arc::ptr_eq(&first, &second));
//! assert_eq!((cache.hits(), cache.misses()), (1, 1));
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mpart_ir::pretty::program_to_string;
use mpart_ir::{IrError, Program};

use crate::paths::EnumLimits;
use crate::{analyze, EdgeCostEstimator, HandlerAnalysis};

/// Default number of distinct (program, handler, model, limits) analyses
/// retained.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// A capacity-bounded, content-addressed LRU of shared
/// [`HandlerAnalysis`] results. See the [module docs](self) for the
/// keying rules.
#[derive(Debug)]
pub struct AnalysisCache {
    capacity: usize,
    /// Cached analyses, least-recently-used first.
    entries: Mutex<Vec<CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    second_entry_hits: AtomicU64,
    second_entry_misses: AtomicU64,
}

/// One cached analysis. `base` hashes everything *except* the cost model
/// (program, handler, limits): two entries sharing a `base` are the same
/// handler re-priced under different models, which is how a runtime model
/// switch is accounted (a "second entry", never an invalidation).
#[derive(Debug)]
struct CacheEntry {
    key: u64,
    base: u64,
    analysis: Arc<HandlerAnalysis>,
}

impl AnalysisCache {
    /// Creates a cache retaining at most `capacity` analyses (minimum 1).
    pub fn new(capacity: usize) -> Self {
        AnalysisCache {
            capacity: capacity.max(1),
            entries: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            second_entry_hits: AtomicU64::new(0),
            second_entry_misses: AtomicU64::new(0),
        }
    }

    /// The content hash keying one analysis: FNV-1a over the canonical
    /// pretty-printed program (whole program, not just the handler —
    /// stop-node and inlining decisions depend on callees and class
    /// declarations), the handler name, the cost model's fingerprint, and
    /// the enumeration limits.
    pub fn content_key(
        program: &Program,
        func_name: &str,
        model_key: &str,
        limits: EnumLimits,
    ) -> u64 {
        fnv1a(fnv1a(Self::base_key(program, func_name, limits), &[0xFE]), model_key.as_bytes())
    }

    /// The model-independent part of [`content_key`](Self::content_key):
    /// program, handler, and limits. Entries sharing a base key are the
    /// same handler priced under different cost models.
    fn base_key(program: &Program, func_name: &str, limits: EnumLimits) -> u64 {
        let mut hash = fnv1a(0xCBF2_9CE4_8422_2325, program_to_string(program).as_bytes());
        hash = fnv1a(hash, &[0xFF]);
        hash = fnv1a(hash, func_name.as_bytes());
        hash = fnv1a(hash, &[0xFF]);
        hash = fnv1a(hash, &(limits.max_paths as u64).to_le_bytes());
        fnv1a(hash, &(limits.max_len as u64).to_le_bytes())
    }

    /// Returns the cached analysis for this (program, handler, model,
    /// limits) combination, running [`analyze`] on a miss. `model_key`
    /// must identify the estimator's *pricing behavior* — cost models
    /// expose a stable `cache_key()` for exactly this purpose (the bare
    /// `name()` is not enough for parameterized models).
    ///
    /// # Errors
    ///
    /// Propagates analysis failures; failed analyses are not cached.
    pub fn get_or_analyze(
        &self,
        program: &Program,
        func_name: &str,
        model_key: &str,
        estimator: &dyn EdgeCostEstimator,
        limits: EnumLimits,
    ) -> Result<Arc<HandlerAnalysis>, IrError> {
        let base = Self::base_key(program, func_name, limits);
        let key = fnv1a(fnv1a(base, &[0xFE]), model_key.as_bytes());
        self.get_or_insert_with(key, base, || {
            Ok(Arc::new(analyze(program, func_name, estimator, limits)?))
        })
    }

    /// Returns the *re-priced* analysis of `base_analysis` under
    /// `estimator` — the runtime model-switch path. A miss derives the
    /// entry via [`HandlerAnalysis::repriced`] (prices only; Unit Graph,
    /// DDG, and liveness are shared, never recomputed), so the first
    /// switch to a given model costs one pricing pass and every later
    /// flip is one cache probe.
    ///
    /// `model_key` must fingerprint the *pair* of models (the base
    /// analysis's and the new one's `cache_key()`s): a re-priced result
    /// is a pure function of both, and keying it on the new model alone
    /// would collide with a from-scratch [`Self::get_or_analyze`] entry whose
    /// PSE set can differ.
    ///
    /// # Errors
    ///
    /// Propagates re-pricing failures; failures are not cached.
    pub fn get_or_reprice(
        &self,
        program: &Program,
        func_name: &str,
        model_key: &str,
        base_analysis: &HandlerAnalysis,
        estimator: &dyn EdgeCostEstimator,
        limits: EnumLimits,
    ) -> Result<Arc<HandlerAnalysis>, IrError> {
        let base = Self::base_key(program, func_name, limits);
        let key = fnv1a(fnv1a(base, &[0xFD]), model_key.as_bytes());
        self.get_or_insert_with(key, base, || {
            Ok(Arc::new(base_analysis.repriced(program, estimator)?))
        })
    }

    fn get_or_insert_with(
        &self,
        key: u64,
        base: u64,
        compute: impl FnOnce() -> Result<Arc<HandlerAnalysis>, IrError>,
    ) -> Result<Arc<HandlerAnalysis>, IrError> {
        let (found, repricing) = self.lookup(key, base);
        if repricing {
            if found.is_some() {
                self.second_entry_hits.fetch_add(1, Ordering::Relaxed);
            } else {
                self.second_entry_misses.fetch_add(1, Ordering::Relaxed);
            }
        }
        if let Some(found) = found {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(found);
        }
        // Analyze outside the lock: a slow analysis must not serialize
        // unrelated sessions. Two racing sessions may both compute the
        // same analysis; the second insert wins and the loser's Arc stays
        // valid — correctness is unaffected because the result is pure.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let analysis = compute()?;
        self.insert(key, base, Arc::clone(&analysis));
        Ok(analysis)
    }

    /// Finds `key`, refreshing its recency. The second return is whether
    /// the cache holds a *different* model's entry for the same base —
    /// i.e. whether this lookup is a re-pricing of an already-analyzed
    /// handler.
    fn lookup(&self, key: u64, base: u64) -> (Option<Arc<HandlerAnalysis>>, bool) {
        let mut entries = self.entries.lock().expect("analysis cache poisoned");
        let repricing = entries.iter().any(|e| e.base == base && e.key != key);
        let Some(idx) = entries.iter().position(|e| e.key == key) else {
            return (None, repricing);
        };
        // Refresh recency: move the entry to the back.
        let entry = entries.remove(idx);
        let found = Arc::clone(&entry.analysis);
        entries.push(entry);
        (Some(found), repricing)
    }

    fn insert(&self, key: u64, base: u64, analysis: Arc<HandlerAnalysis>) {
        let mut entries = self.entries.lock().expect("analysis cache poisoned");
        entries.retain(|e| e.key != key);
        entries.push(CacheEntry { key, base, analysis });
        while entries.len() > self.capacity {
            entries.remove(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran a fresh analysis.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries displaced by the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Hits on a *second entry*: a lookup answered from the cache while a
    /// different model's analysis of the same (program, handler, limits)
    /// was also resident — the steady-state cost of a runtime model
    /// switch (one probe, no recomputation).
    pub fn second_entry_hits(&self) -> u64 {
        self.second_entry_hits.load(Ordering::Relaxed)
    }

    /// Misses that created a second entry: the one-time re-pricing a new
    /// model pays for an already-analyzed handler.
    pub fn second_entry_misses(&self) -> u64 {
        self.second_entry_misses.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Analyses currently retained.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("analysis cache poisoned").len()
    }

    /// Whether the cache holds no analyses.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// 64-bit FNV-1a over `bytes`, continuing from `state`.
fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut hash = state;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::InterCountEstimator;
    use mpart_ir::parse::parse_program;

    const SRC_A: &str = "fn f(x) {\n  a = x + 1\n  native out(a)\n  return a\n}\n";
    const SRC_B: &str = "fn f(x) {\n  a = x * 2\n  native out(a)\n  return a\n}\n";

    #[test]
    fn hit_shares_the_same_arc() {
        let program = parse_program(SRC_A).unwrap();
        let cache = AnalysisCache::new(4);
        let limits = EnumLimits::default();
        let a = cache.get_or_analyze(&program, "f", "m", &InterCountEstimator, limits).unwrap();
        let b = cache.get_or_analyze(&program, "f", "m", &InterCountEstimator, limits).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn distinct_text_model_and_limits_all_miss() {
        let a = parse_program(SRC_A).unwrap();
        let b = parse_program(SRC_B).unwrap();
        let cache = AnalysisCache::new(8);
        let limits = EnumLimits::default();
        cache.get_or_analyze(&a, "f", "m", &InterCountEstimator, limits).unwrap();
        cache.get_or_analyze(&b, "f", "m", &InterCountEstimator, limits).unwrap();
        cache.get_or_analyze(&a, "f", "other-model", &InterCountEstimator, limits).unwrap();
        let tight = EnumLimits { max_paths: 2, max_len: 64 };
        cache.get_or_analyze(&a, "f", "m", &InterCountEstimator, tight).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 4));
    }

    #[test]
    fn reparsed_identical_text_hits() {
        // Content addressing, not pointer identity: a fresh parse of the
        // same source maps to the same key.
        let first = parse_program(SRC_A).unwrap();
        let second = parse_program(SRC_A).unwrap();
        let cache = AnalysisCache::new(4);
        let limits = EnumLimits::default();
        let a = cache.get_or_analyze(&first, "f", "m", &InterCountEstimator, limits).unwrap();
        let b = cache.get_or_analyze(&second, "f", "m", &InterCountEstimator, limits).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let programs: Vec<_> = (0..3)
            .map(|i| {
                parse_program(&format!("fn f(x) {{\n  a = x + {i}\n  return a\n}}\n")).unwrap()
            })
            .collect();
        let cache = AnalysisCache::new(2);
        let limits = EnumLimits::default();
        cache.get_or_analyze(&programs[0], "f", "m", &InterCountEstimator, limits).unwrap();
        cache.get_or_analyze(&programs[1], "f", "m", &InterCountEstimator, limits).unwrap();
        // Touch 0 so 1 becomes the LRU victim.
        cache.get_or_analyze(&programs[0], "f", "m", &InterCountEstimator, limits).unwrap();
        cache.get_or_analyze(&programs[2], "f", "m", &InterCountEstimator, limits).unwrap();
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        // 0 survived (hit), 1 was evicted (miss).
        cache.get_or_analyze(&programs[0], "f", "m", &InterCountEstimator, limits).unwrap();
        let misses_before = cache.misses();
        cache.get_or_analyze(&programs[1], "f", "m", &InterCountEstimator, limits).unwrap();
        assert_eq!(cache.misses(), misses_before + 1);
    }

    #[test]
    fn second_entry_counters_track_repricing() {
        let program = parse_program(SRC_A).unwrap();
        let cache = AnalysisCache::new(8);
        let limits = EnumLimits::default();
        // First model: a plain miss, not a re-pricing.
        cache.get_or_analyze(&program, "f", "m", &InterCountEstimator, limits).unwrap();
        assert_eq!((cache.second_entry_hits(), cache.second_entry_misses()), (0, 0));
        // Second model over the same handler: a miss once...
        cache.get_or_analyze(&program, "f", "other", &InterCountEstimator, limits).unwrap();
        assert_eq!((cache.second_entry_hits(), cache.second_entry_misses()), (0, 1));
        // ...and a hit thereafter, from either side of the switch.
        cache.get_or_analyze(&program, "f", "other", &InterCountEstimator, limits).unwrap();
        cache.get_or_analyze(&program, "f", "m", &InterCountEstimator, limits).unwrap();
        assert_eq!((cache.second_entry_hits(), cache.second_entry_misses()), (2, 1));
        // A different handler text is unrelated: no re-pricing counted.
        let other = parse_program(SRC_B).unwrap();
        cache.get_or_analyze(&other, "f", "m", &InterCountEstimator, limits).unwrap();
        assert_eq!((cache.second_entry_hits(), cache.second_entry_misses()), (2, 1));
    }

    #[test]
    fn failed_analyses_are_not_cached() {
        let program = parse_program(SRC_A).unwrap();
        let cache = AnalysisCache::new(4);
        let limits = EnumLimits::default();
        assert!(cache
            .get_or_analyze(&program, "missing", "m", &InterCountEstimator, limits)
            .is_err());
        assert!(cache.is_empty());
    }
}
