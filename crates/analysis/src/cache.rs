//! A content-addressed cache of [`HandlerAnalysis`] results.
//!
//! Every [`analyze`] call re-runs the whole static
//! pipeline — Unit Graph, liveness, DDG, points-to, path enumeration, and
//! ConvexCut — even when the handler text has not changed. That is the
//! right default for a single session, but a multi-session runtime (see
//! `ARCHITECTURE.md` §"Throughput layer") serves many concurrent sessions
//! of the *same* handler, and the analysis is pure: its output depends
//! only on the program text, the handler name, the cost model, and the
//! enumeration limits. [`AnalysisCache`] keys on exactly those inputs (a
//! 64-bit FNV-1a content hash of the canonical pretty-printed program, so
//! structurally-identical programs parsed from different files still hit)
//! and shares one immutable [`HandlerAnalysis`] per distinct handler via
//! `Arc` across every session that needs it.
//!
//! The cache is a capacity-bounded LRU guarded by a mutex — analysis
//! results are a few kilobytes each, lookups are rare (once per session
//! open, not per message), and the critical section is a vector scan, so
//! contention is not a concern. Hit/miss/eviction counts are plain
//! atomics; runtimes that own an observability hub (e.g.
//! `mpart::session::SessionManager`) mirror them into gauges.
//!
//! ```
//! use mpart_analysis::cache::AnalysisCache;
//! use mpart_analysis::cost::InterCountEstimator;
//! use mpart_ir::parse::parse_program;
//!
//! let program = parse_program("fn f(x) {\n  y = x + 1\n  return y\n}\n").unwrap();
//! let cache = AnalysisCache::new(8);
//! let limits = Default::default();
//! let first =
//!     cache.get_or_analyze(&program, "f", "inter-count", &InterCountEstimator, limits).unwrap();
//! let second =
//!     cache.get_or_analyze(&program, "f", "inter-count", &InterCountEstimator, limits).unwrap();
//! // The second lookup is a hit and shares the same allocation.
//! assert!(std::sync::Arc::ptr_eq(&first, &second));
//! assert_eq!((cache.hits(), cache.misses()), (1, 1));
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use mpart_ir::pretty::program_to_string;
use mpart_ir::{IrError, Program};

use crate::paths::EnumLimits;
use crate::{analyze, EdgeCostEstimator, HandlerAnalysis};

/// Default number of distinct (program, handler, model, limits) analyses
/// retained.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// A capacity-bounded, content-addressed LRU of shared
/// [`HandlerAnalysis`] results. See the [module docs](self) for the
/// keying rules.
#[derive(Debug)]
pub struct AnalysisCache {
    capacity: usize,
    /// `(key, analysis)` pairs, least-recently-used first.
    entries: Mutex<Vec<(u64, Arc<HandlerAnalysis>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl AnalysisCache {
    /// Creates a cache retaining at most `capacity` analyses (minimum 1).
    pub fn new(capacity: usize) -> Self {
        AnalysisCache {
            capacity: capacity.max(1),
            entries: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The content hash keying one analysis: FNV-1a over the canonical
    /// pretty-printed program (whole program, not just the handler —
    /// stop-node and inlining decisions depend on callees and class
    /// declarations), the handler name, the cost model's name, and the
    /// enumeration limits.
    pub fn content_key(
        program: &Program,
        func_name: &str,
        model_key: &str,
        limits: EnumLimits,
    ) -> u64 {
        let mut hash = fnv1a(0xCBF2_9CE4_8422_2325, program_to_string(program).as_bytes());
        hash = fnv1a(hash, &[0xFF]);
        hash = fnv1a(hash, func_name.as_bytes());
        hash = fnv1a(hash, &[0xFF]);
        hash = fnv1a(hash, model_key.as_bytes());
        hash = fnv1a(hash, &(limits.max_paths as u64).to_le_bytes());
        fnv1a(hash, &(limits.max_len as u64).to_le_bytes())
    }

    /// Returns the cached analysis for this (program, handler, model,
    /// limits) combination, running [`analyze`] on a miss. `model_key`
    /// must identify the estimator's pricing behavior (cost models expose
    /// a stable `name()` for exactly this purpose).
    ///
    /// # Errors
    ///
    /// Propagates analysis failures; failed analyses are not cached.
    pub fn get_or_analyze(
        &self,
        program: &Program,
        func_name: &str,
        model_key: &str,
        estimator: &dyn EdgeCostEstimator,
        limits: EnumLimits,
    ) -> Result<Arc<HandlerAnalysis>, IrError> {
        let key = Self::content_key(program, func_name, model_key, limits);
        if let Some(found) = self.lookup(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(found);
        }
        // Analyze outside the lock: a slow analysis must not serialize
        // unrelated sessions. Two racing sessions may both compute the
        // same analysis; the second insert wins and the loser's Arc stays
        // valid — correctness is unaffected because the result is pure.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let analysis = Arc::new(analyze(program, func_name, estimator, limits)?);
        self.insert(key, Arc::clone(&analysis));
        Ok(analysis)
    }

    fn lookup(&self, key: u64) -> Option<Arc<HandlerAnalysis>> {
        let mut entries = self.entries.lock().expect("analysis cache poisoned");
        let idx = entries.iter().position(|(k, _)| *k == key)?;
        // Refresh recency: move the entry to the back.
        let entry = entries.remove(idx);
        let found = Arc::clone(&entry.1);
        entries.push(entry);
        Some(found)
    }

    fn insert(&self, key: u64, analysis: Arc<HandlerAnalysis>) {
        let mut entries = self.entries.lock().expect("analysis cache poisoned");
        entries.retain(|(k, _)| *k != key);
        entries.push((key, analysis));
        while entries.len() > self.capacity {
            entries.remove(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran a fresh analysis.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries displaced by the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits();
        let total = hits + self.misses();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Analyses currently retained.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("analysis cache poisoned").len()
    }

    /// Whether the cache holds no analyses.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// 64-bit FNV-1a over `bytes`, continuing from `state`.
fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut hash = state;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::InterCountEstimator;
    use mpart_ir::parse::parse_program;

    const SRC_A: &str = "fn f(x) {\n  a = x + 1\n  native out(a)\n  return a\n}\n";
    const SRC_B: &str = "fn f(x) {\n  a = x * 2\n  native out(a)\n  return a\n}\n";

    #[test]
    fn hit_shares_the_same_arc() {
        let program = parse_program(SRC_A).unwrap();
        let cache = AnalysisCache::new(4);
        let limits = EnumLimits::default();
        let a = cache.get_or_analyze(&program, "f", "m", &InterCountEstimator, limits).unwrap();
        let b = cache.get_or_analyze(&program, "f", "m", &InterCountEstimator, limits).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn distinct_text_model_and_limits_all_miss() {
        let a = parse_program(SRC_A).unwrap();
        let b = parse_program(SRC_B).unwrap();
        let cache = AnalysisCache::new(8);
        let limits = EnumLimits::default();
        cache.get_or_analyze(&a, "f", "m", &InterCountEstimator, limits).unwrap();
        cache.get_or_analyze(&b, "f", "m", &InterCountEstimator, limits).unwrap();
        cache.get_or_analyze(&a, "f", "other-model", &InterCountEstimator, limits).unwrap();
        let tight = EnumLimits { max_paths: 2, max_len: 64 };
        cache.get_or_analyze(&a, "f", "m", &InterCountEstimator, tight).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (0, 4));
    }

    #[test]
    fn reparsed_identical_text_hits() {
        // Content addressing, not pointer identity: a fresh parse of the
        // same source maps to the same key.
        let first = parse_program(SRC_A).unwrap();
        let second = parse_program(SRC_A).unwrap();
        let cache = AnalysisCache::new(4);
        let limits = EnumLimits::default();
        let a = cache.get_or_analyze(&first, "f", "m", &InterCountEstimator, limits).unwrap();
        let b = cache.get_or_analyze(&second, "f", "m", &InterCountEstimator, limits).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let programs: Vec<_> = (0..3)
            .map(|i| {
                parse_program(&format!("fn f(x) {{\n  a = x + {i}\n  return a\n}}\n")).unwrap()
            })
            .collect();
        let cache = AnalysisCache::new(2);
        let limits = EnumLimits::default();
        cache.get_or_analyze(&programs[0], "f", "m", &InterCountEstimator, limits).unwrap();
        cache.get_or_analyze(&programs[1], "f", "m", &InterCountEstimator, limits).unwrap();
        // Touch 0 so 1 becomes the LRU victim.
        cache.get_or_analyze(&programs[0], "f", "m", &InterCountEstimator, limits).unwrap();
        cache.get_or_analyze(&programs[2], "f", "m", &InterCountEstimator, limits).unwrap();
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        // 0 survived (hit), 1 was evicted (miss).
        cache.get_or_analyze(&programs[0], "f", "m", &InterCountEstimator, limits).unwrap();
        let misses_before = cache.misses();
        cache.get_or_analyze(&programs[1], "f", "m", &InterCountEstimator, limits).unwrap();
        assert_eq!(cache.misses(), misses_before + 1);
    }

    #[test]
    fn failed_analyses_are_not_cached() {
        let program = parse_program(SRC_A).unwrap();
        let cache = AnalysisCache::new(4);
        let limits = EnumLimits::default();
        assert!(cache
            .get_or_analyze(&program, "missing", "m", &InterCountEstimator, limits)
            .is_err());
        assert!(cache.is_empty());
    }
}
