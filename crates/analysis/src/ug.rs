//! The Unit Graph: a control-flow graph with one instruction per node.
//!
//! Following the paper, "a UG is similar to a Control Flow Graph except
//! that each node is an instruction instead of a basic block". Node ids are
//! instruction indices (`Pc`); a synthetic [`ENTRY`] node precedes the
//! start node so that "ship the whole message unprocessed" is itself a
//! candidate split edge (the paper's `Edge(2,3)` before any real work).

use mpart_ir::func::Function;
use mpart_ir::instr::Pc;

/// Synthetic entry node id, predecessor of the start node.
pub const ENTRY: usize = usize::MAX;

/// A directed edge `(from, to)` of the Unit Graph.
///
/// `from == ENTRY` denotes the synthetic entry edge into the start node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Edge {
    /// Source node (`ENTRY` for the entry edge).
    pub from: usize,
    /// Destination node.
    pub to: usize,
}

impl Edge {
    /// Creates an edge.
    pub fn new(from: usize, to: usize) -> Self {
        Edge { from, to }
    }

    /// The entry edge into `start`.
    pub fn entry(start: Pc) -> Self {
        Edge { from: ENTRY, to: start }
    }

    /// Whether this is the synthetic entry edge.
    pub fn is_entry(&self) -> bool {
        self.from == ENTRY
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_entry() {
            write!(f, "(entry,{})", self.to)
        } else {
            write!(f, "({},{})", self.from, self.to)
        }
    }
}

/// The Unit Graph of a handler function.
#[derive(Debug, Clone)]
pub struct UnitGraph {
    n: usize,
    start: Pc,
    succs: Vec<Vec<Pc>>,
    preds: Vec<Vec<Pc>>,
}

impl UnitGraph {
    /// Builds the Unit Graph of `func`. The start node is instruction 0
    /// (our IR has no parameter-renaming identity prologue to skip).
    pub fn build(func: &Function) -> Self {
        let n = func.instrs.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        #[allow(clippy::needless_range_loop)]
        for pc in 0..n {
            for s in func.successors(pc) {
                succs[pc].push(s);
                preds[s].push(pc);
            }
        }
        UnitGraph { n, start: 0, succs, preds }
    }

    /// Number of instruction nodes (excluding the synthetic entry).
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The start node.
    pub fn start(&self) -> Pc {
        self.start
    }

    /// Successors of `pc`.
    pub fn succs(&self, pc: Pc) -> &[Pc] {
        &self.succs[pc]
    }

    /// Predecessors of `pc` (not including the synthetic entry).
    pub fn preds(&self, pc: Pc) -> &[Pc] {
        &self.preds[pc]
    }

    /// All real (non-entry) edges in ascending order.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::new();
        for (from, ss) in self.succs.iter().enumerate() {
            for &to in ss {
                out.push(Edge::new(from, to));
            }
        }
        out
    }

    /// Set of nodes reachable from `from` (inclusive), following edges
    /// forward.
    pub fn reachable_from(&self, from: Pc) -> crate::bitset::BitSet {
        let mut seen = crate::bitset::BitSet::new(self.n);
        let mut stack = vec![from];
        while let Some(u) = stack.pop() {
            if u >= self.n || !seen.insert(u) {
                continue;
            }
            for &v in &self.succs[u] {
                stack.push(v);
            }
        }
        seen
    }

    /// Set of nodes that can reach `to` (inclusive), following edges
    /// backward.
    pub fn reaches(&self, to: Pc) -> crate::bitset::BitSet {
        let mut seen = crate::bitset::BitSet::new(self.n);
        let mut stack = vec![to];
        while let Some(u) = stack.pop() {
            if u >= self.n || !seen.insert(u) {
                continue;
            }
            for &v in &self.preds[u] {
                stack.push(v);
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpart_ir::parse::parse_program;

    fn graph(src: &str, name: &str) -> UnitGraph {
        let p = parse_program(src).unwrap();
        UnitGraph::build(p.function(name).unwrap())
    }

    #[test]
    fn straight_line() {
        let g = graph("fn f(x) {\n  a = x + 1\n  b = a * 2\n  return b\n}\n", "f");
        assert_eq!(g.len(), 3);
        assert_eq!(g.succs(0), &[1]);
        assert_eq!(g.succs(2), &[] as &[usize]);
        assert_eq!(g.preds(1), &[0]);
    }

    #[test]
    fn diamond_branch() {
        let src = r#"
            fn f(x) {
                if x == 0 goto zero
                y = 1
                goto done
            zero:
                y = 2
            done:
                return y
            }
        "#;
        let g = graph(src, "f");
        // if at 0 -> {1 (fallthrough), 3 (zero)}
        let mut s: Vec<_> = g.succs(0).to_vec();
        s.sort();
        assert_eq!(s, vec![1, 3]);
        // both branches merge at the return's nop/return chain
        assert!(g.preds(4).len() >= 2 || g.preds(g.len() - 1).len() >= 2);
    }

    #[test]
    fn reachability_both_directions() {
        let src = r#"
            fn f(x) {
                if x == 0 goto end
                a = 1
            end:
                return
            }
        "#;
        let g = graph(src, "f");
        let fwd = g.reachable_from(0);
        assert_eq!(fwd.len(), g.len());
        let bwd = g.reaches(1);
        assert!(bwd.contains(0));
        assert!(bwd.contains(1));
        assert!(!bwd.contains(2));
    }

    #[test]
    fn loop_back_edges() {
        let src = r#"
            fn f(n) {
                i = 0
            head:
                if i >= n goto done
                i = i + 1
                goto head
            done:
                return i
            }
        "#;
        let g = graph(src, "f");
        // The goto must point back to the loop head.
        let back = g.edges().into_iter().find(|e| e.to < e.from).expect("expected a back edge");
        assert!(g.reachable_from(back.to).contains(back.from));
    }

    #[test]
    fn entry_edge_properties() {
        let e = Edge::entry(0);
        assert!(e.is_entry());
        assert_eq!(e.to_string(), "(entry,0)");
        assert!(!Edge::new(1, 2).is_entry());
    }
}
