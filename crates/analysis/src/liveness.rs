//! Live-variable analysis (backward may dataflow) on the Unit Graph.
//!
//! The paper's remote continuation packs, at a split edge `e = (out, in)`,
//! the variables in `INTER(e) = OUT(out) ∩ IN(in)` — "the intersection of
//! the OUT set of the out node of the edge with the IN set of the in node"
//! (§2.4). This module computes those sets.

use mpart_ir::func::Function;
use mpart_ir::instr::{Pc, Var};

use crate::bitset::BitSet;
use crate::ug::{Edge, UnitGraph};

/// Per-node IN/OUT live-variable sets.
#[derive(Debug, Clone)]
pub struct Liveness {
    ins: Vec<BitSet>,
    outs: Vec<BitSet>,
    nvars: usize,
}

impl Liveness {
    /// Runs the classic backward fixpoint:
    /// `IN[n] = use[n] ∪ (OUT[n] ∖ def[n])`, `OUT[n] = ⋃ IN[succ]`.
    pub fn compute(func: &Function, ug: &UnitGraph) -> Self {
        let n = ug.len();
        let nvars = func.locals;
        let mut uses = vec![BitSet::new(nvars); n];
        let mut defs = vec![BitSet::new(nvars); n];
        for (pc, instr) in func.instrs.iter().enumerate() {
            for v in instr.uses() {
                uses[pc].insert(v.index());
            }
            if let Some(v) = instr.def() {
                defs[pc].insert(v.index());
            }
        }
        let mut ins = vec![BitSet::new(nvars); n];
        let mut outs = vec![BitSet::new(nvars); n];
        let mut changed = true;
        while changed {
            changed = false;
            for pc in (0..n).rev() {
                let mut out = BitSet::new(nvars);
                for &s in ug.succs(pc) {
                    out.union_with(&ins[s]);
                }
                if out != outs[pc] {
                    outs[pc] = out.clone();
                    changed = true;
                }
                let mut inn = out;
                inn.difference_with(&defs[pc]);
                inn.union_with(&uses[pc]);
                if inn != ins[pc] {
                    ins[pc] = inn;
                    changed = true;
                }
            }
        }
        Liveness { ins, outs, nvars }
    }

    /// Variables live on entry to `pc`.
    pub fn live_in(&self, pc: Pc) -> &BitSet {
        &self.ins[pc]
    }

    /// Variables live on exit from `pc`.
    pub fn live_out(&self, pc: Pc) -> &BitSet {
        &self.outs[pc]
    }

    /// `INTER(e) = OUT(from) ∩ IN(to)` — the live variables a continuation
    /// message must carry across edge `e`.
    ///
    /// For the synthetic entry edge, `OUT(entry)` is taken to be the
    /// parameter set, so `INTER` is the live-in parameters of the start
    /// node (i.e. the original message contents).
    pub fn inter(&self, func: &Function, edge: Edge) -> Vec<Var> {
        let mut set = self.ins[edge.to].clone();
        if edge.is_entry() {
            let mut params = BitSet::new(self.nvars);
            for i in 0..func.params {
                params.insert(i);
            }
            set.intersect_with(&params);
        } else {
            set.intersect_with(&self.outs[edge.from]);
        }
        set.iter().map(|i| Var(i as u32)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpart_ir::parse::parse_program;

    fn setup(src: &str, name: &str) -> (mpart_ir::Program, UnitGraph) {
        let p = parse_program(src).unwrap();
        let ug = UnitGraph::build(p.function(name).unwrap());
        (p, ug)
    }

    #[test]
    fn dead_after_last_use() {
        let src = r#"
            fn f(x) {
                a = x + 1
                b = a * 2
                c = b + 3
                return c
            }
        "#;
        let (p, ug) = setup(src, "f");
        let f = p.function("f").unwrap();
        let live = Liveness::compute(f, &ug);
        let a = f.var_by_name("a").unwrap();
        let x = f.var_by_name("x").unwrap();
        // x dies after instruction 0; a dies after instruction 1.
        assert!(live.live_in(0).contains(x.index()));
        assert!(!live.live_out(0).contains(x.index()));
        assert!(live.live_out(0).contains(a.index()));
        assert!(!live.live_out(1).contains(a.index()));
    }

    #[test]
    fn loop_carried_values_stay_live() {
        let src = r#"
            fn f(n) {
                i = 0
                acc = 0
            head:
                if i >= n goto done
                acc = acc + i
                i = i + 1
                goto head
            done:
                return acc
            }
        "#;
        let (p, ug) = setup(src, "f");
        let f = p.function("f").unwrap();
        let live = Liveness::compute(f, &ug);
        let acc = f.var_by_name("acc").unwrap();
        let n = f.var_by_name("n").unwrap();
        // acc and n live throughout the loop body.
        for pc in 2..=5 {
            assert!(live.live_in(pc).contains(acc.index()), "acc live at {pc}");
            assert!(live.live_in(pc).contains(n.index()) || pc == 5, "n live at {pc}");
        }
    }

    #[test]
    fn inter_of_entry_edge_is_live_params() {
        let src = r#"
            fn f(used, unused) {
                a = used + 1
                return a
            }
        "#;
        let (p, ug) = setup(src, "f");
        let f = p.function("f").unwrap();
        let live = Liveness::compute(f, &ug);
        let inter = live.inter(f, Edge::entry(ug.start()));
        assert_eq!(inter, vec![f.var_by_name("used").unwrap()]);
    }

    #[test]
    fn inter_shrinks_along_straight_line() {
        let src = r#"
            fn f(x, y) {
                a = x + y
                b = a * 2
                return b
            }
        "#;
        let (p, ug) = setup(src, "f");
        let f = p.function("f").unwrap();
        let live = Liveness::compute(f, &ug);
        let i0 = live.inter(f, Edge::new(0, 1));
        let i1 = live.inter(f, Edge::new(1, 2));
        // After 0, only `a` crosses; after 1, only `b` crosses.
        assert_eq!(i0, vec![f.var_by_name("a").unwrap()]);
        assert_eq!(i1, vec![f.var_by_name("b").unwrap()]);
    }

    #[test]
    fn branch_merges_union_liveness() {
        let src = r#"
            fn f(x, p) {
                if p == 0 goto other
                y = x + 1
                goto done
            other:
                y = x - 1
            done:
                return y
            }
        "#;
        let (p, ug) = setup(src, "f");
        let f = p.function("f").unwrap();
        let live = Liveness::compute(f, &ug);
        let x = f.var_by_name("x").unwrap();
        // x is live out of the branch because both arms use it.
        assert!(live.live_out(0).contains(x.index()));
    }
}
