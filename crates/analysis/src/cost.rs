//! Static edge costs and the cost-model interface used by `ConvexCut`.
//!
//! Cost models live in the `mpart-cost` crate; this module defines only
//! what the static analysis needs from them: a per-edge *static* cost that
//! may be fully known, lower-bounded (with the set of variables whose
//! sizes are runtime-only), or infinite (edges priced out by the convexity
//! rule).

use std::cmp::Ordering;

use mpart_ir::func::Function;
use mpart_ir::instr::{Pc, Var};

use crate::points_to::AliasClasses;
use crate::ug::Edge;
use crate::varkinds::VarKinds;

/// Statically-estimated cost of cutting at an edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaticCost {
    /// Fully determined at analysis time.
    Known(u64),
    /// Partially determined: a deterministic component plus a set of
    /// variables whose runtime sizes are unknown. The true cost is
    /// `>= det` (each unknown variable contributes a non-negative size).
    /// `vars` must be canonicalized through the alias classes so that
    /// renamed copies of the same object compare equal.
    LowerBounded {
        /// Deterministic partial cost.
        det: u64,
        /// Canonicalized non-determinable variables.
        vars: Vec<Var>,
    },
    /// Never cut here (convexity violation).
    Infinite,
}

impl StaticCost {
    /// Partial-order comparison following §4.1 of the paper:
    ///
    /// * two known costs compare numerically;
    /// * a known cost `k` is determinably less than a lower-bounded cost
    ///   whose bound is `>= k` (the unknown part only adds);
    /// * two lower-bounded costs with *identical* unknown variable sets
    ///   compare by their deterministic parts;
    /// * `Infinite` exceeds everything (and equals itself);
    /// * anything else is incomparable (`None`).
    pub fn partial_cmp_cost(&self, other: &StaticCost) -> Option<Ordering> {
        use StaticCost::*;
        match (self, other) {
            (Infinite, Infinite) => Some(Ordering::Equal),
            (Infinite, _) => Some(Ordering::Greater),
            (_, Infinite) => Some(Ordering::Less),
            (Known(a), Known(b)) => Some(a.cmp(b)),
            (Known(a), LowerBounded { det, .. }) => {
                // other >= det; if det >= a then other >= a.
                if det >= a {
                    Some(Ordering::Less) // self < other (or equal; Less is
                                         // safe for exclusion purposes only
                                         // when strict — see cmp use sites)
                } else {
                    None
                }
            }
            (LowerBounded { det, .. }, Known(b)) => {
                if det >= b {
                    Some(Ordering::Greater)
                } else {
                    None
                }
            }
            (LowerBounded { det: da, vars: va }, LowerBounded { det: db, vars: vb }) => {
                if va == vb {
                    Some(da.cmp(db))
                } else {
                    None
                }
            }
        }
    }

    /// Whether `self` is *determinably strictly greater* than `other` —
    /// the exclusion criterion of `MinCostEdgeSet` ("an edge has minimal
    /// cost ... if no other edge in the set has a determinably smaller
    /// cost").
    pub fn determinably_greater(&self, other: &StaticCost) -> bool {
        use StaticCost::*;
        match (self, other) {
            (Infinite, Infinite) => false,
            (Infinite, _) => true,
            (_, Infinite) => false,
            (Known(a), Known(b)) => a > b,
            // self >= det; strictly greater when det > other's known cost.
            (LowerBounded { det, .. }, Known(b)) => det > b,
            // self is exactly a; other >= det — can only show other >= self,
            // never self > other.
            (Known(_), LowerBounded { .. }) => false,
            (LowerBounded { det: da, vars: va }, LowerBounded { det: db, vars: vb }) => {
                va == vb && da > db
            }
        }
    }

    /// Whether the two costs are determinably equal (identical knowns, or
    /// identical unknown sets with equal deterministic parts).
    pub fn determinably_equal(&self, other: &StaticCost) -> bool {
        self.partial_cmp_cost(other) == Some(Ordering::Equal)
            || matches!(
                (self, other),
                (
                    StaticCost::LowerBounded { det: a, vars: va },
                    StaticCost::LowerBounded { det: b, vars: vb }
                ) if a == b && va == vb
            )
    }
}

/// Context handed to cost estimators for each edge.
#[derive(Debug)]
pub struct EstimatorCx<'a> {
    /// The handler function.
    pub func: &'a Function,
    /// Variable size classification.
    pub kinds: &'a VarKinds,
    /// Alias classes for canonicalizing unknown-variable sets.
    pub aliases: &'a AliasClasses,
}

/// A cost model's static half: prices cutting a given edge of a given
/// target path.
///
/// Implementations receive the path and the index of the edge within it
/// (`idx == 0` is the entry edge; otherwise the edge is
/// `(path[idx-1], path[idx])`), plus the `INTER` live-variable set of the
/// edge.
pub trait EdgeCostEstimator {
    /// Static cost of splitting at this edge.
    fn edge_cost(
        &self,
        cx: &EstimatorCx<'_>,
        path: &[Pc],
        idx: usize,
        edge: Edge,
        inter: &[Var],
    ) -> StaticCost;
}

/// A trivial estimator pricing every edge by the count of live variables
/// crossing it — useful for tests and as a documentation example.
#[derive(Debug, Clone, Copy, Default)]
pub struct InterCountEstimator;

impl EdgeCostEstimator for InterCountEstimator {
    fn edge_cost(
        &self,
        _cx: &EstimatorCx<'_>,
        _path: &[Pc],
        _idx: usize,
        _edge: Edge,
        inter: &[Var],
    ) -> StaticCost {
        StaticCost::Known(inter.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lb(det: u64, vars: &[u32]) -> StaticCost {
        StaticCost::LowerBounded { det, vars: vars.iter().map(|&v| Var(v)).collect() }
    }

    #[test]
    fn known_vs_known() {
        assert!(StaticCost::Known(5).determinably_greater(&StaticCost::Known(3)));
        assert!(!StaticCost::Known(3).determinably_greater(&StaticCost::Known(3)));
        assert!(StaticCost::Known(3).determinably_equal(&StaticCost::Known(3)));
    }

    #[test]
    fn lower_bound_excludes_when_above_known() {
        // Paper: "if this lower bound is higher than the cost of a
        // cost-determinable edge in a path, then we can exclude the edge
        // with non-determinable cost".
        assert!(lb(10, &[1]).determinably_greater(&StaticCost::Known(4)));
        assert!(!lb(3, &[1]).determinably_greater(&StaticCost::Known(4)));
        // A known cost can never be shown strictly greater than an
        // unknown-containing cost.
        assert!(!StaticCost::Known(100).determinably_greater(&lb(0, &[1])));
    }

    #[test]
    fn identical_unknown_sets_compare_by_det() {
        assert!(lb(5, &[1, 2]).determinably_greater(&lb(3, &[1, 2])));
        assert!(!lb(5, &[1, 2]).determinably_greater(&lb(3, &[1, 3])));
        assert!(lb(3, &[1]).determinably_equal(&lb(3, &[1])));
        assert!(!lb(3, &[1]).determinably_equal(&lb(3, &[2])));
    }

    #[test]
    fn infinite_dominates() {
        assert!(StaticCost::Infinite.determinably_greater(&StaticCost::Known(u64::MAX)));
        assert!(StaticCost::Infinite.determinably_greater(&lb(0, &[])));
        assert!(!StaticCost::Infinite.determinably_greater(&StaticCost::Infinite));
        assert!(!StaticCost::Known(0).determinably_greater(&StaticCost::Infinite));
    }

    #[test]
    fn partial_cmp_incomparable_cases() {
        assert_eq!(lb(0, &[1]).partial_cmp_cost(&lb(0, &[2])), None);
        assert_eq!(StaticCost::Known(5).partial_cmp_cost(&lb(3, &[1])), None);
    }
}
