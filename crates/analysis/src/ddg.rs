//! The Data Dependency Graph (DDG): def→use edges derived from reaching
//! definitions.
//!
//! Each node of the DDG corresponds to a Unit Graph node (the paper: "each
//! node ... has a corresponding node in the DDG, and vice versa"). An edge
//! `(out, in)` means the value defined at `out` is consumed at `in`.

use mpart_ir::func::Function;
use mpart_ir::instr::Pc;

use crate::reaching::ReachingDefs;
use crate::ug::UnitGraph;

/// A def→use dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DepEdge {
    /// Defining node.
    pub def: Pc,
    /// Using node.
    pub uses: Pc,
}

/// The Data Dependency Graph of a handler.
#[derive(Debug, Clone)]
pub struct Ddg {
    edges: Vec<DepEdge>,
    /// Nodes whose own definition reaches their own use (`c = c + 1`
    /// inside a loop): not proper def→use edges, but loop-carried
    /// dependencies the convexity pricing must still honour.
    self_deps: Vec<Pc>,
}

impl Ddg {
    /// Builds the DDG from reaching definitions: for every use of `v` at
    /// node `u`, add an edge from every reaching definition of `v`.
    pub fn build(func: &Function, ug: &UnitGraph, rd: &ReachingDefs) -> Self {
        let mut edges = Vec::new();
        let mut self_deps = Vec::new();
        for (pc, instr) in func.instrs.iter().enumerate() {
            let _ = ug;
            for v in instr.uses() {
                for def in rd.reaching(pc, v) {
                    if def != pc {
                        edges.push(DepEdge { def, uses: pc });
                    } else {
                        self_deps.push(pc);
                    }
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        self_deps.sort_unstable();
        self_deps.dedup();
        Ddg { edges, self_deps }
    }

    /// All dependency edges, sorted (self-dependencies excluded; see
    /// [`backward_candidates`](Self::backward_candidates)).
    pub fn edges(&self) -> &[DepEdge] {
        &self.edges
    }

    /// Edges whose *use* appears strictly before their *def* in some Unit
    /// Graph path — i.e. candidate loop-carried dependencies. These are the
    /// `Edge(out, in)` pairs of the paper's `ConvexCut` for which every UG
    /// path `in → out` must be priced at infinity. Self-dependencies of
    /// nodes that sit on a cycle are included: an accumulator whose only
    /// carried variable is itself (`c = c + 1` re-reached via the loop)
    /// still forbids cutting inside that loop.
    pub fn backward_candidates<'a>(
        &'a self,
        ug: &'a UnitGraph,
    ) -> impl Iterator<Item = DepEdge> + 'a {
        let carried =
            self.edges.iter().copied().filter(|e| ug.reachable_from(e.uses).contains(e.def));
        let cyclic_self = self.self_deps.iter().copied().filter_map(move |pc| {
            let on_cycle = ug.succs(pc).iter().any(|&s| ug.reachable_from(s).contains(pc));
            on_cycle.then_some(DepEdge { def: pc, uses: pc })
        });
        carried.chain(cyclic_self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpart_ir::parse::parse_program;

    fn build(src: &str) -> (mpart_ir::Program, UnitGraph, Ddg) {
        let p = parse_program(src).unwrap();
        let f = p.function("f").unwrap();
        let ug = UnitGraph::build(f);
        let rd = ReachingDefs::compute(f, &ug);
        let ddg = Ddg::build(f, &ug, &rd);
        (p, ug, ddg)
    }

    #[test]
    fn straight_line_chain() {
        let (_, _, ddg) = build("fn f(x) {\n  a = x + 1\n  b = a * 2\n  return b\n}\n");
        assert!(ddg.edges().contains(&DepEdge { def: 0, uses: 1 }));
        assert!(ddg.edges().contains(&DepEdge { def: 1, uses: 2 }));
        assert!(!ddg.edges().contains(&DepEdge { def: 0, uses: 2 }));
    }

    #[test]
    fn acyclic_code_has_no_backward_candidates() {
        let (_, ug, ddg) = build("fn f(x) {\n  a = x + 1\n  b = a * 2\n  return b\n}\n");
        assert_eq!(ddg.backward_candidates(&ug).count(), 0);
    }

    #[test]
    fn loop_carried_dependency_detected() {
        let src = r#"
            fn f(n) {
                i = 0
            head:
                if i >= n goto done
                i = i + 1
                goto head
            done:
                return i
            }
        "#;
        let (_, ug, ddg) = build(src);
        // `i = i + 1` (node 2) defines i, which is used at the loop head
        // test (node 1) on the next iteration: use-before-def in path order.
        let backs: Vec<_> = ddg.backward_candidates(&ug).collect();
        assert!(
            backs.iter().any(|e| e.def == 2 && e.uses == 1),
            "loop-carried def(2)->use(1) should be backward: {backs:?}"
        );
    }

    #[test]
    fn self_dependency_excluded_from_edges() {
        let (_, ug, ddg) = build("fn f(x) {\n  x = x + 1\n  return x\n}\n");
        assert!(!ddg.edges().iter().any(|e| e.def == e.uses));
        // Straight-line self-assignments are not loop-carried either.
        assert_eq!(ddg.backward_candidates(&ug).count(), 0);
    }

    #[test]
    fn cyclic_self_dependency_is_a_backward_candidate() {
        // The accumulator `c` is the ONLY loop-carried variable whose
        // dependency is a self-dependency at node 1; the loop condition
        // depends on an external input read each iteration.
        let src = r#"
            fn f(input) {
            head:
                c = c + 1
                more = input > c
                if more != 0 goto head
                return c
            }
        "#;
        let (_, ug, ddg) = build(src);
        let backs: Vec<_> = ddg.backward_candidates(&ug).collect();
        assert!(
            backs.iter().any(|e| e.def == e.uses),
            "cyclic self-dependency reported: {backs:?}"
        );
    }
}
