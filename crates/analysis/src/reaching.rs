//! Reaching-definitions analysis (forward may dataflow), feeding the Data
//! Dependency Graph.

use mpart_ir::func::Function;
use mpart_ir::instr::Pc;

use crate::bitset::BitSet;
use crate::ug::UnitGraph;

/// Per-node reaching-definition sets. Definition ids are the instruction
/// indices of defining instructions.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    ins: Vec<BitSet>,
    /// Instruction index of each definition's defining node (identity map
    /// restricted to defining instructions).
    defs_of_var: Vec<Vec<Pc>>,
}

impl ReachingDefs {
    /// Runs the forward fixpoint:
    /// `IN[n] = ⋃ OUT[pred]`, `OUT[n] = gen[n] ∪ (IN[n] ∖ kill[n])`.
    ///
    /// Definitions reaching the start node from "outside" (parameters) are
    /// modelled as a virtual definition at the entry, tracked separately by
    /// [`param_reaches`](Self::param_reaches).
    pub fn compute(func: &Function, ug: &UnitGraph) -> Self {
        let n = ug.len();
        let nvars = func.locals;
        // gen[pc] = {pc} if pc defines a var; kill[pc] = other defs of same var.
        let mut defs_of_var: Vec<Vec<Pc>> = vec![Vec::new(); nvars];
        for (pc, instr) in func.instrs.iter().enumerate() {
            if let Some(v) = instr.def() {
                defs_of_var[v.index()].push(pc);
            }
        }
        let mut ins = vec![BitSet::new(n); n];
        let mut outs = vec![BitSet::new(n); n];
        let mut changed = true;
        while changed {
            changed = false;
            for pc in 0..n {
                let mut inn = BitSet::new(n);
                for &p in ug.preds(pc) {
                    inn.union_with(&outs[p]);
                }
                if inn != ins[pc] {
                    ins[pc] = inn.clone();
                    changed = true;
                }
                let mut out = inn;
                if let Some(v) = func.instrs[pc].def() {
                    for &d in &defs_of_var[v.index()] {
                        out.remove(d);
                    }
                    out.insert(pc);
                }
                if out != outs[pc] {
                    outs[pc] = out;
                    changed = true;
                }
            }
        }
        ReachingDefs { ins, defs_of_var }
    }

    /// Definitions of `var` that reach the entry of `pc`.
    pub fn reaching(&self, pc: Pc, var: mpart_ir::Var) -> Vec<Pc> {
        self.defs_of_var[var.index()]
            .iter()
            .copied()
            .filter(|&d| self.ins[pc].contains(d))
            .collect()
    }

    /// Whether the (parameter or uninitialized) entry value of `var` can
    /// reach `pc` — true when no definition of `var` dominates every path
    /// to `pc`. Conservatively computed as: some path from the start
    /// reaches `pc` without passing a definition of `var`.
    pub fn param_reaches(
        &self,
        func: &Function,
        ug: &UnitGraph,
        pc: Pc,
        var: mpart_ir::Var,
    ) -> bool {
        // BFS from start avoiding nodes that define `var`.
        let mut seen = BitSet::new(ug.len());
        let mut stack = vec![ug.start()];
        while let Some(u) = stack.pop() {
            if !seen.insert(u) {
                continue;
            }
            if u == pc {
                return true;
            }
            if func.instrs[u].def() == Some(var) {
                continue; // definition blocks the entry value
            }
            for &s in ug.succs(u) {
                stack.push(s);
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpart_ir::parse::parse_program;

    fn setup(src: &str) -> (mpart_ir::Program, UnitGraph) {
        let p = parse_program(src).unwrap();
        let ug = UnitGraph::build(p.function("f").unwrap());
        (p, ug)
    }

    #[test]
    fn straight_line_single_def() {
        let src = "fn f(x) {\n  a = x + 1\n  b = a * 2\n  return b\n}\n";
        let (p, ug) = setup(src);
        let f = p.function("f").unwrap();
        let rd = ReachingDefs::compute(f, &ug);
        let a = f.var_by_name("a").unwrap();
        assert_eq!(rd.reaching(1, a), vec![0]);
        assert_eq!(rd.reaching(0, a), Vec::<usize>::new());
    }

    #[test]
    fn branch_merges_multiple_defs() {
        let src = r#"
            fn f(p) {
                if p == 0 goto other
                y = 1
                goto done
            other:
                y = 2
            done:
                return y
            }
        "#;
        let (p, ug) = setup(src);
        let f = p.function("f").unwrap();
        let rd = ReachingDefs::compute(f, &ug);
        let y = f.var_by_name("y").unwrap();
        // Find the return instruction.
        let ret =
            f.instrs.iter().position(|i| matches!(i, mpart_ir::Instr::Return { .. })).unwrap();
        let mut defs = rd.reaching(ret, y);
        defs.sort();
        assert_eq!(defs.len(), 2, "both arms' defs reach the merge: {defs:?}");
    }

    #[test]
    fn redefinition_kills() {
        let src = "fn f(x) {\n  a = 1\n  a = 2\n  return a\n}\n";
        let (p, ug) = setup(src);
        let f = p.function("f").unwrap();
        let rd = ReachingDefs::compute(f, &ug);
        let a = f.var_by_name("a").unwrap();
        assert_eq!(rd.reaching(2, a), vec![1]);
    }

    #[test]
    fn loop_def_reaches_own_head() {
        let src = r#"
            fn f(n) {
                i = 0
            head:
                if i >= n goto done
                i = i + 1
                goto head
            done:
                return i
            }
        "#;
        let (p, ug) = setup(src);
        let f = p.function("f").unwrap();
        let rd = ReachingDefs::compute(f, &ug);
        let i = f.var_by_name("i").unwrap();
        let mut defs = rd.reaching(1, i);
        defs.sort();
        assert_eq!(defs, vec![0, 2], "both initial and loop defs reach the head");
    }

    #[test]
    fn param_entry_value_reachability() {
        let src = "fn f(x) {\n  a = x\n  x = 1\n  b = x\n  return b\n}\n";
        let (p, ug) = setup(src);
        let f = p.function("f").unwrap();
        let rd = ReachingDefs::compute(f, &ug);
        let x = f.var_by_name("x").unwrap();
        assert!(rd.param_reaches(f, &ug, 0, x));
        assert!(rd.param_reaches(f, &ug, 1, x));
        assert!(!rd.param_reaches(f, &ug, 2, x), "x redefined at 1");
    }
}
