//! # mpart-analysis — static analysis for Method Partitioning
//!
//! Implements the static half of the paper: given a message-handling
//! method in [`mpart_ir`] form and a cost model's
//! [`cost::EdgeCostEstimator`], produce the set of
//! *Potential Split Edges* (PSEs) at which the handler may be split into a
//! modulator (sender-side) and demodulator (receiver-side) pair.
//!
//! The pipeline (all exposed individually for testing and tooling):
//!
//! 1. [`ug::UnitGraph`] — per-instruction CFG;
//! 2. [`stop::StopNodes`] — returns, native calls, global accesses;
//! 3. [`liveness::Liveness`] — IN/OUT sets and `INTER(e)`;
//! 4. [`reaching::ReachingDefs`] → [`ddg::Ddg`] — data dependencies;
//! 5. [`points_to::AliasClasses`] — unification-based points-to;
//! 6. [`varkinds::VarKinds`] — size determinability;
//! 7. [`paths::target_paths`] — TargetPath enumeration;
//! 8. [`convex::ConvexCut`] — infinite pricing of convexity-violating
//!    edges and `MinCostEdgeSet` per path.
//!
//! [`analyze`] runs the whole pipeline and returns a [`HandlerAnalysis`].
//! The result is pure — a function of the program text, handler name,
//! cost model, and enumeration limits — so multi-session runtimes share
//! one analysis per distinct handler through the content-addressed
//! [`cache::AnalysisCache`] instead of re-running the pipeline per
//! session (see `ARCHITECTURE.md` §"mpart-analysis" and §"Throughput
//! layer" for where this sits in the crate map).
//!
//! ```
//! use mpart_analysis::analyze;
//! use mpart_analysis::cost::InterCountEstimator;
//! use mpart_ir::parse::parse_program;
//!
//! let program = parse_program(
//!     "fn watch(x) {\n  y = x * 3\n  native emit(y)\n  return y\n}\n",
//! ).unwrap();
//! let analysis =
//!     analyze(&program, "watch", &InterCountEstimator, Default::default()).unwrap();
//! // Every handler exposes at least the trivial entry split.
//! assert!(analysis.pses().iter().any(|p| p.edge.is_entry()));
//! ```

pub mod bitset;
pub mod cache;
pub mod convex;
pub mod cost;
pub mod ddg;
pub mod liveness;
pub mod paths;
pub mod points_to;
pub mod reaching;
pub mod stop;
pub mod ug;
pub mod union_find;
pub mod varkinds;

use std::collections::HashSet;

use mpart_ir::instr::Pc;
use mpart_ir::{IrError, Program};

pub use cache::{AnalysisCache, DEFAULT_CACHE_CAPACITY};
pub use convex::{ConvexCut, PseInfo};
pub use cost::{EdgeCostEstimator, EstimatorCx, StaticCost};
pub use ug::{Edge, ENTRY};

/// Complete static-analysis results for one handler under one cost model.
#[derive(Debug, Clone)]
pub struct HandlerAnalysis {
    /// Name of the analyzed handler function.
    pub func_name: String,
    /// The Unit Graph.
    pub ug: ug::UnitGraph,
    /// Live-variable sets.
    pub liveness: liveness::Liveness,
    /// Data Dependency Graph.
    pub ddg: ddg::Ddg,
    /// Stop nodes.
    pub stops: stop::StopNodes,
    /// Alias classes.
    pub aliases: points_to::AliasClasses,
    /// Variable size classification.
    pub kinds: varkinds::VarKinds,
    /// Enumerated target paths.
    pub paths: paths::TargetPaths,
    /// The convex-cut result: PSEs and per-path candidates.
    pub cut: ConvexCut,
}

impl HandlerAnalysis {
    /// The PSE list (sorted by discovery order; stable across runs).
    pub fn pses(&self) -> &[PseInfo] {
        &self.cut.pses
    }

    /// Index of the PSE covering `edge`, if any.
    pub fn pse_for_edge(&self, edge: Edge) -> Option<usize> {
        self.cut.pses.iter().position(|p| p.edge == edge)
    }

    /// Derives bytecode-compilation hints from the static pipeline (see
    /// [`ExecHints`]): the watched edge set from the PSE list and stop
    /// nodes, and superinstruction fusion candidates from the DDG.
    pub fn exec_hints(&self) -> ExecHints {
        let mut observed = HashSet::new();
        // Non-entry PSE edges: where the modulator may split and both
        // sides run profiling code. The synthetic entry edge has no
        // runtime counterpart (entry splits never start execution).
        for pse in self.pses() {
            if !pse.edge.is_entry() {
                observed.insert((pse.edge.from, pse.edge.to));
            }
        }
        // Edges into stop nodes: the modulator must detect the plan
        // violation *before* a stop node executes on the sender.
        for stop in self.stops.iter() {
            for &p in self.ug.preds(stop) {
                observed.insert((p, stop));
            }
        }
        // A def consumed by the textually next instruction is the
        // load/op/store chain shape worth fusing.
        let mut fuse_at = HashSet::new();
        for dep in self.ddg.edges() {
            if dep.uses == dep.def + 1 {
                fuse_at.insert(dep.def);
            }
        }
        ExecHints { observed, fuse_at }
    }

    /// Re-prices this analysis's PSE set under a different estimator,
    /// sharing every graph structure (Unit Graph, liveness, DDG, alias
    /// classes, enumerated paths) — none of the static pipeline re-runs.
    ///
    /// The PSE list, its order, and the per-path candidate indices are
    /// preserved exactly, so plan flags, profiling statistics, and
    /// edge↔PSE maps built against this analysis stay valid; only each
    /// PSE's `static_cost` is recomputed. This is the runtime
    /// model-switch path: a fresh [`analyze`] under the new model would
    /// prune a *different* PSE set (dominance pruning depends on the
    /// estimator), breaking PSE-id indexing.
    ///
    /// Each PSE is priced on the first enumerated path containing its
    /// edge, matching [`ConvexCut::run`]'s first-path pricing.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Unresolved`] if `program` lacks the analyzed
    /// function.
    pub fn repriced(
        &self,
        program: &Program,
        estimator: &dyn EdgeCostEstimator,
    ) -> Result<HandlerAnalysis, IrError> {
        let func = program.function_or_err(&self.func_name)?;
        let cx = EstimatorCx { func, kinds: &self.kinds, aliases: &self.aliases };
        let mut out = self.clone();
        let mut priced = vec![false; out.cut.pses.len()];
        for path in &self.paths.paths {
            for (idx, edge) in convex::path_edges(self.ug.start(), path).into_iter().enumerate() {
                let Some(p) = self.pse_for_edge(edge) else { continue };
                if std::mem::replace(&mut priced[p], true) {
                    continue;
                }
                let cost = estimator.edge_cost(&cx, path, idx, edge, &out.cut.pses[p].inter);
                out.cut.pses[p].static_cost = match cost {
                    StaticCost::LowerBounded { det, vars } => {
                        StaticCost::LowerBounded { det, vars: cx.aliases.canon_set(&vars) }
                    }
                    other => other,
                };
            }
        }
        Ok(out)
    }
}

/// Bytecode-compilation hints derived from a [`HandlerAnalysis`]
/// (consumed by `mpart_ir::compile` via the partitioned runtime).
///
/// `observed` is the *watched set*: every Unit Graph edge where the
/// modulator/demodulator observers can act — non-entry PSE edges (split
/// and profiling points) plus edges into stop nodes (sender-side plan
/// violation detection). The compiled engine skips edge observation
/// everywhere else, which is what makes the dispatch loop fast; the
/// engines stay observationally equivalent *because* this set covers all
/// acting edges.
///
/// `fuse_at` lists instruction indices whose defined value is consumed by
/// the immediately following instruction (a DDG `def → def+1` edge) — the
/// superinstruction candidates. The compiler re-checks structural
/// legality (leaders, watched interior edges) before fusing.
#[derive(Debug, Clone, Default)]
pub struct ExecHints {
    /// Watched `(from, to)` control-flow edges.
    pub observed: HashSet<(Pc, Pc)>,
    /// Fusion start candidates: `pc` whose def feeds `pc + 1`.
    pub fuse_at: HashSet<Pc>,
}

/// Runs the full static-analysis pipeline on `func_name` within `program`.
///
/// # Errors
///
/// Returns [`IrError::Unresolved`] if the function does not exist and
/// [`IrError::Invalid`] if it is degenerate (no instructions).
pub fn analyze(
    program: &Program,
    func_name: &str,
    estimator: &dyn EdgeCostEstimator,
    limits: paths::EnumLimits,
) -> Result<HandlerAnalysis, IrError> {
    let func = program.function_or_err(func_name)?;
    if func.instrs.is_empty() {
        return Err(IrError::Invalid(format!("function `{func_name}` is empty")));
    }
    let ug = ug::UnitGraph::build(func);
    let stops = stop::StopNodes::mark_with_program(program, func);
    let live = liveness::Liveness::compute(func, &ug);
    let rd = reaching::ReachingDefs::compute(func, &ug);
    let ddg = ddg::Ddg::build(func, &ug, &rd);
    let paths = paths::target_paths(&ug, &stops, limits);
    let kinds = varkinds::VarKinds::compute(func);
    let aliases = points_to::AliasClasses::compute(func);
    let cx = EstimatorCx { func, kinds: &kinds, aliases: &aliases };
    let mut cut = ConvexCut::run(func, &ug, &live, &ddg, &paths, &cx, estimator);
    ensure_entry_pse(func, &ug, &live, &paths, &cx, estimator, &mut cut);
    Ok(HandlerAnalysis {
        func_name: func_name.to_string(),
        ug,
        liveness: live,
        ddg,
        stops,
        aliases,
        kinds,
        paths,
        cut,
    })
}

/// Reinstates the synthetic entry edge as a PSE if `MinCostEdgeSet`
/// pruned it as dominated.
///
/// The entry cut — ship the raw event, run the whole handler at the
/// receiver — is always a *valid* cut, and the runtime relies on it as the
/// trivial fallback plan when the link degrades. Static dominance pruning
/// is only a search-space reduction; it must not remove the one plan that
/// needs no link quality and no profiling data to be safe. The entry edge
/// lies on every target path, so it is appended to every path's candidate
/// list, priced at its true static cost (never infinity: no data
/// dependency can cross an edge with no modulator side).
fn ensure_entry_pse(
    func: &mpart_ir::Function,
    ug: &ug::UnitGraph,
    liveness: &liveness::Liveness,
    paths: &paths::TargetPaths,
    cx: &EstimatorCx<'_>,
    estimator: &dyn EdgeCostEstimator,
    cut: &mut ConvexCut,
) {
    if cut.pses.iter().any(|p| p.edge.is_entry()) {
        return;
    }
    let Some(first_path) = paths.paths.first() else {
        return;
    };
    let edge = Edge::entry(ug.start());
    let inter = liveness.inter(func, edge);
    let static_cost = estimator.edge_cost(cx, first_path, 0, edge, &inter);
    cut.pses.push(PseInfo { edge, inter, static_cost });
    let idx = cut.pses.len() - 1;
    for on_path in &mut cut.path_pses {
        on_path.push(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cost::InterCountEstimator;
    use mpart_ir::parse::parse_program;

    #[test]
    fn analyze_push_example_end_to_end() {
        let src = r#"
            class ImageData { width: int, buff: ref }
            fn push(event) {
                z0 = event instanceof ImageData
                if z0 == 0 goto skip
                r2 = (ImageData) event
                r4 = call resize(r2, 100, 100)
                native display_image(r4)
                return
            skip:
                return
            }
        "#;
        let program = parse_program(src).unwrap();
        let ha = analyze(&program, "push", &InterCountEstimator, Default::default()).unwrap();
        assert_eq!(ha.func_name, "push");
        assert_eq!(ha.paths.paths.len(), 2);
        assert!(!ha.pses().is_empty());
        // Every target path must have at least one candidate split edge.
        for on_path in &ha.cut.path_pses {
            assert!(!on_path.is_empty());
        }
    }

    #[test]
    fn analyze_missing_function_errors() {
        let program = parse_program("fn f() {\n  return\n}\n").unwrap();
        assert!(analyze(&program, "nope", &InterCountEstimator, Default::default()).is_err());
    }

    #[test]
    fn entry_pse_survives_dominance_pruning() {
        // `a` dies immediately, so the entry edge {x, y} is dominated and
        // MinCostEdgeSet prunes it — yet the analysis must still expose it
        // as the runtime's trivial fallback plan.
        let src = "fn f(x, y) {\n  a = x + y\n  b = a * 2\n  return b\n}\n";
        let program = parse_program(src).unwrap();
        let ha = analyze(&program, "f", &InterCountEstimator, Default::default()).unwrap();
        let entry = ha.pses().iter().position(|p| p.edge.is_entry()).expect("entry PSE reinstated");
        // It is a candidate on every target path (it lies on all of them).
        for on_path in &ha.cut.path_pses {
            assert!(on_path.contains(&entry));
        }
        // And it is priced at its real cost, not infinity.
        assert!(!matches!(ha.pses()[entry].static_cost, StaticCost::Infinite));
    }

    #[test]
    fn pse_for_edge_lookup() {
        let program = parse_program("fn f(x) {\n  a = x + 1\n  return a\n}\n").unwrap();
        let ha = analyze(&program, "f", &InterCountEstimator, Default::default()).unwrap();
        let pse0 = &ha.pses()[0];
        assert_eq!(ha.pse_for_edge(pse0.edge), Some(0));
        assert_eq!(ha.pse_for_edge(Edge::new(97, 98)), None);
    }
}
