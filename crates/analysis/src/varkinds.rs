//! Static classification of variables into size-determinable and
//! size-non-determinable kinds.
//!
//! The data-size cost model (§4.1) can fully price an edge only when the
//! runtime sizes of all crossing variables are statically known; "programs
//! can use interfaces, superclasses and arrays whose sizes are only known
//! at runtime". This pass conservatively classifies each variable by
//! joining the kinds of all its definitions.

use mpart_ir::func::Function;
use mpart_ir::instr::{Const, Instr, Operand, Place, Rvalue, Var};

/// Static size classification of a variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Never defined (dead slot); size 0.
    Unset,
    /// Always a fixed-size scalar of the given byte width.
    Scalar(u32),
    /// A reference (object/array/string) — runtime size unknown.
    Unknown,
}

impl VarKind {
    fn join(self, other: VarKind) -> VarKind {
        use VarKind::*;
        match (self, other) {
            (Unset, k) | (k, Unset) => k,
            (Scalar(a), Scalar(b)) if a == b => Scalar(a),
            (Scalar(a), Scalar(b)) => Scalar(a.max(b)),
            _ => Unknown,
        }
    }

    /// Statically-known byte width, if any.
    pub fn known_size(self) -> Option<u64> {
        match self {
            VarKind::Unset => Some(0),
            VarKind::Scalar(w) => Some(u64::from(w)),
            VarKind::Unknown => None,
        }
    }
}

/// Per-variable kinds for one function.
#[derive(Debug, Clone)]
pub struct VarKinds {
    kinds: Vec<VarKind>,
}

impl VarKinds {
    /// Computes kinds by a flow-insensitive scan of all definitions.
    /// Parameters are `Unknown` (messages are arbitrary objects).
    pub fn compute(func: &Function) -> Self {
        let mut kinds = vec![VarKind::Unset; func.locals];
        for kind in kinds.iter_mut().take(func.params) {
            *kind = VarKind::Unknown;
        }
        // Iterate to a fixpoint so copy chains settle (at most #vars rounds;
        // kinds only move up a 3-level lattice, so this terminates fast).
        let mut changed = true;
        while changed {
            changed = false;
            for instr in &func.instrs {
                let Instr::Assign { place: Place::Var(dst), rvalue } = instr else {
                    continue;
                };
                let k = rvalue_kind(rvalue, &kinds);
                let joined = kinds[dst.index()].join(k);
                if joined != kinds[dst.index()] {
                    kinds[dst.index()] = joined;
                    changed = true;
                }
            }
        }
        VarKinds { kinds }
    }

    /// The kind of `v`.
    pub fn kind(&self, v: Var) -> VarKind {
        self.kinds[v.index()]
    }
}

fn operand_kind(op: &Operand, kinds: &[VarKind]) -> VarKind {
    match op {
        Operand::Var(v) => kinds[v.index()],
        Operand::Const(c) => match c {
            Const::Null => VarKind::Scalar(mpart_ir::marshal::REF_SIZE as u32),
            Const::Bool(_) => VarKind::Scalar(1),
            Const::Int(_) => VarKind::Scalar(8),
            Const::Float(_) => VarKind::Scalar(8),
            Const::Str(_) => VarKind::Unknown,
        },
    }
}

fn rvalue_kind(r: &Rvalue, kinds: &[VarKind]) -> VarKind {
    match r {
        Rvalue::Use(op) => operand_kind(op, kinds),
        Rvalue::Unary(_, op) => operand_kind(op, kinds),
        Rvalue::Binary(op, a, b) => {
            if op.is_comparison() {
                VarKind::Scalar(1)
            } else {
                operand_kind(a, kinds).join(operand_kind(b, kinds))
            }
        }
        Rvalue::InstanceOf(_, _) => VarKind::Scalar(1),
        Rvalue::Cast(_, v) => kinds[v.index()],
        Rvalue::New(_)
        | Rvalue::NewArray(_, _)
        | Rvalue::FieldGet(_, _)
        | Rvalue::Invoke { .. }
        | Rvalue::InvokeNative { .. }
        | Rvalue::GlobalGet(_) => VarKind::Unknown,
        Rvalue::ArrayGet(_, _) => VarKind::Unknown,
        Rvalue::ArrayLen(_) => VarKind::Scalar(8),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpart_ir::parse::parse_program;

    fn kinds(src: &str) -> (mpart_ir::Program, VarKinds) {
        let p = parse_program(src).unwrap();
        let k = VarKinds::compute(p.function("f").unwrap());
        (p, k)
    }

    #[test]
    fn scalars_are_known() {
        let src = "fn f(x) {\n  a = 1\n  b = a + 2\n  c = a < b\n  n = len x\n  return b\n}\n";
        let (p, k) = kinds(src);
        let f = p.function("f").unwrap();
        assert_eq!(k.kind(f.var_by_name("a").unwrap()), VarKind::Scalar(8));
        assert_eq!(k.kind(f.var_by_name("b").unwrap()), VarKind::Scalar(8));
        assert_eq!(k.kind(f.var_by_name("c").unwrap()), VarKind::Scalar(1));
        assert_eq!(k.kind(f.var_by_name("n").unwrap()), VarKind::Scalar(8));
    }

    #[test]
    fn params_and_allocations_unknown() {
        let src = r#"
            class Box { v: int }
            fn f(e) {
                b = new Box
                a = new byte[10]
                c = (Box) e
                return c
            }
        "#;
        let (p, k) = kinds(src);
        let f = p.function("f").unwrap();
        for name in ["e", "b", "a", "c"] {
            assert_eq!(k.kind(f.var_by_name(name).unwrap()), VarKind::Unknown, "{name}");
        }
    }

    #[test]
    fn mixed_defs_degrade_to_unknown() {
        let src = r#"
            fn f(e, p) {
                if p == 0 goto other
                y = 1
                goto done
            other:
                y = e
            done:
                return y
            }
        "#;
        let (p, k) = kinds(src);
        let f = p.function("f").unwrap();
        assert_eq!(k.kind(f.var_by_name("y").unwrap()), VarKind::Unknown);
    }

    #[test]
    fn copy_chain_propagates_through_fixpoint() {
        // `b = a` appears before `a`'s definition textually when the loop
        // jumps backward; the fixpoint must still settle.
        let src = r#"
            fn f(n) {
                a = 0
            head:
                b = a
                a = b + 1
                if a < n goto head
                return b
            }
        "#;
        let (p, k) = kinds(src);
        let f = p.function("f").unwrap();
        assert_eq!(k.kind(f.var_by_name("b").unwrap()), VarKind::Scalar(8));
    }

    #[test]
    fn unset_vars_have_zero_size() {
        assert_eq!(VarKind::Unset.known_size(), Some(0));
        assert_eq!(VarKind::Scalar(8).known_size(), Some(8));
        assert_eq!(VarKind::Unknown.known_size(), None);
    }
}
