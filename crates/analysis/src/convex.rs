//! The `ConvexCut` algorithm (paper Figure 3): identifies Potential Split
//! Edges.
//!
//! ```text
//! Algorithm ConvexCut
//! 1. MarkStopNodes(ug)
//! 2. foreach Edge(out, in) in the ddg do
//! 3.   foreach path p in ug that starts from in and ends at out do
//! 4.     Mark each edge in p with infinite cost
//! 5. PSESet = null
//! 6. foreach TargetPath p do
//! 7.   PSESet += MinCostEdgeSet(p)
//! ```
//!
//! The infinite marking guarantees *convex* partitions: cutting an edge on
//! a use→def control path would let data defined on the demodulator side
//! flow back to a modulator-side use on a later loop iteration.

use std::collections::{HashMap, HashSet};

use mpart_ir::func::Function;
use mpart_ir::instr::{Pc, Var};

use crate::cost::{EdgeCostEstimator, EstimatorCx, StaticCost};
use crate::ddg::Ddg;
use crate::liveness::Liveness;
use crate::paths::TargetPaths;
use crate::ug::{Edge, UnitGraph};

/// A Potential Split Edge with its statically-computed metadata.
#[derive(Debug, Clone)]
pub struct PseInfo {
    /// The Unit Graph edge.
    pub edge: Edge,
    /// `INTER(edge)` — live variables a continuation must carry, sorted.
    pub inter: Vec<Var>,
    /// Static cost under the analysis' cost model (from the first target
    /// path that selected this edge; runtime profiling refines it).
    pub static_cost: StaticCost,
}

/// Output of the convex-cut analysis.
#[derive(Debug, Clone)]
pub struct ConvexCut {
    /// The PSE set, sorted by edge.
    pub pses: Vec<PseInfo>,
    /// For each target path, the indices into `pses` of the candidate
    /// split edges lying on that path.
    pub path_pses: Vec<Vec<usize>>,
    /// Edges priced at infinity by the convexity rule.
    pub infinite_edges: HashSet<Edge>,
}

impl ConvexCut {
    /// Runs the algorithm over precomputed analyses.
    pub fn run(
        func: &Function,
        ug: &UnitGraph,
        liveness: &Liveness,
        ddg: &Ddg,
        paths: &TargetPaths,
        cx: &EstimatorCx<'_>,
        estimator: &dyn EdgeCostEstimator,
    ) -> Self {
        // Step 2-4: price convexity-violating edges at infinity.
        let mut infinite_edges: HashSet<Edge> = HashSet::new();
        for dep in ddg.backward_candidates(ug) {
            // Every UG edge on a path use -> def: from reachable from the
            // use, and the def reachable from to.
            let from_use = ug.reachable_from(dep.uses);
            let to_def = ug.reaches(dep.def);
            for e in ug.edges() {
                if from_use.contains(e.from) && to_def.contains(e.to) {
                    infinite_edges.insert(e);
                }
            }
        }

        // Steps 6-9: per-path minimal cost edge sets.
        let mut pse_index: HashMap<Edge, usize> = HashMap::new();
        let mut pses: Vec<PseInfo> = Vec::new();
        let mut path_pses: Vec<Vec<usize>> = Vec::new();

        for path in &paths.paths {
            let edges = path_edges(ug.start(), path);
            // Price each edge.
            let priced: Vec<(Edge, Vec<Var>, StaticCost)> = edges
                .iter()
                .enumerate()
                .map(|(idx, &e)| {
                    let inter = liveness.inter(func, e);
                    let cost = if infinite_edges.contains(&e) {
                        StaticCost::Infinite
                    } else {
                        let c = estimator.edge_cost(cx, path, idx, e, &inter);
                        canonicalize(c, cx)
                    };
                    (e, inter, cost)
                })
                .collect();
            let min_set = min_cost_edge_set(&priced);
            let mut on_path = Vec::new();
            for idx in min_set {
                let (e, inter, cost) = &priced[idx];
                let pse_idx = *pse_index.entry(*e).or_insert_with(|| {
                    pses.push(PseInfo {
                        edge: *e,
                        inter: inter.clone(),
                        static_cost: cost.clone(),
                    });
                    pses.len() - 1
                });
                on_path.push(pse_idx);
            }
            path_pses.push(on_path);
        }

        ConvexCut { pses, path_pses, infinite_edges }
    }
}

/// The candidate edges of a path: the synthetic entry edge followed by
/// every consecutive pair.
pub fn path_edges(start: Pc, path: &[Pc]) -> Vec<Edge> {
    let mut out = Vec::with_capacity(path.len());
    debug_assert_eq!(path.first().copied(), Some(start));
    out.push(Edge::entry(start));
    for w in path.windows(2) {
        out.push(Edge::new(w[0], w[1]));
    }
    out
}

fn canonicalize(cost: StaticCost, cx: &EstimatorCx<'_>) -> StaticCost {
    match cost {
        StaticCost::LowerBounded { det, vars } => {
            StaticCost::LowerBounded { det, vars: cx.aliases.canon_set(&vars) }
        }
        other => other,
    }
}

/// `MinCostEdgeSet(p)`: indices (into the priced edge list) of edges that
/// are not determinably more expensive than any other edge on the path,
/// with determinably-equal duplicates removed (keeping the earliest, as the
/// paper "arbitrarily" removes one of an identical pair).
fn min_cost_edge_set(priced: &[(Edge, Vec<Var>, StaticCost)]) -> Vec<usize> {
    let mut keep: Vec<usize> = Vec::new();
    'outer: for i in 0..priced.len() {
        let ci = &priced[i].2;
        if matches!(ci, StaticCost::Infinite) {
            continue;
        }
        for (j, other) in priced.iter().enumerate() {
            if i != j && ci.determinably_greater(&other.2) {
                continue 'outer;
            }
        }
        // Dedup determinably-equal edges (same INTER after aliasing, or
        // equal costs): keep the earliest occurrence.
        for &k in &keep {
            if priced[k].2.determinably_equal(ci) {
                continue 'outer;
            }
        }
        keep.push(i);
    }
    keep
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::InterCountEstimator;
    use crate::points_to::AliasClasses;
    use crate::reaching::ReachingDefs;
    use crate::stop::StopNodes;
    use crate::varkinds::VarKinds;
    use mpart_ir::parse::parse_program;

    fn run(src: &str) -> (mpart_ir::Program, ConvexCut) {
        let p = parse_program(src).unwrap();
        let f = p.function("f").unwrap();
        let ug = UnitGraph::build(f);
        let stops = StopNodes::mark(f);
        let live = Liveness::compute(f, &ug);
        let rd = ReachingDefs::compute(f, &ug);
        let ddg = Ddg::build(f, &ug, &rd);
        let paths = crate::paths::target_paths(&ug, &stops, Default::default());
        let kinds = VarKinds::compute(f);
        let aliases = AliasClasses::compute(f);
        let cx = EstimatorCx { func: f, kinds: &kinds, aliases: &aliases };
        let cut = ConvexCut::run(f, &ug, &live, &ddg, &paths, &cx, &InterCountEstimator);
        (p, cut)
    }

    #[test]
    fn every_path_gets_at_least_one_pse() {
        let src = r#"
            class ImageData { width: int, buff: ref }
            fn f(event) {
                z0 = event instanceof ImageData
                if z0 == 0 goto skip
                r2 = (ImageData) event
                r4 = call resize(r2, 100, 100)
                native display_image(r4)
                return
            skip:
                return
            }
        "#;
        let (_, cut) = run(src);
        for (i, on_path) in cut.path_pses.iter().enumerate() {
            assert!(!on_path.is_empty(), "path {i} has no PSE");
        }
        assert!(!cut.pses.is_empty());
    }

    #[test]
    fn loop_interior_edges_are_infinite() {
        let src = r#"
            fn f(n) {
                i = 0
            head:
                if i >= n goto done
                i = i + 1
                goto head
            done:
                return i
            }
        "#;
        let (_, cut) = run(src);
        // The loop body edges (1->2), (2->3), (3->1) carry the loop-carried
        // dependency i@2 -> i@1 and must be infinite.
        assert!(cut.infinite_edges.contains(&Edge::new(1, 2)));
        assert!(cut.infinite_edges.contains(&Edge::new(2, 3)));
        assert!(cut.infinite_edges.contains(&Edge::new(3, 1)));
        // No selected PSE may be an infinite edge.
        for pse in &cut.pses {
            assert!(!cut.infinite_edges.contains(&pse.edge), "{:?}", pse.edge);
        }
        // The entry edge remains a valid cut for the loop path.
        assert!(cut.pses.iter().any(|p| p.edge.is_entry()));
    }

    #[test]
    fn min_set_excludes_dominated_edges() {
        // a dies immediately; the edge after its last use carries fewer
        // variables and must win under the inter-count estimator.
        let src = r#"
            fn f(x, y) {
                a = x + y
                b = a * 2
                return b
            }
        "#;
        let (_, cut) = run(src);
        // Path edges: entry{x,y}=2, (0,1){a}=1, (1,2){b}=1.
        // entry is dominated; (0,1) kept; (1,2) has equal cost but distinct
        // vars under InterCountEstimator (Known(1) == Known(1)) -> deduped.
        assert_eq!(cut.pses.len(), 1);
        assert_eq!(cut.pses[0].edge, Edge::new(0, 1));
    }

    #[test]
    fn entry_edge_survives_for_trivial_handler() {
        let src = "fn f(x) {\n  native consume(x)\n  return\n}\n";
        let (_, cut) = run(src);
        // Path: [0]; edges: entry only (native node is terminal).
        assert_eq!(cut.pses.len(), 1);
        assert!(cut.pses[0].edge.is_entry());
    }

    #[test]
    fn inter_sets_recorded_sorted() {
        let src = "fn f(x, y) {\n  a = x + y\n  b = a + x\n  return b\n}\n";
        let (p, cut) = run(src);
        let f = p.function("f").unwrap();
        for pse in &cut.pses {
            let mut sorted = pse.inter.clone();
            sorted.sort();
            assert_eq!(sorted, pse.inter);
            for v in &pse.inter {
                assert!(v.index() < f.locals);
            }
        }
    }
}
