//! Criterion microbenches for remote continuation: modulator execution,
//! payload pack/unpack, and the full sender→receiver round trip.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use mpart_apps::image::{
    client_builtins, image_cost_model, image_program, make_frame, server_builtins,
};
use mpart_ir::interp::ExecCtx;

fn bench_continuation(c: &mut Criterion) {
    let program = image_program().expect("program");
    let handler = mpart::PartitionedHandler::analyze(
        Arc::clone(&program),
        "push",
        image_cost_model(&program),
    )
    .expect("analysis");
    // Split after the resize (ship the processed frame).
    let late: Vec<usize> = handler
        .analysis()
        .pses()
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.edge.is_entry())
        .map(|(i, _)| i)
        .collect();
    handler.plan().install(&late);
    let modulator = handler.modulator();
    let demodulator = handler.demodulator();

    let mut group = c.benchmark_group("continuation");
    group.bench_function("modulator_run_160px", |b| {
        b.iter(|| {
            let mut ctx = ExecCtx::with_builtins(&program, server_builtins(&program));
            let args = make_frame(&program, &mut ctx, 160).unwrap();
            black_box(modulator.handle(&mut ctx, args).unwrap())
        })
    });
    group.bench_function("round_trip_160px", |b| {
        b.iter(|| {
            let mut sender = ExecCtx::with_builtins(&program, server_builtins(&program));
            let args = make_frame(&program, &mut sender, 160).unwrap();
            let run = modulator.handle(&mut sender, args).unwrap();
            let mut receiver = ExecCtx::with_builtins(&program, client_builtins(&program));
            black_box(demodulator.handle(&mut receiver, &run.message).unwrap())
        })
    });
    // Adaptation actuation: pure flag switching.
    group.bench_function("plan_switch", |b| b.iter(|| handler.plan().install(black_box(&late))));
    group.finish();
}

criterion_group!(benches, bench_continuation);
criterion_main!(benches);
