//! Criterion microbenches for the Reconfiguration Unit: static analysis,
//! min-cut plan selection, and profiling-statistics updates.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use mpart::profile::{ModMessageProfile, ProfilingUnit, PseSample};
use mpart::reconfig::select_active_set;
use mpart_analysis::analyze;
use mpart_apps::sensor::{sensor_cost_model, sensor_program};

fn bench_reconfig(c: &mut Criterion) {
    let program = sensor_program().expect("program");
    let handler =
        mpart::PartitionedHandler::analyze(Arc::clone(&program), "process", sensor_cost_model())
            .expect("analysis");
    let analysis = handler.analysis();
    let weights = handler.static_weights();

    let mut group = c.benchmark_group("reconfig");
    group.bench_function("static_analysis_sensor_handler", |b| {
        b.iter(|| {
            analyze(
                black_box(&program),
                "process",
                &mpart_cost::ExecTimeModel::new(),
                Default::default(),
            )
            .unwrap()
        })
    });
    group.bench_function("min_cut_select_16_pses", |b| {
        b.iter(|| select_active_set(black_box(analysis), black_box(&weights)).unwrap())
    });
    group.bench_function("profiling_record_mod", |b| {
        let mut unit = ProfilingUnit::new(analysis.pses().len(), 0.5);
        let samples: Vec<PseSample> = (0..analysis.pses().len())
            .map(|i| PseSample {
                pse: i,
                mod_work: (i as u64) * 1000,
                payload_bytes: Some(4096),
                was_split: i == 7,
            })
            .collect();
        b.iter(|| {
            unit.record_mod(ModMessageProfile {
                samples: samples.clone(),
                split: 7,
                mod_work: 30_000,
                t_mod: Some(0.04),
            });
            black_box(unit.snapshot())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_reconfig);
criterion_main!(benches);
