//! Criterion microbenches for the Table 1 sizing strategies.

use criterion::{criterion_group, criterion_main, Criterion};
use mpart_bench::Table1Fixtures;
use mpart_ir::marshal::{calculated_size, marshal_values, reflective_size};
use std::hint::black_box;

fn bench_sizing(c: &mut Criterion) {
    let fx = Table1Fixtures::build().expect("fixtures");
    let sizers = fx.sizers();

    let mut group = c.benchmark_group("table1_sizing");
    for (label, value, has_sizer) in fx.rows() {
        let roots = std::slice::from_ref(value);
        group.bench_function(format!("serialize/{label}"), |b| {
            b.iter(|| marshal_values(black_box(&fx.heap), black_box(roots)).unwrap())
        });
        group.bench_function(format!("reflective_size/{label}"), |b| {
            b.iter(|| {
                reflective_size(black_box(&fx.heap), black_box(&fx.classes), black_box(roots))
                    .unwrap()
            })
        });
        group.bench_function(format!("direct_size/{label}"), |b| {
            b.iter(|| calculated_size(black_box(&fx.heap), black_box(roots)).unwrap())
        });
        if has_sizer {
            group.bench_function(format!("self_desc_size/{label}"), |b| {
                b.iter(|| {
                    sizers
                        .size_of(black_box(&fx.heap), black_box(&fx.classes), black_box(value))
                        .unwrap()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sizing);
criterion_main!(benches);
