//! Machine-readable benchmark reports: every harness binary can mirror
//! its printed tables into a `BENCH_<name>.json` file via `--json <path>`.
//!
//! The schema (documented in `EXPERIMENTS.md`) is deliberately small:
//!
//! ```text
//! {
//!   "schema_version": 1,
//!   "bench": "<binary name>",
//!   "params": { "<knob>": <value>, ... },
//!   "tables": [
//!     { "title": "...", "columns": ["..."], "rows": [[...]], "note": "..." }
//!   ]
//! }
//! ```
//!
//! Cells that parse as numbers are emitted as JSON numbers, everything
//! else as strings — so downstream tooling can consume `rows` without
//! re-parsing the human-oriented rendering.

use std::io::Write as _;

use mpart_obs::Json;

use crate::table::Table;

/// The `schema_version` stamped into every report.
pub const SCHEMA_VERSION: u64 = 1;

/// A machine-readable mirror of one harness run.
#[derive(Debug, Clone)]
pub struct Report {
    bench: String,
    params: Vec<(String, Json)>,
    tables: Vec<Json>,
}

impl Report {
    /// Starts a report for the named benchmark binary.
    pub fn new(bench: impl Into<String>) -> Self {
        Report { bench: bench.into(), params: Vec::new(), tables: Vec::new() }
    }

    /// Records one run parameter (a CLI knob, seed, or iteration count).
    pub fn param(&mut self, key: impl Into<String>, value: Json) -> &mut Self {
        self.params.push((key.into(), value));
        self
    }

    /// Convenience: records an unsigned-integer parameter.
    pub fn param_u64(&mut self, key: impl Into<String>, value: u64) -> &mut Self {
        self.param(key, Json::U64(value))
    }

    /// Mirrors a rendered [`Table`] into the report.
    pub fn add_table(&mut self, table: &Table) -> &mut Self {
        let columns = Json::Arr(table.headers().iter().map(Json::str).collect());
        let rows = Json::Arr(
            table
                .rows()
                .iter()
                .map(|row| Json::Arr(row.iter().map(|c| cell_json(c)).collect()))
                .collect(),
        );
        let mut obj = vec![
            ("title".to_string(), Json::str(table.title())),
            ("columns".to_string(), columns),
            ("rows".to_string(), rows),
        ];
        if let Some(note) = table.footnote() {
            obj.push(("note".to_string(), Json::str(note)));
        }
        self.tables.push(Json::Obj(obj));
        self
    }

    /// The full report document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".to_string(), Json::U64(SCHEMA_VERSION)),
            ("bench".to_string(), Json::str(&self.bench)),
            ("params".to_string(), Json::Obj(self.params.clone())),
            ("tables".to_string(), Json::Arr(self.tables.clone())),
        ])
    }

    /// Writes the report to `path` as pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and write errors.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().render().as_bytes())
    }

    /// If the process was invoked with `--json <path>`, writes the report
    /// there (panicking on I/O failure — a harness run whose requested
    /// artifact cannot be produced should fail loudly) and reports the
    /// path on stderr.
    pub fn finish(&self) {
        if let Some(path) = json_arg() {
            self.write(&path).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("wrote {path}");
        }
    }
}

/// The `--json <path>` argument of the current process, if present.
pub fn json_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1)).cloned()
}

/// A table cell as JSON: numbers stay numbers, everything else a string.
fn cell_json(cell: &str) -> Json {
    if let Ok(u) = cell.parse::<u64>() {
        return Json::U64(u);
    }
    if let Ok(i) = cell.parse::<i64>() {
        return Json::I64(i);
    }
    if let Ok(x) = cell.parse::<f64>() {
        if x.is_finite() {
            return Json::F64(x);
        }
    }
    Json::str(cell)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_mirrors_table_with_typed_cells() {
        let mut t = Table::new("demo", &["name", "count", "ratio"]);
        t.row(vec!["alpha".into(), "42".into(), "0.50".into()]);
        t.note("footnote");
        let mut r = Report::new("demo-bench");
        r.param_u64("seed", 7).add_table(&t);
        let text = r.to_json().render();
        assert!(text.contains("\"schema_version\": 1"), "{text}");
        assert!(text.contains("\"bench\": \"demo-bench\""), "{text}");
        assert!(text.contains("\"seed\": 7"), "{text}");
        assert!(text.contains("\"alpha\",\n          42,\n          0.5"), "{text}");
        assert!(text.contains("\"note\": \"footnote\""), "{text}");
    }

    #[test]
    fn non_numeric_cells_stay_strings() {
        assert_eq!(cell_json("12ms").render_compact(), "\"12ms\"");
        assert_eq!(cell_json("-3").render_compact(), "-3");
        assert_eq!(cell_json("1.25").render_compact(), "1.25");
    }
}
