//! Shared experiment fixtures.
//!
//! The Table 1 object population mirrors the paper's Appendix B:
//!
//! * `Int100 (w/ wrapper)` — a wrapper class around an `int[100]`;
//! * `Int100 (w/o wrapper)` — the bare `int[100]`;
//! * `AppBase` — a record of primitive fields plus a short string;
//! * `AppComp` — a composite: two strings, two `AppBase` refs (one null),
//!   an `int[20]`, and a `float[10]`.

use mpart_ir::heap::{ArrayData, Heap};
use mpart_ir::marshal::{SelfSizerRegistry, OBJECT_HEADER_SIZE, REF_SIZE, STRING_HEADER_SIZE};
use mpart_ir::types::{ClassTable, ElemType};
use mpart_ir::{IrError, Value};

/// The four Table 1 objects, materialized on one heap.
#[derive(Debug)]
pub struct Table1Fixtures {
    /// Class table declaring `Int100`, `AppBase`, `AppComp`.
    pub classes: ClassTable,
    /// The heap holding the fixtures.
    pub heap: Heap,
    /// `Int100 (w/ wrapper)`.
    pub int100_wrapped: Value,
    /// `Int100 (w/o wrapper)` — the bare array.
    pub int100_bare: Value,
    /// `AppBase`.
    pub app_base: Value,
    /// `AppComp`.
    pub app_comp: Value,
}

impl Table1Fixtures {
    /// Builds the fixture population.
    ///
    /// # Errors
    ///
    /// Propagates heap errors (cannot fail for the fixed layout).
    pub fn build() -> Result<Self, IrError> {
        use mpart_ir::types::{ClassDecl, FieldDecl, FieldType};
        let mut classes = ClassTable::new();
        let int100 = classes.declare(ClassDecl::new(
            "Int100",
            vec![FieldDecl { name: "data".into(), ty: FieldType::Ref }],
        ))?;
        let app_base = classes.declare(ClassDecl::new(
            "AppBase",
            vec![
                FieldDecl { name: "a".into(), ty: FieldType::Int },
                FieldDecl { name: "b".into(), ty: FieldType::Int },
                FieldDecl { name: "c".into(), ty: FieldType::Int },
                FieldDecl { name: "d".into(), ty: FieldType::Str },
            ],
        ))?;
        let app_comp = classes.declare(ClassDecl::new(
            "AppComp",
            vec![
                FieldDecl { name: "s1".into(), ty: FieldType::Str },
                FieldDecl { name: "s2".into(), ty: FieldType::Str },
                FieldDecl { name: "ab1".into(), ty: FieldType::Ref },
                FieldDecl { name: "ab2".into(), ty: FieldType::Ref },
                FieldDecl { name: "ia".into(), ty: FieldType::Ref },
                FieldDecl { name: "fa".into(), ty: FieldType::Ref },
            ],
        ))?;

        let mut heap = Heap::new();
        // Int100 with wrapper.
        let arr = heap.alloc_array_from(ArrayData::Int((0..100).collect()));
        let wrapped = heap.alloc_object(&classes, int100);
        let int100_decl = classes.decl(int100);
        heap.set_field(wrapped, int100_decl.field("data").expect("data"), Value::Ref(arr))?;
        // Bare Int100.
        let bare = heap.alloc_array_from(ArrayData::Int((0..100).rev().collect()));
        // AppBase { a = 0, b = 2, c = 1202, d = "rrr" }.
        let base = heap.alloc_object(&classes, app_base);
        let base_decl = classes.decl(app_base);
        heap.set_field(base, base_decl.field("a").expect("a"), Value::Int(0))?;
        heap.set_field(base, base_decl.field("b").expect("b"), Value::Int(2))?;
        heap.set_field(base, base_decl.field("c").expect("c"), Value::Int(1202))?;
        heap.set_field(base, base_decl.field("d").expect("d"), Value::str("rrr"))?;
        // AppComp.
        let inner_base = heap.alloc_object(&classes, app_base);
        heap.set_field(inner_base, base_decl.field("d").expect("d"), Value::str("rrr"))?;
        let ia = heap.alloc_array(ElemType::Int, 20);
        let fa = heap.alloc_array(ElemType::Float, 10);
        let comp = heap.alloc_object(&classes, app_comp);
        let comp_decl = classes.decl(app_comp);
        heap.set_field(comp, comp_decl.field("s1").expect("s1"), Value::str("aa"))?;
        heap.set_field(comp, comp_decl.field("s2").expect("s2"), Value::str("This is a string!"))?;
        heap.set_field(comp, comp_decl.field("ab1").expect("ab1"), Value::Ref(inner_base))?;
        heap.set_field(comp, comp_decl.field("ab2").expect("ab2"), Value::Null)?;
        heap.set_field(comp, comp_decl.field("ia").expect("ia"), Value::Ref(ia))?;
        heap.set_field(comp, comp_decl.field("fa").expect("fa"), Value::Ref(fa))?;

        Ok(Table1Fixtures {
            classes,
            heap,
            int100_wrapped: Value::Ref(wrapped),
            int100_bare: Value::Ref(bare),
            app_base: Value::Ref(base),
            app_comp: Value::Ref(comp),
        })
    }

    /// Self-describing `sizeOf` methods for the wrapper classes — the
    /// Appendix B `SelfSizedObject` implementations. The bare array has
    /// none (`n/a` in the paper's table).
    pub fn sizers(&self) -> SelfSizerRegistry {
        let mut reg = SelfSizerRegistry::new();
        let classes = self.classes.clone();
        reg.register("Int100", move |heap, obj| {
            let class = classes.id("Int100").expect("Int100");
            let data = heap
                .field(obj, classes.decl(class).field("data").expect("data"))?
                .as_ref("data")?;
            Ok(OBJECT_HEADER_SIZE + REF_SIZE + 8 * heap.array_len(data)?)
        });
        let classes = self.classes.clone();
        reg.register("AppBase", move |heap, obj| {
            let class = classes.id("AppBase").expect("AppBase");
            let d = heap.field(obj, classes.decl(class).field("d").expect("d"))?;
            let dlen = match d {
                Value::Str(s) => s.len(),
                _ => 0,
            };
            // 16 bytes of primitives + string, as in the paper's sizeOf.
            Ok(OBJECT_HEADER_SIZE + 24 + STRING_HEADER_SIZE + dlen)
        });
        let classes = self.classes.clone();
        reg.register("AppComp", move |heap, obj| {
            let class = classes.id("AppComp").expect("AppComp");
            let decl = classes.decl(class);
            let get_str_len = |name: &str| -> Result<usize, IrError> {
                match heap.field(obj, decl.field(name).expect(name))? {
                    Value::Str(s) => Ok(s.len()),
                    _ => Ok(0),
                }
            };
            let s1 = get_str_len("s1")?;
            let s2 = get_str_len("s2")?;
            let ia = heap.field(obj, decl.field("ia").expect("ia"))?.as_ref("ia")?;
            let fa = heap.field(obj, decl.field("fa").expect("fa"))?.as_ref("fa")?;
            // Inner AppBase sized via its own method, as AppComp.sizeOf
            // calls JECho.getSize(ab1) in the paper.
            let inner = OBJECT_HEADER_SIZE + 24 + STRING_HEADER_SIZE + 3;
            Ok(s1
                + s2
                + 2 * STRING_HEADER_SIZE
                + inner
                + 2 * OBJECT_HEADER_SIZE
                + heap.array_len(ia)? * 8
                + heap.array_len(fa)? * 8)
        });
        reg
    }

    /// `(label, value, has_self_sizer)` rows in the paper's order.
    pub fn rows(&self) -> [(&'static str, &Value, bool); 4] {
        [
            ("Int100 (w/ wrapper)", &self.int100_wrapped, true),
            ("Int100 (w/o wrapper)", &self.int100_bare, false),
            ("AppBase", &self.app_base, true),
            ("AppComp", &self.app_comp, true),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpart_ir::marshal::{calculated_size, serialized_size};

    #[test]
    fn fixtures_build_and_size_sensibly() {
        let fx = Table1Fixtures::build().unwrap();
        // Wrapped vs bare Int100 differ only by the wrapper object.
        let wrapped = serialized_size(&fx.heap, std::slice::from_ref(&fx.int100_wrapped)).unwrap();
        let bare = serialized_size(&fx.heap, std::slice::from_ref(&fx.int100_bare)).unwrap();
        assert!(wrapped > bare);
        assert!(bare >= 800, "100 ints: {bare}");
        // AppComp is richer than AppBase.
        let base = serialized_size(&fx.heap, std::slice::from_ref(&fx.app_base)).unwrap();
        let comp = serialized_size(&fx.heap, std::slice::from_ref(&fx.app_comp)).unwrap();
        assert!(comp > base * 2, "{comp} vs {base}");
    }

    #[test]
    fn self_sizers_close_to_generic_walk() {
        let fx = Table1Fixtures::build().unwrap();
        let sizers = fx.sizers();
        for (label, value, has) in fx.rows() {
            if !has {
                continue;
            }
            let fast = sizers.size_of(&fx.heap, &fx.classes, value).unwrap();
            let generic = calculated_size(&fx.heap, std::slice::from_ref(value)).unwrap();
            let ratio = fast as f64 / generic as f64;
            assert!((0.5..2.0).contains(&ratio), "{label}: fast {fast} vs generic {generic}");
        }
    }
}
