//! # mpart-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation section:
//!
//! | target | regenerates |
//! |---|---|
//! | `table1`  | object serialization vs. size-calculation costs |
//! | `table2`  | wireless image streaming fps |
//! | `table3`  | heterogeneous-platform processing times |
//! | `table4`  | perturbation-load grid |
//! | `figure7` | consumer-side AProb sweep |
//! | `figure8` | consumer-side PLen sweep |
//! | `overheads` | §5.3 PSE counts, generated-class sizes, adaptation costs |
//!
//! Criterion microbenches (`benches/`) cover the sizing strategies, remote
//! continuation marshalling, and min-cut reconfiguration.

//! Every binary accepts `--json <path>` to additionally write its tables
//! as a machine-readable `BENCH_*.json` report (see [`report`]).

pub mod fixtures;
pub mod report;
pub mod table;

pub use fixtures::Table1Fixtures;
pub use report::Report;
