//! Extension experiment (§7 future work, implemented): interprocedural
//! Unit Graph expansion. A handler whose heavy stages hide inside helper
//! methods can only be split *around* the helpers when invocations are
//! opaque (the paper's stated limitation); after inlining, the split
//! lands *inside* them.

use mpart_apps::inlining::run_inlining_experiment;
use mpart_bench::table::{arg_usize, f2, Table};
use mpart_bench::Report;

fn main() {
    let messages = arg_usize("messages", 150);
    let mut table = Table::new(
        "Extension: interprocedural UG expansion (exec-time model)",
        &["Handler form", "PSEs", "avg ms"],
    );
    let opaque = run_inlining_experiment(false, messages).expect("opaque");
    let expanded = run_inlining_experiment(true, messages).expect("expanded");
    table.row(vec![
        "opaque invocations (paper's scope)".into(),
        opaque.pses.to_string(),
        f2(opaque.avg_ms),
    ]);
    table.row(vec![
        "inlined (interior split edges)".into(),
        expanded.pses.to_string(),
        f2(expanded.avg_ms),
    ]);
    table.note(
        "six equal-cost grind steps: opaque boundaries allow at best a 2/4 \
         split across the heavy helper; expansion reaches the 3/3 balance",
    );
    table.print();

    let mut report = Report::new("extension_inlining");
    report.param_u64("messages", messages as u64).add_table(&table);
    report.finish();
}
