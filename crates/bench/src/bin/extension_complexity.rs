//! Extension experiment (beyond the paper's tables): adaptation to
//! *signal complexity*. §1 motivates that "processing loads change
//! dynamically ... because of changes in the complexities of signals
//! (e.g., the amounts of 'interesting' vs 'uninteresting' data currently
//! captured)" — this harness makes that concrete with a
//! detection-dependent pipeline whose cost profile reshapes with bursty
//! traffic (quadratic correlation over detections).
//!
//! Sweeps the long-run fraction of quiet messages; bursts alternate in
//! seeded phases of 10–30 messages.

use mpart_apps::sensor::{run_complexity_experiment, SensorVersion};
use mpart_bench::table::{arg_u64, arg_usize, f2, Table};
use mpart_bench::Report;

fn main() {
    let messages = arg_usize("messages", 150);
    let seed = arg_u64("seed", 23);
    let quiet_fractions = [0.1, 0.3, 0.5, 0.7, 0.9];

    let mut headers: Vec<String> = vec!["Implementation".into()];
    headers.extend(quiet_fractions.iter().map(|q| format!("quiet={q}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut table = Table::new(
        "Extension: signal-complexity bursts (avg ms; detection-dependent pipeline)",
        &header_refs,
    );
    for version in SensorVersion::ALL {
        let mut cells = vec![version.label().to_string()];
        for &q in &quiet_fractions {
            let stats = run_complexity_experiment(version, messages, q, seed).expect("cell");
            cells.push(f2(stats.avg_ms));
        }
        table.row(cells);
    }
    table.note(
        "active bursts shift the optimal split past the quadratic correlation \
         stage; Method Partitioning re-splits per phase while fixed versions \
         are tuned for one regime",
    );
    table.print();

    let mut report = Report::new("extension_complexity");
    report.param_u64("messages", messages as u64).param_u64("seed", seed).add_table(&table);
    report.finish();
}
