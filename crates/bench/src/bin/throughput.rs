//! Throughput-scale benchmark: sessions × batch-size sweep over the
//! simulated wire.
//!
//! Each cell opens N concurrent handler sessions, builds every handler
//! through a fresh shared [`AnalysisCache`] (so the static analysis — UG
//! construction, path enumeration, liveness, ConvexCut, min-cut — is paid
//! once and shared N−1 times), and drives M messages per session through
//! the supervised sim wire with envelope batching at the given K. The
//! timed region deliberately *includes* handler construction: amortizing
//! the analysis across sessions is exactly the speedup the cache exists
//! to buy, and the sweep's `speedup vs 1 session` column makes it
//! visible.
//!
//! The handler under test is a *branchy* synthetic pipeline: one message
//! walks a single path (a few dozen statements), but static analysis
//! enumerates up to `EnumLimits::max_paths` control-flow paths through
//! the diamond ladder — the regime where per-session re-analysis
//! dominates a session's lifetime cost and the cache pays off.
//!
//! Wall-clock time measures real CPU work (this is a single-machine
//! harness; the virtual-time pipeline inside each session is unrelated to
//! the throughput measured here).
//!
//! `--tcp` swaps the simulated wire for **real loopback sockets**: each
//! session is a [`TcpReceiver`] on an ephemeral port and a supervised
//! [`Supervisor`] sender with envelope batching at the same K, both wire
//! halves built from one cached analysis
//! ([`TcpReceiver::bind_with_handler`]). Same sweep, same exactly-once
//! assertion — the cells then measure framing, checksums, and kernel
//! round-trips instead of the virtual-time pipeline.
//!
//! Knobs: `--messages <M>` per session, `--depth <D>` diamond branches,
//! `--tcp` (real sockets), `--smoke` (tiny sweep for CI), `--json <path>`
//! for the machine-readable `BENCH_throughput.json`.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mpart::profile::TriggerPolicy;
use mpart::PartitionedHandler;
use mpart_analysis::{AnalysisCache, DEFAULT_CACHE_CAPACITY};
use mpart_bench::table::{arg_usize, f2, Table};
use mpart_bench::Report;
use mpart_cost::DataSizeModel;
use mpart_ir::interp::BuiltinRegistry;
use mpart_ir::parse::parse_program;
use mpart_ir::{Program, Value};
use mpart_jecho::{RetryPolicy, SimConfig, SimSession, Supervisor, TcpReceiver};
use mpart_simnet::{FaultPlan, Host, Link, SimTime};

/// A handler with `depth` sequential diamond branches ahead of the
/// delivery call. One execution follows one path; path enumeration
/// during analysis explores up to `2^depth` of them (capped by
/// `EnumLimits`), so analysis cost dwarfs per-message cost.
fn synthetic_source(depth: usize) -> String {
    let mut s = String::from("fn churn(x) {\n    t = x\n");
    for i in 0..depth {
        writeln!(s, "    b{i} = t - {i}").unwrap();
        writeln!(s, "    if b{i} == 0 goto skip{i}").unwrap();
        writeln!(s, "    t = t + {}", i + 1).unwrap();
        writeln!(s, "skip{i}:").unwrap();
    }
    s.push_str("    native sink(t)\n    return t\n}\n");
    s
}

fn receiver_builtins() -> BuiltinRegistry {
    let mut b = BuiltinRegistry::new();
    b.register_native("sink", 1, |_, _| Ok(Value::Null));
    b
}

struct Cell {
    sessions: usize,
    batch: usize,
    elapsed_ms: f64,
    msgs_per_sec: f64,
    cache_hits: u64,
    cache_misses: u64,
    envelope_batches: u64,
    batched_events: u64,
}

/// One sweep cell: N sessions sharing a fresh cache, M messages each,
/// batch size K.
fn run_cell(program: &Arc<Program>, sessions: usize, batch: usize, messages: usize) -> Cell {
    let cache = AnalysisCache::new(DEFAULT_CACHE_CAPACITY);
    let start = Instant::now();
    let mut delivered = 0u64;
    let mut envelope_batches = 0u64;
    let mut batched_events = 0u64;
    for s in 0..sessions {
        // The cache is the whole point: session 0 misses and computes,
        // sessions 1..N share the Arc'd analysis.
        let handler = PartitionedHandler::analyze_cached(
            Arc::clone(program),
            "churn",
            Arc::new(DataSizeModel::new()),
            &cache,
        )
        .expect("analysis");
        // A benign fault plan engages the supervised (framed) wire so
        // envelope batching is actually exercised; nothing is dropped.
        let config = SimConfig::new(
            Host::new("producer", 1_000_000.0),
            Link::new("lan", SimTime::from_millis(1), 1_000_000.0)
                .with_fault_plan(FaultPlan::new(s as u64)),
            Host::new("consumer", 1_000_000.0),
            TriggerPolicy::Never,
        )
        .with_batching(batch, SimTime::from_millis(1_000));
        let mut session = SimSession::adaptive_with_handler(
            Arc::clone(program),
            handler,
            BuiltinRegistry::new(),
            receiver_builtins(),
            config,
        )
        .expect("session");
        session.run(messages, |seq, _| Ok(vec![Value::Int(seq as i64)])).expect("deliver");
        session.drain(100).expect("drain");
        delivered += session.applied_results().len() as u64;
        envelope_batches += session.envelope_batches();
        batched_events += session.batched_events();
    }
    let elapsed = start.elapsed();
    assert_eq!(delivered, (sessions * messages) as u64, "every message applied exactly once");
    Cell {
        sessions,
        batch,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        msgs_per_sec: delivered as f64 / elapsed.as_secs_f64(),
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        envelope_batches,
        batched_events,
    }
}

/// One `--tcp` sweep cell: N sequential sessions, each a real
/// loopback-socket pair (receiver thread + supervised sender) with
/// envelope batching at K, all handlers built through one shared cache.
fn run_cell_tcp(program: &Arc<Program>, sessions: usize, batch: usize, messages: usize) -> Cell {
    let cache = AnalysisCache::new(DEFAULT_CACHE_CAPACITY);
    let start = Instant::now();
    let mut delivered = 0u64;
    let mut envelope_batches = 0u64;
    let mut batched_events = 0u64;
    for _ in 0..sessions {
        let handler = PartitionedHandler::analyze_cached(
            Arc::clone(program),
            "churn",
            Arc::new(DataSizeModel::new()),
            &cache,
        )
        .expect("analysis");
        let receiver = TcpReceiver::bind_with_handler(
            Arc::clone(program),
            Arc::clone(&handler),
            receiver_builtins(),
            TriggerPolicy::Never,
        )
        .expect("bind");
        let mut supervisor = Supervisor::new(
            Arc::clone(program),
            Arc::clone(&handler),
            BuiltinRegistry::new(),
            receiver.port(),
            RetryPolicy::default(),
        )
        .with_batching(batch, Duration::from_millis(50));
        for seq in 0..messages {
            supervisor.publish(move |_| Ok(vec![Value::Int(seq as i64)])).expect("publish");
        }
        supervisor.shutdown(Duration::from_secs(30)).expect("drain");
        let snap = handler.obs().registry().snapshot();
        envelope_batches += snap.counter_sum("envelope_batches_total");
        batched_events += snap.counter_sum("batched_events_total");
        delivered += receiver.join().expect("join");
    }
    let elapsed = start.elapsed();
    assert_eq!(delivered, (sessions * messages) as u64, "every message applied exactly once");
    Cell {
        sessions,
        batch,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        msgs_per_sec: delivered as f64 / elapsed.as_secs_f64(),
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        envelope_batches,
        batched_events,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let tcp = std::env::args().any(|a| a == "--tcp");
    let messages = arg_usize("messages", if smoke { 8 } else { 32 });
    let depth = arg_usize("depth", 14);
    let session_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let batch_sizes: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 16] };

    let program = Arc::new(parse_program(&synthetic_source(depth)).expect("synthetic program"));

    let mut table = Table::new(
        if tcp {
            "Throughput sweep: sessions x batch size (branchy handler, loopback TCP wire)"
        } else {
            "Throughput sweep: sessions x batch size (branchy handler, supervised sim wire)"
        },
        &[
            "sessions",
            "batch K",
            "elapsed (ms)",
            "msgs/sec",
            "speedup vs 1 session",
            "cache hits",
            "cache misses",
            "batches",
            "batched events",
        ],
    );

    let mut cells: Vec<Cell> = Vec::new();
    for &batch in batch_sizes {
        for &sessions in session_counts {
            cells.push(if tcp {
                run_cell_tcp(&program, sessions, batch, messages)
            } else {
                run_cell(&program, sessions, batch, messages)
            });
        }
    }

    for cell in &cells {
        let baseline = cells
            .iter()
            .find(|c| c.batch == cell.batch && c.sessions == 1)
            .expect("the sweep always includes the 1-session baseline");
        table.row(vec![
            cell.sessions.to_string(),
            cell.batch.to_string(),
            f2(cell.elapsed_ms),
            f2(cell.msgs_per_sec),
            f2(cell.msgs_per_sec / baseline.msgs_per_sec),
            cell.cache_hits.to_string(),
            cell.cache_misses.to_string(),
            cell.envelope_batches.to_string(),
            cell.batched_events.to_string(),
        ]);
    }
    table.note(
        "timed region includes handler construction: N sessions pay one \
         analysis (1 miss, N-1 cache hits), so multi-session throughput \
         amortizes the static-analysis cost",
    );
    table.print();

    let mut report = Report::new("throughput");
    report
        .param_u64("messages_per_session", messages as u64)
        .param_u64("depth", depth as u64)
        .param_u64("smoke", u64::from(smoke))
        .param_u64("tcp", u64::from(tcp))
        .add_table(&table);
    report.finish();
}
