//! Cost-model auto-selection benchmark: a workload shifting from
//! comms-bound to compute-bound, served by three cells.
//!
//! The handler decodes a frame (4× inflation: the *intermediate* is the
//! biggest thing in flight, like image decompression) and then grinds on
//! the decoded data in two equal stages. Phase 1 ships large frames with
//! trivial grind rounds — communication dominates, so the best plan splits
//! at the entry edge and ships the *compressed* frame. Phase 2 ships tiny
//! frames with heavy grind rounds — computation dominates, so the best
//! plan splits between the grind stages and balances work across
//! modulator and demodulator.
//!
//! No fixed model gets both answers right: [`DataSizeModel`] always
//! minimizes shipped bytes (phase 2 leaves the demodulator doing all the
//! work), [`ExecTimeModel`] always balances work (phase 1 ships the 4×
//! inflated intermediate). The third cell starts from the data-size model
//! and lets the session's [`mpart::reconfig::ModelSelector`] switch when the regime
//! changes, re-pricing the PSE set through the analysis cache as a second
//! entry (no re-analysis).
//!
//! Each delivery is scored in *work-unit equivalents*:
//! `wire_bytes × work_per_byte + max(mod_work, demod_work)` — transfer
//! cost on the link plus the busier host's compute, the same trade the
//! selector itself watches. The run asserts the auto cell beats both
//! fixed baselines on the combined workload.
//!
//! Knobs: `--messages <M>` per phase, `--smoke` (short phases for CI),
//! `--json <path>` for the machine-readable `BENCH_modelswitch.json`.

use std::sync::Arc;

use mpart::profile::TriggerPolicy;
use mpart::reconfig::ModelSelectorConfig;
use mpart::session::{SessionConfig, SessionManager};
use mpart_bench::table::{arg_usize, f2, Table};
use mpart_bench::Report;
use mpart_cost::{CostModel, DataSizeModel, ExecTimeModel};
use mpart_ir::interp::BuiltinRegistry;
use mpart_ir::parse::parse_program;
use mpart_ir::types::ElemType;
use mpart_ir::{IrError, Program, Value};

/// Work units one wire byte costs — the link calibration shared by the
/// scoring formula and the auto cell's selector.
const WORK_PER_BYTE: f64 = 0.05;

/// Compressed frame size during the comms-bound phase.
const BIG_FRAME: usize = 12_000;
/// Compressed frame size during the compute-bound phase.
const SMALL_FRAME: usize = 64;
/// Grind rounds during the compute-bound phase (phase 1 uses 0).
const HEAVY_ROUNDS: i64 = 100;

const SRC: &str = r#"
    class Frame { n: int, rounds: int, buff: ref }

    fn show(event) {
        ok = event instanceof Frame
        if ok == 0 goto skip
        f = (Frame) event
        m = f.n
        r = f.rounds
        big = call decode(f, m)
        d1 = call grind1(big, r)
        d2 = call grind2(d1, r)
        native display(big)
        return d2
    skip:
        return 0
    }
"#;

fn arg_int(args: &[Value], idx: usize) -> i64 {
    match args.get(idx) {
        Some(Value::Int(v)) => *v,
        _ => 0,
    }
}

/// The handler's builtins, with explicit work-unit prices. The compute
/// stages are *pure* (they may run on either side of the cut): `decode`
/// inflates the frame 4× (work grows with the compressed size) and the
/// two `grind` stages each charge `32 × rounds`. Only `display` is
/// native — a stop node pinned to the receiver. Both sides register the
/// same set.
fn builtins() -> BuiltinRegistry {
    let mut b = BuiltinRegistry::new();
    b.register_pure(
        "decode",
        |_, args| 16 + arg_int(args, 1).max(0) as u64 / 64,
        |heap, args| {
            let inflated = (arg_int(args, 1).max(0) as usize) * 4;
            Ok(Value::Ref(heap.alloc_array(ElemType::Byte, inflated)))
        },
    );
    for stage in ["grind1", "grind2"] {
        b.register_pure(
            stage,
            |_, args| 32 * arg_int(args, 1).max(0) as u64,
            |_, args| Ok(Value::Int(arg_int(args, 1))),
        );
    }
    b.register_native("display", 4, |_, _| Ok(Value::Null));
    b
}

type EventFn =
    Box<dyn FnOnce(&mut mpart_ir::interp::ExecCtx) -> Result<Vec<Value>, IrError> + Send>;

fn frame_event(program: Arc<Program>, bytes: usize, rounds: i64) -> EventFn {
    Box::new(move |ctx| {
        let classes = &program.classes;
        let class = classes.id("Frame").expect("Frame class");
        let decl = classes.decl(class);
        let f = ctx.heap.alloc_object(classes, class);
        let b = ctx.heap.alloc_array(ElemType::Byte, bytes);
        ctx.heap.set_field(f, decl.field("n").unwrap(), Value::Int(bytes as i64))?;
        ctx.heap.set_field(f, decl.field("rounds").unwrap(), Value::Int(rounds))?;
        ctx.heap.set_field(f, decl.field("buff").unwrap(), Value::Ref(b))?;
        Ok(vec![Value::Ref(f)])
    })
}

#[derive(Clone, Copy)]
enum Mode {
    FixedData,
    FixedExec,
    Auto,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::FixedData => "fixed data-size",
            Mode::FixedExec => "fixed exec-time",
            Mode::Auto => "auto (selector)",
        }
    }
}

struct Cell {
    mode: Mode,
    phase_cost: [f64; 2],
    wire_bytes: [u64; 2],
    switches: u64,
    final_model: String,
    second_entry_misses: u64,
}

impl Cell {
    fn total(&self) -> f64 {
        self.phase_cost[0] + self.phase_cost[1]
    }
}

/// Drives one session through both phases and scores every delivery.
fn run_cell(program: &Arc<Program>, mode: Mode, messages: usize) -> Cell {
    // Every cell re-selects its *plan* at the same rate; only the auto
    // cell may also re-select its pricing model.
    let mut config = SessionConfig::default().with_workers(1).with_trigger(TriggerPolicy::Rate(8));
    if let Mode::Auto = mode {
        config = config
            .with_auto_model(ModelSelectorConfig::default().with_work_per_byte(WORK_PER_BYTE));
    }
    let model: Arc<dyn CostModel> = match mode {
        // The auto cell deploys with the data-size model and must *earn*
        // the switch from feedback.
        Mode::FixedData | Mode::Auto => Arc::new(DataSizeModel::new()),
        Mode::FixedExec => Arc::new(ExecTimeModel::new()),
    };
    let mut mgr = SessionManager::new(config);
    let id = mgr
        .open_session(Arc::clone(program), "show", model, builtins(), builtins())
        .expect("analysis");

    let mut cell = Cell {
        mode,
        phase_cost: [0.0; 2],
        wire_bytes: [0; 2],
        switches: 0,
        final_model: String::new(),
        second_entry_misses: 0,
    };
    for phase in 0..2 {
        let (bytes, rounds) = if phase == 0 { (BIG_FRAME, 0) } else { (SMALL_FRAME, HEAVY_ROUNDS) };
        for _ in 0..messages {
            let out =
                mgr.deliver(id, frame_event(Arc::clone(program), bytes, rounds)).expect("deliver");
            cell.phase_cost[phase] +=
                out.wire_bytes as f64 * WORK_PER_BYTE + out.mod_work.max(out.demod_work) as f64;
            cell.wire_bytes[phase] += out.wire_bytes as u64;
        }
    }
    let handler = mgr.handler(id).expect("session");
    cell.switches = handler.obs().registry().snapshot().counter_sum("model_switch_total");
    cell.final_model = handler.model().name().to_string();
    cell.second_entry_misses = mgr.cache().second_entry_misses();
    mgr.shutdown();
    cell
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let messages = arg_usize("messages", if smoke { 40 } else { 120 });

    let program = Arc::new(parse_program(SRC).expect("bench program"));

    let mut table = Table::new(
        "Model auto-selection: shifting workload (phase 1 comms-bound, phase 2 compute-bound)",
        &[
            "cell",
            "phase1 cost/msg",
            "phase2 cost/msg",
            "total cost",
            "phase1 wire KB",
            "phase2 wire KB",
            "switches",
            "final model",
            "repriced entries",
        ],
    );

    let cells: Vec<Cell> = [Mode::FixedData, Mode::FixedExec, Mode::Auto]
        .into_iter()
        .map(|mode| run_cell(&program, mode, messages))
        .collect();

    for cell in &cells {
        table.row(vec![
            cell.mode.name().to_string(),
            f2(cell.phase_cost[0] / messages as f64),
            f2(cell.phase_cost[1] / messages as f64),
            f2(cell.total()),
            f2(cell.wire_bytes[0] as f64 / 1024.0),
            f2(cell.wire_bytes[1] as f64 / 1024.0),
            cell.switches.to_string(),
            cell.final_model.clone(),
            cell.second_entry_misses.to_string(),
        ]);
    }
    table.note(
        "cost = wire_bytes x work_per_byte + max(mod_work, demod_work) per \
         message; the auto cell re-prices through the analysis cache on \
         each committed switch (second entry, no re-analysis)",
    );
    table.print();

    let auto = &cells[2];
    assert_eq!(auto.final_model, "exec-time", "auto cell converged on the compute-bound model");
    assert!(auto.switches >= 1, "auto cell committed at least one switch");
    for fixed in &cells[..2] {
        assert!(
            auto.total() < fixed.total(),
            "auto ({:.1}) beats {} ({:.1}) on the shifting workload",
            auto.total(),
            fixed.mode.name(),
            fixed.total(),
        );
    }
    println!(
        "auto beats fixed data-size by {:.1}% and fixed exec-time by {:.1}%",
        100.0 * (1.0 - auto.total() / cells[0].total()),
        100.0 * (1.0 - auto.total() / cells[1].total()),
    );

    let mut report = Report::new("modelswitch");
    report
        .param_u64("messages_per_phase", messages as u64)
        .param_u64("smoke", u64::from(smoke))
        .param_u64("auto_switches", auto.switches)
        .param_u64("auto_beats_both_baselines", 1)
        .add_table(&table);
    report.finish();
}
