//! Interpreted vs compiled execution-engine sweep (`BENCH_interp.json`).
//!
//! Drives the full modulator → continuation → demodulator envelope over
//! three IR-resident fixtures whose heavy work lives in IR loops (not in
//! Rust builtins), so the per-envelope latency difference isolates the
//! engine dispatch cost the register-bytecode VM removes:
//!
//! * `image` — a nested 2×2 pixel-downsample loop over an int frame;
//! * `sensor` — a 3-tap FIR + energy accumulation loop over a signal;
//! * `inlining` — `grind` loops reached through nested IR `call` frames.
//!
//! Both engines run the identical late plan (split at the last edges, so
//! the loops execute on the modulator side), and the harness asserts the
//! engines agree on total work units before reporting any timing — a
//! wrong-but-fast engine fails the run. See DESIGN.md §14 for the
//! two-engine contract and EXPERIMENTS.md for the schema.

use std::sync::Arc;
use std::time::Instant;

use mpart::session::EngineChoice;
use mpart::PartitionedHandler;
use mpart_bench::table::{arg_usize, f2, Table};
use mpart_bench::Report;
use mpart_cost::{CostModel, ExecTimeModel};
use mpart_ir::interp::{BuiltinRegistry, ExecCtx};
use mpart_ir::parse::parse_program;
use mpart_ir::types::ElemType;
use mpart_ir::{IrError, Program, Value};

const IMAGE_SRC: &str = r#"
class Frame { side: int, buff: ref }

fn push(event) {
    ok = event instanceof Frame
    if ok == 0 goto skip
    f = (Frame) event
    side = f.side
    src = f.buff
    half = side / 2
    hh = half * half
    out = new int[hh]
    y = 0
outer:
    if y >= half goto done
    x = 0
inner:
    if x >= half goto next_row
    sy = y * 2
    sx = x * 2
    base = sy * side
    i0 = base + sx
    v0 = src[i0]
    i1 = i0 + 1
    v1 = src[i1]
    r2 = base + side
    i2 = r2 + sx
    v2 = src[i2]
    i3 = i2 + 1
    v3 = src[i3]
    s01 = v0 + v1
    s23 = v2 + v3
    s = s01 + s23
    avg = s / 4
    oi = y * half
    oi = oi + x
    out[oi] = avg
    x = x + 1
    goto inner
next_row:
    y = y + 1
    goto outer
done:
    native sink(out)
    return 1
skip:
    return 0
}
"#;

const SENSOR_SRC: &str = r#"
class Signal { n: int, samples: ref }

fn process(event) {
    ok = event instanceof Signal
    if ok == 0 goto skip
    s = (Signal) event
    n = s.n
    xs = s.samples
    energy = 0
    i = 2
head:
    if i >= n goto done
    a = xs[i]
    j1 = i - 1
    b = xs[j1]
    j2 = i - 2
    c = xs[j2]
    ab = a + b
    fir = ab + c
    fir = fir / 3
    sq = fir * fir
    energy = energy + sq
    i = i + 1
    goto head
done:
    native report(energy)
    return 1
skip:
    return 0
}
"#;

const INLINING_SRC: &str = r#"
fn grind(x, rounds) {
    acc = x
    i = 0
g:
    if i >= rounds goto gd
    acc = acc * 3
    acc = acc + 7
    i = i + 1
    goto g
gd:
    return acc
}

fn work(event, rounds) {
    a = call grind(event, rounds)
    b = call grind(a, rounds)
    c = call grind(b, rounds)
    native submit(c)
    return c
}
"#;

/// One benchmark scenario: a handler program plus an event builder.
struct Fixture {
    name: &'static str,
    program: Arc<Program>,
    func: &'static str,
    builtins: BuiltinRegistry,
    event: Box<dyn Fn(&Program, &mut ExecCtx, u64) -> Result<Vec<Value>, IrError>>,
}

fn sink_builtins(names: &[&'static str]) -> BuiltinRegistry {
    let mut b = BuiltinRegistry::new();
    for name in names {
        b.register_native(*name, 1, |_, _| Ok(Value::Null));
    }
    b
}

fn fixtures(smoke: bool) -> Vec<Fixture> {
    let side: i64 = if smoke { 16 } else { 64 };
    let samples: i64 = if smoke { 64 } else { 2048 };
    let rounds: i64 = if smoke { 16 } else { 256 };

    vec![
        Fixture {
            name: "image",
            program: Arc::new(parse_program(IMAGE_SRC).expect("image fixture parses")),
            func: "push",
            builtins: sink_builtins(&["sink"]),
            event: Box::new(move |program, ctx, seq| {
                let classes = &program.classes;
                let class = classes.id("Frame").expect("Frame");
                let decl = classes.decl(class);
                let f = ctx.heap.alloc_object(classes, class);
                let buff = ctx.heap.alloc_array(ElemType::Int, (side * side) as usize);
                for i in 0..side * side {
                    ctx.heap.array_set(buff, i, Value::Int((i * 31 + seq as i64) & 0xFF))?;
                }
                ctx.heap.set_field(f, decl.field("side").expect("side"), Value::Int(side))?;
                ctx.heap.set_field(f, decl.field("buff").expect("buff"), Value::Ref(buff))?;
                Ok(vec![Value::Ref(f)])
            }),
        },
        Fixture {
            name: "sensor",
            program: Arc::new(parse_program(SENSOR_SRC).expect("sensor fixture parses")),
            func: "process",
            builtins: sink_builtins(&["report"]),
            event: Box::new(move |program, ctx, seq| {
                let classes = &program.classes;
                let class = classes.id("Signal").expect("Signal");
                let decl = classes.decl(class);
                let s = ctx.heap.alloc_object(classes, class);
                let xs = ctx.heap.alloc_array(ElemType::Int, samples as usize);
                for i in 0..samples {
                    ctx.heap.array_set(xs, i, Value::Int((i * 7 + seq as i64 * 13) % 100))?;
                }
                ctx.heap.set_field(s, decl.field("n").expect("n"), Value::Int(samples))?;
                ctx.heap.set_field(s, decl.field("samples").expect("samples"), Value::Ref(xs))?;
                Ok(vec![Value::Ref(s)])
            }),
        },
        Fixture {
            name: "inlining",
            program: Arc::new(parse_program(INLINING_SRC).expect("inlining fixture parses")),
            func: "work",
            builtins: sink_builtins(&["submit"]),
            event: Box::new(move |_, _, seq| {
                Ok(vec![Value::Int(seq as i64 % 9 + 1), Value::Int(rounds)])
            }),
        },
    ]
}

/// Per-engine measurement: average envelope latency and the work/step
/// totals used for the cross-engine agreement check.
struct Measured {
    us_per_envelope: f64,
    total_work: u64,
    total_steps: u64,
}

fn run_fixture(fixture: &Fixture, iters: usize, choice: EngineChoice) -> Measured {
    let model: Arc<dyn CostModel> = Arc::new(ExecTimeModel::new());
    let handler = PartitionedHandler::analyze(Arc::clone(&fixture.program), fixture.func, model)
        .expect("fixture analyzes");
    // Process-on-sender plan: split at the last edge of every path so the
    // heavy loops execute through the engine under test.
    let late: Vec<usize> = handler
        .analysis()
        .pses()
        .iter()
        .enumerate()
        .filter(|(_, p)| !p.edge.is_entry())
        .map(|(i, _)| i)
        .collect();
    handler.install_plan(&late);
    handler.plan().validate_cut(handler.analysis()).expect("late plan is a cut");
    let installed = handler.select_engine(choice);
    assert_eq!(installed, choice.as_str(), "explicit choices install verbatim");
    let modulator = handler.modulator();
    let demodulator = handler.demodulator();

    let mut total_work = 0u64;
    let mut total_steps = 0u64;
    let start = Instant::now();
    for seq in 0..iters {
        let mut sender = ExecCtx::with_builtins(&fixture.program, fixture.builtins.clone());
        sender.trace_digests = false;
        let args = (fixture.event)(&fixture.program, &mut sender, seq as u64).expect("event");
        let run = modulator.handle(&mut sender, args).expect("modulate");
        let mut receiver = ExecCtx::with_builtins(&fixture.program, fixture.builtins.clone());
        receiver.trace_digests = false;
        let out = demodulator.handle(&mut receiver, &run.message).expect("demodulate");
        std::hint::black_box(out.ret);
        total_work += sender.work + receiver.work;
        total_steps += sender.steps + receiver.steps;
    }
    let us_per_envelope = start.elapsed().as_secs_f64() * 1e6 / iters as f64;
    Measured { us_per_envelope, total_work, total_steps }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = arg_usize("iters", if smoke { 20 } else { 400 });

    let mut table = Table::new(
        "Execution engines: per-envelope latency, interpreted vs compiled",
        &["Fixture", "interp (us/envelope)", "compiled (us/envelope)", "speedup", "work/envelope"],
    );

    let mut best_speedup = 0.0f64;
    for fixture in fixtures(smoke) {
        let interp = run_fixture(&fixture, iters, EngineChoice::Interp);
        let compiled = run_fixture(&fixture, iters, EngineChoice::Compiled);
        // The two-engine contract: identical work and step accounting, or
        // the timing numbers are meaningless.
        assert_eq!(
            interp.total_work, compiled.total_work,
            "{}: engines disagree on work units",
            fixture.name
        );
        assert_eq!(
            interp.total_steps, compiled.total_steps,
            "{}: engines disagree on step counts",
            fixture.name
        );
        let speedup = interp.us_per_envelope / compiled.us_per_envelope.max(1e-9);
        best_speedup = best_speedup.max(speedup);
        table.row(vec![
            fixture.name.into(),
            f2(interp.us_per_envelope),
            f2(compiled.us_per_envelope),
            f2(speedup),
            (interp.total_work / iters as u64).to_string(),
        ]);
    }
    table.note(
        "late plan (loops on the modulator side); work/step equality asserted \
         across engines before timing is reported",
    );
    table.print();

    if !smoke {
        assert!(
            best_speedup >= 2.0,
            "expected >= 2.0x on at least one fixture, best was {best_speedup:.2}x"
        );
    }

    let mut report = Report::new("interp");
    report.param_u64("iters", iters as u64).param_u64("smoke", u64::from(smoke)).add_table(&table);
    report.finish();
}
