//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **sizing strategy** — self-describing `sizeOf` vs. generic walk
//!    profiling (connects Table 1's microcosts to end-to-end fps);
//! 2. **feedback trigger** — rate vs. diff vs. frozen plans (§2.5);
//! 3. **profiling sampling period** — probe every message vs. sampled;
//! 4. **EWMA smoothing** — adaptation speed vs. stability.
//!
//! All runs use the Mixed image workload, where adaptation matters most.

use mpart::profile::TriggerPolicy;
use mpart_apps::image::{run_image_experiment_with, ImageOptions, ImageScenario, ImageVersion};
use mpart_bench::table::{arg_u64, arg_usize, f2, Table};
use mpart_bench::Report;

fn run(options: ImageOptions, frames: usize, seed: u64) -> (f64, u64) {
    let stats = run_image_experiment_with(
        ImageVersion::MethodPartitioning,
        ImageScenario::Mixed,
        frames,
        seed,
        options,
    )
    .expect("ablation run");
    (stats.fps, stats.plan_installs)
}

fn main() {
    let frames = arg_usize("frames", 300);
    let seed = arg_u64("seed", 7);

    let mut sizing = Table::new(
        "Ablation 1: profiling sizing strategy (Mixed image workload)",
        &["Sizing", "fps", "plan installs"],
    );
    for (label, self_sizers) in [("self-describing sizeOf", true), ("generic walk", false)] {
        let (fps, installs) = run(ImageOptions { self_sizers, ..Default::default() }, frames, seed);
        sizing.row(vec![label.into(), f2(fps), installs.to_string()]);
    }
    sizing.note("the generic walk pays O(object graph) probe cost on every frame");
    sizing.print();

    let mut triggers =
        Table::new("Ablation 2: feedback trigger policy", &["Trigger", "fps", "plan installs"]);
    for (label, trigger) in [
        ("rate: every message", TriggerPolicy::Rate(1)),
        ("rate: every 5", TriggerPolicy::Rate(5)),
        ("rate: every 20", TriggerPolicy::Rate(20)),
        ("diff: 10% change", TriggerPolicy::Diff(0.1)),
        ("diff: 50% change", TriggerPolicy::Diff(0.5)),
        ("never (frozen initial plan)", TriggerPolicy::Never),
    ] {
        let (fps, installs) = run(ImageOptions { trigger, ..Default::default() }, frames, seed);
        triggers.row(vec![label.into(), f2(fps), installs.to_string()]);
    }
    triggers.note("diff triggers reconfigure only on real shifts; rate triggers track faster");
    triggers.print();

    let mut sampling = Table::new(
        "Ablation 3: profiling sampling period",
        &["Profile every Nth message", "fps", "plan installs"],
    );
    for period in [1u64, 2, 4, 8, 16] {
        let (fps, installs) =
            run(ImageOptions { sample_period: period, ..Default::default() }, frames, seed);
        sampling.row(vec![period.to_string(), f2(fps), installs.to_string()]);
    }
    sampling.note("sampling trades probe cost against adaptation lag (§2.5)");
    sampling.print();

    let mut alpha =
        Table::new("Ablation 4: EWMA smoothing factor", &["alpha", "fps", "plan installs"]);
    for a in [0.1, 0.3, 0.5, 0.8, 1.0] {
        let (fps, installs) =
            run(ImageOptions { ewma_alpha: a, ..Default::default() }, frames, seed);
        alpha.row(vec![format!("{a}"), f2(fps), installs.to_string()]);
    }
    alpha.note("low alpha damps noise but lags scenario flips; 1.0 trusts the last sample");
    alpha.print();

    let mut report = Report::new("ablation");
    report
        .param_u64("frames", frames as u64)
        .param_u64("seed", seed)
        .add_table(&sizing)
        .add_table(&triggers)
        .add_table(&sampling)
        .add_table(&alpha);
    report.finish();
}
