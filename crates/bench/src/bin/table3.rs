//! Regenerates **Table 3**: the sensor application on heterogeneous
//! platforms without perturbation (average message processing time, ms).
//!
//! Run with `--messages N` (default 150), `--seed S`, and `--json <path>`
//! for the machine-readable report.

use mpart_apps::sensor::{run_sensor_experiment, SensorSetup, SensorVersion};
use mpart_bench::table::{arg_u64, arg_usize, f2, Table};
use mpart_bench::Report;

fn main() {
    let messages = arg_usize("messages", 150);
    let seed = arg_u64("seed", 7);

    let mut table = Table::new(
        "Table 3: heterogeneous platforms (avg message processing time, ms)",
        &["Implementation", "PC->Sun", "Sun->PC"],
    );
    for version in SensorVersion::ALL {
        let a = run_sensor_experiment(version, &SensorSetup::pc_to_sun(messages, seed))
            .expect("pc->sun");
        let b = run_sensor_experiment(version, &SensorSetup::sun_to_pc(messages, seed))
            .expect("sun->pc");
        table.row(vec![version.label().to_string(), f2(a.avg_ms), f2(b.avg_ms)]);
    }
    table.note(
        "paper: Consumer 352.10 / 108.92; Producer 143.93 / 139.00; \
         Divided 250.19 / 83.59; Method Partitioning 109.34 / 74.67",
    );
    table.print();

    let mut report = Report::new("table3");
    report.param_u64("messages", messages as u64).param_u64("seed", seed).add_table(&table);
    report.finish();
}
