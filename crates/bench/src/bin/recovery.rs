//! Crash-safe recovery and load-shedding benchmark.
//!
//! **Phase A — restart latency.** An incumbent [`SessionManager`] runs a
//! fleet of sessions over four distinct handler functions with a
//! file-backed [`SessionJournal`], reconfiguring under load so the
//! journal accumulates plan commits and ack watermarks. The process then
//! "crashes" (the manager is shut down) and we time two ways of coming
//! back:
//!
//! - **cold open** — a fresh manager with a fresh analysis cache pays
//!   one static analysis per distinct handler function;
//! - **warm restart** — journal replay plus
//!   [`SessionManager::with_shared_cache`] +
//!   [`SessionManager::restore_session`]: every open is a cache hit
//!   (*zero* re-analysis, asserted on the cache-miss gauge), the
//!   journaled active sets are reinstalled, and sequence numbering
//!   resumes past the journaled ack watermark.
//!
//! **Phase B — goodput under shedding.** One slow session behind bounded
//! ingress queues of increasing capacity takes a burst of profiling
//! deliveries. Small queues shed aggressively (oldest-first — the
//! freshest sample wins) but every submitted delivery is accounted for:
//! `completed + shed == submitted`, the ingress half of the exactly-once
//! story.
//!
//! Knobs: `--sessions <S>`, `--messages <M>` per session, `--burst <B>`
//! for phase B, `--smoke` (short run for CI), `--json <path>` for the
//! machine-readable `BENCH_recovery.json`.

use std::sync::Arc;
use std::time::Instant;

use mpart::journal::SessionJournal;
use mpart::profile::TriggerPolicy;
use mpart::session::{DeliveryClass, SessionConfig, SessionManager};
use mpart_bench::table::{arg_usize, f2, Table};
use mpart_bench::Report;
use mpart_cost::DataSizeModel;
use mpart_ir::interp::BuiltinRegistry;
use mpart_ir::parse::parse_program;
use mpart_ir::types::ElemType;
use mpart_ir::{IrError, Program, Value};

/// Four distinct handler functions over one shared shape: each is a
/// separate static-analysis cache entry, so a cold open pays four
/// analyses while a warm restart pays none.
const SRC: &str = r#"
    class Job { n: int, buff: ref }

    fn shrink(j) {
        out = new Job
        out.n = 16
        b = new byte[16]
        out.buff = b
        return out
    }

    fn ingest0(event) {
        ok = event instanceof Job
        if ok == 0 goto skip
        j = (Job) event
        small = call shrink(j)
        native archive(small)
        return 1
    skip:
        return 0
    }

    fn ingest1(event) {
        ok = event instanceof Job
        if ok == 0 goto skip
        j = (Job) event
        small = call shrink(j)
        native archive(small)
        return 2
    skip:
        return 0
    }

    fn ingest2(event) {
        ok = event instanceof Job
        if ok == 0 goto skip
        j = (Job) event
        small = call shrink(j)
        native archive(small)
        return 3
    skip:
        return 0
    }

    fn ingest3(event) {
        ok = event instanceof Job
        if ok == 0 goto skip
        j = (Job) event
        small = call shrink(j)
        native archive(small)
        return 4
    skip:
        return 0
    }
"#;

const FUNCS: [&str; 4] = ["ingest0", "ingest1", "ingest2", "ingest3"];

fn receiver_builtins() -> BuiltinRegistry {
    let mut b = BuiltinRegistry::new();
    b.register_native("archive", 3, |_, _| Ok(Value::Null));
    b
}

type EventFn =
    Box<dyn FnOnce(&mut mpart_ir::interp::ExecCtx) -> Result<Vec<Value>, IrError> + Send>;

fn job_event(program: Arc<Program>, bytes: usize) -> EventFn {
    Box::new(move |ctx| {
        let classes = &program.classes;
        let class = classes.id("Job").expect("Job class");
        let decl = classes.decl(class);
        let j = ctx.heap.alloc_object(classes, class);
        let b = ctx.heap.alloc_array(ElemType::Byte, bytes);
        ctx.heap.set_field(j, decl.field("n").unwrap(), Value::Int(bytes as i64))?;
        ctx.heap.set_field(j, decl.field("buff").unwrap(), Value::Ref(b))?;
        Ok(vec![Value::Ref(j)])
    })
}

/// A slow event for the shedding phase: the generator runs on the worker
/// thread, so the sleep models a handler that drains slower than the
/// burst arrives.
fn slow_event(program: Arc<Program>, millis: u64) -> EventFn {
    Box::new(move |ctx| {
        std::thread::sleep(std::time::Duration::from_millis(millis));
        job_event(program, 64)(ctx)
    })
}

struct PhaseA {
    cold_micros: u128,
    cold_misses: u64,
    warm_micros: u128,
    warm_misses: u64,
    journal_records: usize,
    recovered: u64,
    resumed_seq: u64,
    watermark: u64,
}

/// Runs the incumbent fleet, crashes it, and times cold open vs warm
/// journal-replay restart over the same analysis cache.
fn run_phase_a(
    program: &Arc<Program>,
    sessions: usize,
    messages: usize,
    journal_path: &str,
) -> PhaseA {
    let journal = Arc::new(SessionJournal::at_path(journal_path).expect("journal"));
    let config = SessionConfig::default()
        .with_workers(2)
        .with_trigger(TriggerPolicy::Rate(4))
        .with_journal(Arc::clone(&journal));

    let mut incumbent = SessionManager::new(config.clone());
    let ids: Vec<usize> = (0..sessions)
        .map(|s| {
            incumbent
                .open_session(
                    Arc::clone(program),
                    FUNCS[s % FUNCS.len()],
                    Arc::new(DataSizeModel::new()),
                    BuiltinRegistry::new(),
                    receiver_builtins(),
                )
                .expect("analysis")
        })
        .collect();
    // Big payloads push the profiler into reconfiguring, so the journal
    // carries real plan commits, not just opens and acks.
    for round in 0..messages {
        for &id in &ids {
            let bytes = if round % 2 == 0 { 50_000 } else { 64 };
            incumbent.deliver(id, job_event(Arc::clone(program), bytes)).expect("deliver");
        }
    }
    let cache = Arc::clone(incumbent.cache());
    incumbent.shutdown();

    // Cold open: fresh manager, fresh cache — one analysis per distinct
    // handler function.
    let cold_config = SessionConfig::default().with_workers(2).with_trigger(TriggerPolicy::Rate(4));
    let cold_start = Instant::now();
    let mut cold = SessionManager::new(cold_config);
    for s in 0..sessions {
        cold.open_session(
            Arc::clone(program),
            FUNCS[s % FUNCS.len()],
            Arc::new(DataSizeModel::new()),
            BuiltinRegistry::new(),
            receiver_builtins(),
        )
        .expect("analysis");
    }
    let cold_micros = cold_start.elapsed().as_micros();
    let cold_misses = cold.cache().misses();
    cold.shutdown();

    // Warm restart: replay the journal into a manager sharing the
    // incumbent's cache — zero re-analysis.
    let journal = Arc::new(SessionJournal::at_path(journal_path).expect("reopen journal"));
    let misses_before = cache.misses();
    let warm_start = Instant::now();
    let snapshots = journal.replay().expect("replay");
    let journal_records = journal.len();
    let mut warm = SessionManager::with_shared_cache(config, Arc::clone(&cache));
    for snapshot in snapshots.values() {
        warm.restore_session(
            Arc::clone(program),
            &snapshot.func,
            Arc::new(DataSizeModel::new()),
            BuiltinRegistry::new(),
            receiver_builtins(),
            snapshot,
        )
        .expect("restore");
    }
    let warm_micros = warm_start.elapsed().as_micros();
    let warm_misses = cache.misses() - misses_before;
    let recovered = warm.recovered();
    let watermark = snapshots[&0].watermark;
    // Sequence numbering resumes past the journaled ack watermark: no
    // acked message is re-delivered, none is skipped.
    let out = warm.deliver(0, job_event(Arc::clone(program), 64)).expect("resume");
    let resumed_seq = out.seq;
    warm.shutdown();

    PhaseA {
        cold_micros,
        cold_misses,
        warm_micros,
        warm_misses,
        journal_records,
        recovered,
        resumed_seq,
        watermark,
    }
}

struct ShedCell {
    capacity: usize,
    submitted: usize,
    completed: usize,
    shed: u64,
    elapsed_ms: f64,
}

/// Bursts profiling deliveries at one slow session behind a bounded
/// ingress queue and accounts for every one of them.
fn run_shed_cell(program: &Arc<Program>, capacity: usize, burst: usize, slow_ms: u64) -> ShedCell {
    let config = SessionConfig::default()
        .with_workers(1)
        .with_trigger(TriggerPolicy::Never)
        .with_ingress_capacity(capacity);
    let mut mgr = SessionManager::new(config);
    let id = mgr
        .open_session(
            Arc::clone(program),
            "ingest0",
            Arc::new(DataSizeModel::new()),
            BuiltinRegistry::new(),
            receiver_builtins(),
        )
        .expect("analysis");
    // Warm-up delivery: the session's Open job may still occupy the
    // bounded queue (at capacity 1 it rejects even this), so retry until
    // the worker has drained it and the burst below contends only with
    // profiling traffic.
    loop {
        match mgr.deliver(id, job_event(Arc::clone(program), 64)) {
            Ok(_) => break,
            Err(IrError::Overloaded(_)) => std::thread::sleep(std::time::Duration::from_millis(1)),
            Err(e) => panic!("warm-up delivery failed: {e}"),
        }
    }
    // Rejected warm-up attempts count as sheds too; measure the burst only.
    let sheds_before = mgr.sheds();

    let start = Instant::now();
    let pendings: Vec<_> = (0..burst)
        .map(|_| {
            mgr.submit_classed(
                id,
                DeliveryClass::Profiling,
                slow_event(Arc::clone(program), slow_ms),
            )
            .expect("profiling submits displace, they are not rejected")
        })
        .collect();
    let mut completed = 0usize;
    let mut overloaded = 0usize;
    for pending in pendings {
        match pending.wait() {
            Ok(_) => completed += 1,
            Err(IrError::Overloaded(_)) => overloaded += 1,
            Err(e) => panic!("unexpected delivery error: {e}"),
        }
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    let shed = mgr.sheds() - sheds_before;
    assert_eq!(
        completed + overloaded,
        burst,
        "every submitted delivery resolves exactly once (completed or shed)"
    );
    assert_eq!(shed as usize, overloaded, "every shed has exactly one Overloaded waiter");
    mgr.shutdown();
    ShedCell { capacity, submitted: burst, completed, shed, elapsed_ms }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sessions = arg_usize("sessions", if smoke { 4 } else { 16 });
    let messages = arg_usize("messages", if smoke { 6 } else { 24 });
    let burst = arg_usize("burst", if smoke { 24 } else { 64 });
    let slow_ms = 2;

    let program = Arc::new(parse_program(SRC).expect("bench program"));
    let journal_path =
        std::env::temp_dir().join(format!("mpart-bench-recovery-{}.journal", std::process::id()));
    let journal_path = journal_path.to_str().expect("utf-8 temp path").to_string();

    let a = run_phase_a(&program, sessions, messages, &journal_path);
    let _ = std::fs::remove_file(&journal_path);

    assert_eq!(a.warm_misses, 0, "warm restart performs zero static re-analysis");
    assert_eq!(a.recovered as usize, sessions, "every journaled session was recovered");
    assert_eq!(
        a.resumed_seq,
        a.watermark + 1,
        "sequence numbering resumes past the journaled watermark"
    );

    let mut table_a = Table::new(
        "Crash-safe restart: cold open vs journal replay over a warm analysis cache",
        &["path", "sessions", "analysis misses", "open time us", "journal records"],
    );
    table_a.row(vec![
        "cold open (fresh cache)".to_string(),
        sessions.to_string(),
        a.cold_misses.to_string(),
        a.cold_micros.to_string(),
        "-".to_string(),
    ]);
    table_a.row(vec![
        "warm restart (journal replay)".to_string(),
        sessions.to_string(),
        a.warm_misses.to_string(),
        a.warm_micros.to_string(),
        a.journal_records.to_string(),
    ]);
    table_a.note(
        "warm restart re-opens every journaled session through the shared \
         analysis cache (zero misses) and resumes sequence numbering past \
         the journaled ack watermark",
    );
    table_a.print();

    let mut table_b = Table::new(
        "Load shedding: profiling burst at one slow session behind a bounded ingress queue",
        &["queue capacity", "submitted", "completed", "shed", "elapsed ms"],
    );
    let cells: Vec<ShedCell> =
        [1, 4, 16].into_iter().map(|cap| run_shed_cell(&program, cap, burst, slow_ms)).collect();
    for cell in &cells {
        table_b.row(vec![
            cell.capacity.to_string(),
            cell.submitted.to_string(),
            cell.completed.to_string(),
            cell.shed.to_string(),
            f2(cell.elapsed_ms),
        ]);
    }
    table_b.note(
        "profiling deliveries are shed oldest-first under backpressure; \
         completed + shed == submitted in every cell (ingress exactly-once)",
    );
    table_b.print();

    assert!(
        cells[0].shed >= cells[2].shed,
        "the tightest queue sheds at least as much as the widest"
    );
    assert!(cells[2].completed >= cells[0].completed, "wider queues complete at least as much");

    println!(
        "warm restart: {} sessions in {} us ({} analysis misses) vs cold open {} us ({} misses)",
        sessions, a.warm_micros, a.warm_misses, a.cold_micros, a.cold_misses,
    );

    let mut report = Report::new("recovery");
    report
        .param_u64("sessions", sessions as u64)
        .param_u64("messages_per_session", messages as u64)
        .param_u64("burst", burst as u64)
        .param_u64("smoke", u64::from(smoke))
        .param_u64("cold_open_micros", a.cold_micros as u64)
        .param_u64("warm_restart_micros", a.warm_micros as u64)
        .param_u64("warm_restart_misses", a.warm_misses)
        .param_u64("journal_records", a.journal_records as u64)
        .add_table(&table_a)
        .add_table(&table_b);
    report.finish();
}
