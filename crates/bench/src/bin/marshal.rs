//! Zero-copy frame-encode sweep: payload size × batch factor
//! (`BENCH_marshal.json`).
//!
//! Measures per-envelope encode latency of the legacy single-buffer
//! encoder ([`Frame::encode_via_copy`]: render body into a fresh buffer,
//! copy it again behind the header, bitwise CRC) against the scatter-
//! gather encoder ([`Frame::try_encode_frame`]: inline small fields,
//! borrow large payloads by refcount, table-driven CRC) over the payload
//! sizes where the paper's self-sized continuations live — tiny sensor
//! events up to quarter-megabyte image frames — and over batch factors 1,
//! 4, and 16 (one gathered frame per batch).
//!
//! The run *asserts* the PR's acceptance criteria before writing the
//! report: at payloads of 64 KiB and above the zero-copy encoder must cut
//! per-envelope encode time by at least 30%, and at 256 B and below it
//! must not regress by more than 5%. Byte-identity of the two encoders is
//! also re-checked on every configuration (a fast-but-wrong encoder fails
//! the run). See WIRE.md for the wire layout and EXPERIMENTS.md for the
//! schema of the emitted JSON.

use std::hint::black_box;
use std::time::Instant;

use mpart::continuation::ContinuationMessage;
use mpart::profile::PseSample;
use mpart_bench::table::{arg_usize, f2, Table};
use mpart_bench::Report;
use mpart_ir::marshal::Marshalled;
use mpart_jecho::envelope::{Frame, ModulatedEvent, ZERO_COPY_MIN_BYTES};

/// One synthetic modulated event with a deterministic payload of `size`
/// bytes (patterned, so corruption of the comparison would be caught).
fn event(seq: u64, size: usize) -> ModulatedEvent {
    let payload: Vec<u8> = (0..size).map(|i| ((i * 131 + 17) % 251) as u8).collect();
    ModulatedEvent {
        seq,
        continuation: ContinuationMessage {
            pse: 3,
            payload: Marshalled::from_bytes(payload),
            mod_work: 97,
            epoch: 2,
        },
        samples: vec![PseSample {
            pse: 3,
            mod_work: 97,
            payload_bytes: Some(size as u64),
            was_split: true,
        }],
    }
}

fn frame_for(size: usize, batch: usize) -> Frame {
    if batch == 1 {
        Frame::Event { event: event(1, size), t_mod_nanos: 1_000 }
    } else {
        Frame::Batch {
            events: (0..batch as u64).map(|i| (event(i + 1, size), 1_000 + i)).collect(),
        }
    }
}

/// Minimum per-call nanoseconds of `f` over `samples` samples of `reps`
/// calls each (min-of-samples suppresses scheduler noise; reps amortize
/// the timer).
fn time_ns(samples: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    f(); // warm-up
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        let ns = t.elapsed().as_secs_f64() * 1e9 / reps as f64;
        best = best.min(ns);
    }
    best
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let samples = arg_usize("samples", if smoke { 5 } else { 9 });

    let payload_sizes: &[usize] =
        if smoke { &[256, 65_536] } else { &[64, 256, 4_096, 65_536, 262_144] };
    let batches: &[usize] = if smoke { &[1, 4] } else { &[1, 4, 16] };

    let mut table = Table::new(
        "Per-envelope encode latency: copy encoder vs zero-copy scatter-gather",
        &[
            "payload_B",
            "batch",
            "mode",
            "copy_ns_env",
            "zerocopy_ns_env",
            "speedup",
            "segments",
            "borrowed_B_env",
        ],
    );

    let mut failures = Vec::new();
    for &size in payload_sizes {
        for &batch in batches {
            let frame = frame_for(size, batch);
            // Byte-identity first: timing a wrong encoder is meaningless.
            let legacy_bytes = frame.encode_via_copy();
            let enc = frame.encode_frame();
            assert_eq!(enc.to_vec(), legacy_bytes, "encoders disagree at {size}B x{batch}");

            // Scale reps so each sample runs ~2-10ms regardless of size.
            let reps = (2_000_000 / legacy_bytes.len().max(200)).clamp(8, 4096);
            let copy_ns = time_ns(samples, reps, || {
                black_box(frame.encode_via_copy());
            }) / batch as f64;
            let zc_ns = time_ns(samples, reps, || {
                black_box(frame.encode_frame());
            }) / batch as f64;
            let speedup = copy_ns / zc_ns;
            let mode = if size >= ZERO_COPY_MIN_BYTES { "borrow" } else { "inline" };
            table.row(vec![
                size.to_string(),
                batch.to_string(),
                mode.to_string(),
                f2(copy_ns),
                f2(zc_ns),
                f2(speedup),
                enc.segments().len().to_string(),
                (enc.borrowed_payload_bytes() / batch as u64).to_string(),
            ]);

            // Acceptance gates (ISSUE 8): >=30% encode-time cut at >=64 KiB,
            // <5% regression at <=256 B.
            if size >= 65_536 && speedup < 1.30 {
                failures.push(format!(
                    "{size}B x{batch}: speedup {speedup:.2} < 1.30 required at >=64 KiB"
                ));
            }
            if size <= 256 && zc_ns > copy_ns * 1.05 {
                failures.push(format!(
                    "{size}B x{batch}: zero-copy {zc_ns:.0}ns regresses >5% over copy {copy_ns:.0}ns"
                ));
            }
        }
    }
    table.note(
        "ns/envelope = min-of-samples over reps; copy = legacy single-buffer encoder \
         (bitwise CRC), zerocopy = scatter-gather EncodedFrame (table CRC, payload \
         borrowed at >=1 KiB); batch>1 encodes one Frame::Batch",
    );
    table.print();

    assert!(failures.is_empty(), "acceptance gates failed:\n  {}", failures.join("\n  "));

    let mut report = Report::new("marshal");
    report
        .param_u64("samples", samples as u64)
        .param_u64("smoke", u64::from(smoke))
        .param_u64("zero_copy_min_bytes", ZERO_COPY_MIN_BYTES as u64)
        .add_table(&table);
    report.finish();
}
