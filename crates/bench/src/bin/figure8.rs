//! Regenerates **Figure 8**: impact of consumer-side expected period
//! length (PLen) on the Method Partitioning version.
//!
//! Consumer side: AProb = 0.5, LIndex = 0.8; producer load-free. The
//! paper's claim: Method Partitioning "is relatively stable against
//! changes in perturbation patterns". All four versions are printed for
//! context.

use mpart_apps::sensor::{run_sensor_experiment, HostLoad, SensorSetup, SensorVersion};
use mpart_bench::table::{arg_u64, arg_usize, f2, Table};
use mpart_bench::Report;

fn main() {
    let messages = arg_usize("messages", 150);
    let seed = arg_u64("seed", 33);
    let plens = [125.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0];

    let mut headers: Vec<String> = vec!["Implementation".into()];
    headers.extend(plens.iter().map(|p| format!("PLen={p}ms")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut table = Table::new(
        "Figure 8: consumer-side PLen sweep (AProb=0.5, LIndex=0.8; avg ms)",
        &header_refs,
    );
    for version in SensorVersion::ALL {
        let mut cells = vec![version.label().to_string()];
        for &plen in &plens {
            let mut setup = SensorSetup::intel_cluster(messages, seed);
            setup.consumer_load = HostLoad { aprob: 0.5, plen_ms: plen, lindex: 0.8 };
            let stats = run_sensor_experiment(version, &setup).expect("cell");
            cells.push(f2(stats.avg_ms));
        }
        table.row(cells);
    }
    table.note(
        "expected shape: the Method Partitioning row stays near-constant \
         across period lengths",
    );
    table.print();

    let mut report = Report::new("figure8");
    report.param_u64("messages", messages as u64).param_u64("seed", seed).add_table(&table);
    report.finish();
}
