//! Node-failure failover benchmark: goodput and time-to-recover.
//!
//! A [`Router`] hashes a fleet of sessions across an in-process
//! [`LocalNode`] cluster sharing one journal and analysis cache — the
//! deterministic endpoint, so the numbers measure the failover machinery
//! (journal drain, migration, re-delivery) rather than socket noise.
//! Three cells:
//!
//! - **steady** — no faults; the routed-delivery baseline;
//! - **kill one node** — node 0 crashes halfway through the run. The
//!   first delivery to a session it hosted trips the health gate and
//!   fails over *inline*: the shared journal is drained once and every
//!   affected session restored on a survivor with its ack watermark
//!   intact. That delivery is the **time-to-recover** column;
//! - **kill + rejoin** — the crashed node revives at ¾ of the run and,
//!   after the hysteresis streak of clean heartbeats, its home sessions
//!   migrate back.
//!
//! Asserted invariants (the bench fails loudly, not quietly): migration
//! performs **zero re-analysis** (cache-miss gauge is flat across the
//! failover), numbering stays **exactly-once** (every session ends at
//! `seq == rounds` — nothing re-applied, nothing skipped), and the
//! migration counters account for precisely the sessions the dead node
//! hosted.
//!
//! Knobs: `--nodes <N>`, `--sessions <S>`, `--messages <M>` rounds,
//! `--smoke` (short run for CI), `--json <path>` for the
//! machine-readable `BENCH_failover.json`.

use std::sync::Arc;
use std::time::Instant;

use mpart::journal::SessionJournal;
use mpart::router::{LocalNode, Router, RouterConfig, SessionSpec};
use mpart::session::SessionConfig;
use mpart_analysis::cache::AnalysisCache;
use mpart_bench::table::{arg_usize, f2, Table};
use mpart_bench::Report;
use mpart_cost::DataSizeModel;
use mpart_ir::interp::BuiltinRegistry;
use mpart_ir::parse::parse_program;
use mpart_ir::{Program, Value};

const SRC: &str = r#"
    fn handle(x, scale) {
        a = x * scale
        b = a + 7
        c = b * b
        native emit(c)
        return c
    }
"#;

fn receiver_builtins() -> BuiltinRegistry {
    let mut b = BuiltinRegistry::new();
    b.register_native("emit", 1, |_, _| Ok(Value::Null));
    b
}

fn spec(program: &Arc<Program>) -> SessionSpec {
    SessionSpec {
        program: Arc::clone(program),
        func: "handle".into(),
        model: Arc::new(DataSizeModel::new()),
        sender_builtins: BuiltinRegistry::new(),
        receiver_builtins: receiver_builtins(),
    }
}

struct Cell {
    label: &'static str,
    elapsed_ms: f64,
    goodput: f64,
    failovers: u64,
    migrated: u64,
    recover_micros: Option<u128>,
    failover_misses: u64,
    node0_up: bool,
}

/// One routed run: `messages` rounds across `sessions` sessions on
/// `nodes` nodes, heartbeating every round. `kill` crashes node 0 at the
/// halfway round; `rejoin` revives it at the ¾ round.
fn run_cell(
    label: &'static str,
    program: &Arc<Program>,
    nodes_n: usize,
    sessions: usize,
    messages: usize,
    kill: bool,
    rejoin: bool,
) -> Cell {
    let journal = Arc::new(SessionJournal::in_memory());
    let cache = Arc::new(AnalysisCache::new(64));
    let config = SessionConfig::default().with_journal(Arc::clone(&journal));
    let nodes: Vec<LocalNode> = (0..nodes_n)
        .map(|i| LocalNode::new(format!("node-{i}"), config.clone(), Arc::clone(&cache)))
        .collect();
    let mut router = Router::new(RouterConfig::default(), journal, Arc::clone(&cache));
    for node in &nodes {
        router.add_node(Box::new(node.clone()));
    }
    let gids: Vec<u64> =
        (0..sessions).map(|_| router.open_session(spec(program)).expect("open")).collect();
    let args = vec![Value::Int(21), Value::Int(3)];

    let kill_round = messages / 2;
    let rejoin_round = messages * 3 / 4;
    let mut victims: Vec<u64> = Vec::new();
    let mut recover_micros: Option<u128> = None;
    let mut failover_misses = 0u64;

    let start = Instant::now();
    for round in 0..messages {
        if kill && round == kill_round {
            victims = gids.iter().copied().filter(|g| router.placement(*g) == Some(0)).collect();
            nodes[0].kill();
            failover_misses = cache.misses();
        }
        if rejoin && round == rejoin_round {
            nodes[0].revive();
        }
        for gid in &gids {
            // The first delivery to a session the dead node hosted is
            // the recovery path: health trip + journal drain + migration
            // + re-delivery, timed end to end.
            if recover_micros.is_none() && victims.contains(gid) {
                let t = Instant::now();
                router.deliver(*gid, args.clone()).expect("failover deliver");
                recover_micros = Some(t.elapsed().as_micros());
            } else {
                router.deliver(*gid, args.clone()).expect("deliver");
            }
        }
        router.heartbeat().expect("heartbeat");
    }
    if rejoin {
        // Short smoke runs may end inside the hysteresis window; finish
        // the clean-beat streak so the rejoin migration is part of the
        // cell regardless of the round budget.
        for _ in 0..3 {
            router.heartbeat().expect("rejoin heartbeat");
        }
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    if kill {
        failover_misses = cache.misses() - failover_misses;
    }

    // Exactly-once across the crash: every session ends exactly at
    // `seq == messages + 1` on its final (accounted) delivery below —
    // check via one probe delivery per session.
    for gid in &gids {
        let out = router.deliver(*gid, args.clone()).expect("probe");
        assert_eq!(
            out.seq,
            messages as u64 + 1,
            "{label}: session {gid} numbering survived migration exactly-once"
        );
    }

    let snapshot = router.obs().registry().snapshot();
    Cell {
        label,
        elapsed_ms,
        goodput: (sessions * messages) as f64 / (elapsed_ms / 1e3),
        failovers: snapshot.counter_sum("node_failovers_total"),
        migrated: snapshot.counter_sum("sessions_migrated_total"),
        recover_micros,
        failover_misses,
        node0_up: router.node_is_up(0),
    }
}

struct DrainCell {
    elapsed_ms: f64,
    goodput: f64,
    drained: u32,
    drain_micros: u128,
    drain_misses: u64,
    journal_before: usize,
    journal_after: usize,
    node0_empty: bool,
}

/// The elastic scale-down cell: node 0 is *drained* (not crashed) at the
/// halfway round — every hosted session migrates away restore-only, the
/// journal compacts to the live set, and the node leaves the ring. The
/// drain call itself is timed end to end.
fn run_drain_cell(
    program: &Arc<Program>,
    nodes_n: usize,
    sessions: usize,
    messages: usize,
) -> DrainCell {
    let journal = Arc::new(SessionJournal::in_memory());
    let cache = Arc::new(AnalysisCache::new(64));
    let config = SessionConfig::default().with_journal(Arc::clone(&journal));
    let nodes: Vec<LocalNode> = (0..nodes_n)
        .map(|i| LocalNode::new(format!("node-{i}"), config.clone(), Arc::clone(&cache)))
        .collect();
    let mut router = Router::new(RouterConfig::default(), Arc::clone(&journal), Arc::clone(&cache));
    for node in &nodes {
        router.add_node(Box::new(node.clone()));
    }
    let gids: Vec<u64> =
        (0..sessions).map(|_| router.open_session(spec(program)).expect("open")).collect();
    let args = vec![Value::Int(21), Value::Int(3)];

    let drain_round = messages / 2;
    let mut drained = 0u32;
    let mut drain_micros = 0u128;
    let mut drain_misses = 0u64;
    let mut journal_before = 0usize;
    let mut journal_after = 0usize;

    let start = Instant::now();
    for round in 0..messages {
        if round == drain_round {
            journal_before = journal.len();
            let misses = cache.misses();
            let t = Instant::now();
            drained = router.drain_node(0).expect("drain");
            drain_micros = t.elapsed().as_micros();
            drain_misses = cache.misses() - misses;
            journal_after = journal.len();
        }
        for gid in &gids {
            router.deliver(*gid, args.clone()).expect("deliver");
        }
        router.heartbeat().expect("heartbeat");
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;

    for gid in &gids {
        let out = router.deliver(*gid, args.clone()).expect("probe");
        assert_eq!(
            out.seq,
            messages as u64 + 1,
            "drain: session {gid} numbering survived the drain exactly-once"
        );
    }

    DrainCell {
        elapsed_ms,
        goodput: (sessions * messages) as f64 / (elapsed_ms / 1e3),
        drained,
        drain_micros,
        drain_misses,
        journal_before,
        journal_after,
        node0_empty: nodes[0].sessions() == 0 && !router.node_is_up(0),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let nodes = arg_usize("nodes", 3).max(2);
    let sessions = arg_usize("sessions", if smoke { 6 } else { 24 });
    let messages = arg_usize("messages", if smoke { 8 } else { 40 });

    let program = Arc::new(parse_program(SRC).expect("bench program"));
    let cells = [
        run_cell("steady", &program, nodes, sessions, messages, false, false),
        run_cell("kill one node", &program, nodes, sessions, messages, true, false),
        run_cell("kill + rejoin", &program, nodes, sessions, messages, true, true),
    ];

    let drain = run_drain_cell(&program, nodes, sessions, messages);

    let steady = &cells[0];
    let killed = &cells[1];
    let rejoined = &cells[2];
    let homed = sessions.div_ceil(nodes) as u64; // sessions hashed to node 0
    assert_eq!(steady.failovers, 0, "steady cell sees no failovers");
    assert_eq!(killed.failovers, 1, "one crash, one failover");
    assert_eq!(killed.migrated, homed, "every session the dead node hosted migrated");
    assert_eq!(killed.failover_misses, 0, "failover migration performs zero re-analysis");
    assert_eq!(rejoined.failover_misses, 0, "rejoin migration performs zero re-analysis");
    assert!(!killed.node0_up, "without a revive the dead node stays down");
    assert!(rejoined.node0_up, "the revived node rejoined after its hysteresis streak");
    assert_eq!(rejoined.migrated, 2 * homed, "rejoin migrates the displaced home sessions back");
    assert_eq!(u64::from(drain.drained), homed, "drain moved every session node 0 hosted");
    assert_eq!(drain.drain_misses, 0, "drain migration performs zero re-analysis");
    assert!(drain.node0_empty, "the drained node emptied and left the ring");
    assert!(
        drain.journal_after < drain.journal_before,
        "drain compacted the journal ({} -> {})",
        drain.journal_before,
        drain.journal_after
    );

    let mut table = Table::new(
        "Kill-a-node failover: goodput and time-to-recover on a routed cluster",
        &[
            "cell",
            "nodes",
            "sessions",
            "rounds",
            "elapsed ms",
            "msgs/sec",
            "failovers",
            "migrated",
            "recover us",
            "failover analysis misses",
        ],
    );
    for cell in &cells {
        table.row(vec![
            cell.label.to_string(),
            nodes.to_string(),
            sessions.to_string(),
            messages.to_string(),
            f2(cell.elapsed_ms),
            f2(cell.goodput),
            cell.failovers.to_string(),
            cell.migrated.to_string(),
            cell.recover_micros.map_or("-".to_string(), |us| us.to_string()),
            cell.failover_misses.to_string(),
        ]);
    }
    table.row(vec![
        "drain node 0".to_string(),
        nodes.to_string(),
        sessions.to_string(),
        messages.to_string(),
        f2(drain.elapsed_ms),
        f2(drain.goodput),
        "0".to_string(),
        drain.drained.to_string(),
        drain.drain_micros.to_string(),
        drain.drain_misses.to_string(),
    ]);
    table.note(
        "time-to-recover is the first post-crash delivery to a session the \
         dead node hosted: health trip, one journal drain, migration of \
         every affected session (cache hits only), and the re-delivery; \
         the drain row times Router::drain_node itself (restore-only \
         migration of every hosted session plus journal compaction)",
    );
    table.print();

    println!(
        "kill-one-node: recovered in {} us, {} sessions migrated, 0 re-analyses \
         (steady {:.0} msgs/sec vs killed {:.0} msgs/sec)",
        killed.recover_micros.unwrap_or(0),
        killed.migrated,
        steady.goodput,
        killed.goodput,
    );

    let mut report = Report::new("failover");
    report
        .param_u64("nodes", nodes as u64)
        .param_u64("sessions", sessions as u64)
        .param_u64("messages", messages as u64)
        .param_u64("smoke", u64::from(smoke))
        .param_u64("time_to_recover_micros", killed.recover_micros.unwrap_or(0) as u64)
        .param_u64("sessions_migrated", killed.migrated)
        .param_u64("failover_analysis_misses", killed.failover_misses)
        .param_u64("drained_sessions", u64::from(drain.drained))
        .param_u64("drain_micros", drain.drain_micros as u64)
        .param_u64("drain_analysis_misses", drain.drain_misses)
        .param_u64("journal_records_after_drain", drain.journal_after as u64)
        .add_table(&table);
    report.finish();
}
