//! Transactional reconfiguration benchmark: two-phase install overhead
//! and guard-breach rollback latency (DESIGN.md §16).
//!
//! Three cells drive the same single-worker session through repeated
//! plan switches between two valid cuts:
//!
//! - **unguarded** — prepare + commit with no [`mpart::reconfig::PlanGuard`] armed; the
//!   two-phase machinery alone. The prepare/commit columns are the raw
//!   per-switch control-plane overhead;
//! - **steady guarded** — a guard watches a `--canary <K>` envelope
//!   window after every commit; all deliveries succeed, so every switch
//!   promotes cleanly. Comparing goodput against the unguarded cell
//!   prices the guard's per-envelope observation;
//! - **guard breach** — one switch, then a trap envelope inside the
//!   canary window. The guard sees the error rate breach the threshold
//!   and rolls back *inline*: that delivery is the **time-to-rollback**
//!   column (restore of the retained prior epoch included).
//!
//! Asserted invariants (the bench fails loudly, not quietly): steady
//! cells see **zero rollbacks** and end on the plan they committed; the
//! breach cell rolls back to the exact pre-switch active set, quarantines
//! the breaching cut (an immediate re-prepare is refused), and loses **no
//! envelopes** — sequence numbers stay contiguous through
//! prepare → commit → rollback and the final ack watermark counts every
//! successful delivery on both sides of the breach.
//!
//! Knobs: `--switches <N>`, `--canary <K>`, `--warmup <W>` deliveries
//! between switches, `--smoke` (short run for CI), `--json <path>` for
//! the machine-readable `BENCH_rollback.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mpart::profile::TriggerPolicy;
use mpart::reconfig::GuardConfig;
use mpart::session::{PrepareOutcome, SessionConfig, SessionManager};
use mpart::PartitionedHandler;
use mpart_bench::table::{arg_usize, f2, Table};
use mpart_bench::Report;
use mpart_cost::DataSizeModel;
use mpart_ir::interp::BuiltinRegistry;
use mpart_ir::parse::parse_program;
use mpart_ir::{Program, Value};

/// A linear handler with several splittable edges, so the bench can
/// ping-pong between two distinct valid singleton cuts.
const SRC: &str = r#"
    fn guarded(x) {
        a = x * 3
        b = a + 7
        c = b * 2
        native emit(c)
        return c
    }
"#;

const PREPARE_BUDGET: Duration = Duration::from_secs(2);

fn receiver_builtins() -> BuiltinRegistry {
    let mut b = BuiltinRegistry::new();
    b.register_native("emit", 1, |_, _| Ok(Value::Null));
    b
}

fn open_session(program: &Arc<Program>, guard: Option<GuardConfig>) -> (SessionManager, usize) {
    // Explicit switches only — the trigger never fires on its own, so
    // every epoch in the run is one the bench committed itself.
    let mut config = SessionConfig::default().with_workers(1).with_trigger(TriggerPolicy::Never);
    if let Some(g) = guard {
        config = config.with_guard(g);
    }
    let mut mgr = SessionManager::new(config);
    let id = mgr
        .open_session(
            Arc::clone(program),
            "guarded",
            Arc::new(DataSizeModel::new()),
            BuiltinRegistry::new(),
            receiver_builtins(),
        )
        .expect("analysis");
    (mgr, id)
}

/// All valid singleton cuts of the handler, in PSE order.
fn valid_cuts(handler: &PartitionedHandler) -> Vec<Vec<usize>> {
    let n = handler.analysis().pses().len();
    (0..n).map(|p| vec![p]).filter(|c| handler.validate_candidate(c).is_ok()).collect()
}

fn deliver_ok(mgr: &SessionManager, id: usize, seq: &mut u64) {
    *seq += 1;
    let out = mgr.deliver(id, move |_| Ok(vec![Value::Int(21)])).expect("deliver");
    assert_eq!(out.seq, *seq, "sequence numbering stayed contiguous");
}

struct SteadyCell {
    label: &'static str,
    elapsed_ms: f64,
    goodput: f64,
    switches: usize,
    prepare_micros_per_switch: u64,
    commit_micros_per_switch: u64,
    rollbacks: u64,
    watermark: u64,
}

/// `switches` two-phase switches between alternating cuts, each followed
/// by `warmup` clean deliveries (enough to close a `canary`-envelope
/// watch window when a guard is armed, so every switch promotes).
fn run_steady(
    label: &'static str,
    program: &Arc<Program>,
    guard: Option<GuardConfig>,
    canary: u64,
    switches: usize,
    warmup: usize,
) -> SteadyCell {
    let (mut mgr, id) = open_session(program, guard);
    let handler = Arc::clone(mgr.handler(id).expect("session"));
    let cuts = valid_cuts(&handler);
    assert!(cuts.len() >= 2, "bench handler has at least two valid singleton cuts");

    let rounds = warmup + (canary as usize).max(warmup);
    let mut seq = 0u64;
    let mut prepare_micros = 0u128;
    let mut commit_micros = 0u128;

    let start = Instant::now();
    // Baseline window before the first switch feeds the guard its
    // pre-switch error/latency reference.
    for _ in 0..rounds {
        deliver_ok(&mgr, id, &mut seq);
    }
    for _ in 0..switches {
        let target =
            cuts.iter().find(|c| !handler.plan().active_eq(c)).expect("alternate cut").clone();
        let t = Instant::now();
        let outcome = mgr.prepare_plan(id, &target, PREPARE_BUDGET).expect("prepare");
        prepare_micros += t.elapsed().as_micros();
        assert!(matches!(outcome, PrepareOutcome::Ready), "{label}: prepare accepted the cut");
        let t = Instant::now();
        let epoch = mgr.commit_plan(id, &target).expect("commit");
        commit_micros += t.elapsed().as_micros();
        assert!(epoch > 0, "{label}: commit bumped the epoch");
        // Enough clean deliveries to close the canary window.
        for _ in 0..rounds {
            deliver_ok(&mgr, id, &mut seq);
        }
        assert!(
            handler.plan().active_eq(&target),
            "{label}: a clean canary window promoted the committed plan"
        );
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;

    let rollbacks = handler.obs().registry().snapshot().counter_sum("plan_rollbacks_total");
    let watermark = mgr.close_session(id).expect("close");
    mgr.shutdown();
    assert_eq!(rollbacks, 0, "{label}: no rollback in a breach-free run");
    assert_eq!(watermark, seq, "{label}: every delivery acked — the watermark is contiguous");

    SteadyCell {
        label,
        elapsed_ms,
        goodput: seq as f64 / (elapsed_ms / 1e3),
        switches,
        prepare_micros_per_switch: (prepare_micros / switches as u128) as u64,
        commit_micros_per_switch: (commit_micros / switches as u128) as u64,
        rollbacks,
        watermark,
    }
}

struct BreachCell {
    elapsed_ms: f64,
    goodput: f64,
    prepare_micros: u64,
    commit_micros: u64,
    time_to_rollback_micros: u64,
    rollbacks: u64,
    watermark: u64,
}

/// One switch, one trap inside the canary window: times the inline
/// rollback and checks the transactional invariants end to end.
fn run_breach(program: &Arc<Program>, canary: u64, warmup: usize) -> BreachCell {
    let guard = GuardConfig { canary, breach_pct: 25.0, quarantine_decay: 32 };
    let (mut mgr, id) = open_session(program, Some(guard));
    let handler = Arc::clone(mgr.handler(id).expect("session"));
    let cuts = valid_cuts(&handler);

    let mut seq = 0u64;
    let start = Instant::now();
    for _ in 0..warmup {
        deliver_ok(&mgr, id, &mut seq);
    }
    let before = handler.plan().active();
    let alt = cuts.iter().find(|c| !handler.plan().active_eq(c)).expect("alternate cut").clone();

    let t = Instant::now();
    let outcome = mgr.prepare_plan(id, &alt, PREPARE_BUDGET).expect("prepare");
    let prepare_micros = t.elapsed().as_micros() as u64;
    assert!(matches!(outcome, PrepareOutcome::Ready), "breach: prepare accepted the cut");
    let t = Instant::now();
    mgr.commit_plan(id, &alt).expect("commit");
    let commit_micros = t.elapsed().as_micros() as u64;

    // The trap envelope breaches the guard (error rate jumps from the
    // clean baseline) and the rollback runs inline in this delivery:
    // restore of the retained prior epoch, quarantine of the breaching
    // cut, trace event, counters. The trap still consumes a sequence
    // number — errors are dead-lettered, not lost.
    seq += 1;
    let t = Instant::now();
    let err = mgr.deliver(id, |_| Ok(vec![Value::str("not a number")]));
    let time_to_rollback_micros = t.elapsed().as_micros() as u64;
    assert!(err.is_err(), "breach: the trap envelope surfaced its handler error");

    assert!(
        handler.plan().active_eq(&before),
        "breach: rollback restored the pre-switch plan {before:?}, got {:?}",
        handler.plan().active()
    );
    assert!(
        matches!(mgr.prepare_plan(id, &alt, PREPARE_BUDGET), Ok(PrepareOutcome::Quarantined)),
        "breach: the rolled-back cut is quarantined against an immediate re-prepare"
    );
    // Service continues on the restored plan with contiguous numbering.
    for _ in 0..warmup {
        deliver_ok(&mgr, id, &mut seq);
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;

    let snapshot = handler.obs().registry().snapshot();
    let rollbacks = snapshot.counter_sum("plan_rollbacks_total");
    let watermark = mgr.close_session(id).expect("close");
    mgr.shutdown();
    assert_eq!(rollbacks, 1, "breach: exactly one guard rollback");
    // The trap consumed a sequence number (dead-lettered, not lost), so
    // the final watermark is contiguous through the whole run.
    assert_eq!(watermark, seq, "breach: zero envelope loss across the rollback");

    BreachCell {
        elapsed_ms,
        goodput: seq as f64 / (elapsed_ms / 1e3),
        prepare_micros,
        commit_micros,
        time_to_rollback_micros,
        rollbacks,
        watermark,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let switches = arg_usize("switches", if smoke { 4 } else { 16 });
    let canary = arg_usize("canary", if smoke { 4 } else { 8 }) as u64;
    let warmup = arg_usize("warmup", if smoke { 4 } else { 12 });

    let program = Arc::new(parse_program(SRC).expect("bench program"));
    let guard = GuardConfig { canary, breach_pct: 25.0, quarantine_decay: 32 };
    let unguarded = run_steady("unguarded", &program, None, canary, switches, warmup);
    let steady = run_steady("steady guarded", &program, Some(guard), canary, switches, warmup);
    let breach = run_breach(&program, canary, warmup);

    let mut table = Table::new(
        "Transactional reconfiguration: two-phase overhead and rollback latency",
        &[
            "cell",
            "switches",
            "canary",
            "elapsed ms",
            "msgs/sec",
            "prepare us/switch",
            "commit us/switch",
            "rollback us",
            "rollbacks",
            "watermark",
        ],
    );
    for cell in [&unguarded, &steady] {
        table.row(vec![
            cell.label.to_string(),
            cell.switches.to_string(),
            canary.to_string(),
            f2(cell.elapsed_ms),
            f2(cell.goodput),
            cell.prepare_micros_per_switch.to_string(),
            cell.commit_micros_per_switch.to_string(),
            "-".to_string(),
            cell.rollbacks.to_string(),
            cell.watermark.to_string(),
        ]);
    }
    table.row(vec![
        "guard breach".to_string(),
        "1".to_string(),
        canary.to_string(),
        f2(breach.elapsed_ms),
        f2(breach.goodput),
        breach.prepare_micros.to_string(),
        breach.commit_micros.to_string(),
        breach.time_to_rollback_micros.to_string(),
        breach.rollbacks.to_string(),
        breach.watermark.to_string(),
    ]);
    table.note(
        "rollback us is the trap delivery that breaches the guard, timed \
         end to end: handler error, guard verdict, restore of the retained \
         prior epoch, and quarantine of the breaching cut — all inline; \
         prepare/commit columns are the two-phase control-plane overhead \
         per switch",
    );
    table.print();

    println!(
        "guard breach rolled back in {} us ({} us prepare + {} us commit per switch; \
         steady guarded {:.0} msgs/sec vs unguarded {:.0} msgs/sec)",
        breach.time_to_rollback_micros,
        steady.prepare_micros_per_switch,
        steady.commit_micros_per_switch,
        steady.goodput,
        unguarded.goodput,
    );

    let mut report = Report::new("rollback");
    report
        .param_u64("switches", switches as u64)
        .param_u64("canary", canary)
        .param_u64("warmup", warmup as u64)
        .param_u64("smoke", u64::from(smoke))
        .param_u64("prepare_micros_per_switch", steady.prepare_micros_per_switch)
        .param_u64("commit_micros_per_switch", steady.commit_micros_per_switch)
        .param_u64("time_to_rollback_micros", breach.time_to_rollback_micros)
        .param_u64("rollbacks", breach.rollbacks)
        .param_u64("breach_watermark", breach.watermark)
        .add_table(&table);
    report.finish();
}
