//! Regenerates **Table 4**: the sensor application under perturbation
//! load on the homogeneous Intel cluster (average processing time, ms).
//!
//! Rows are `(producer LIndex)/(consumer LIndex)`; each cell averages
//! `--runs R` (default 5, as in the paper) runs of `--messages N`
//! messages with distinct seeds shared across all four versions.

use mpart_apps::sensor::{run_sensor_experiment, HostLoad, SensorSetup, SensorVersion};
use mpart_bench::table::{arg_u64, arg_usize, f2, Table};
use mpart_bench::Report;

fn main() {
    let messages = arg_usize("messages", 100);
    let runs = arg_usize("runs", 5);
    let base_seed = arg_u64("seed", 21);

    let grid = [(0.0, 0.0), (0.0, 0.6), (0.0, 1.0), (0.6, 0.6), (0.6, 0.0), (1.0, 0.0)];

    let mut table = Table::new(
        "Table 4: Method Partitioning under perturbation load (avg ms, mean of runs)",
        &["(P LIndex)/(C LIndex)", "Consumer", "Producer", "Divided", "Method Partitioning"],
    );
    for (pl, cl) in grid {
        let mut cells = vec![format!("{pl}/{cl}")];
        for version in SensorVersion::ALL {
            let mut total = 0.0;
            for r in 0..runs {
                let mut setup = SensorSetup::intel_cluster(messages, base_seed + r as u64);
                setup.producer_load = HostLoad::constant(pl);
                setup.consumer_load = HostLoad::constant(cl);
                total += run_sensor_experiment(version, &setup).expect("cell").avg_ms;
            }
            cells.push(f2(total / runs as f64));
        }
        table.row(cells);
    }
    table.note(
        "paper rows (Consumer/Producer/Divided/MP): 0/0: 88.44 80.46 58.52 48.45; \
         0/0.6: 146.94 80.26 103.68 54.61; 0/1: 215.20 80.41 148.99 65.26; \
         0.6/0.6: 142.51 149.90 101.13 59.23; 0.6/0: 87.32 154.55 60.13 49.19; \
         1/0: 88.81 243.58 116.47 60.17",
    );
    table.print();

    let mut report = Report::new("table4");
    report
        .param_u64("messages", messages as u64)
        .param_u64("runs", runs as u64)
        .param_u64("seed", base_seed)
        .add_table(&table);
    report.finish();
}
