//! Regenerates **Table 1**: object serialization and size-calculation
//! costs for the Appendix B object population.
//!
//! Columns: serialized size (bytes), serialization cost (µs), generic
//! size-calculation cost (µs), and self-describing `sizeOf` cost (µs).
//! Run with `--iters N` to change the timing sample count and
//! `--json <path>` to also write the machine-readable report.

use mpart_bench::table::{arg_usize, f2, time_us, Table};
use mpart_bench::{Report, Table1Fixtures};
use mpart_ir::marshal::{calculated_size, marshal_values, reflective_size, serialized_size};

fn main() {
    let iters = arg_usize("iters", 200);
    let fx = Table1Fixtures::build().expect("fixtures");
    let sizers = fx.sizers();

    let mut table = Table::new(
        "Table 1: object serialization and size calculation costs",
        &[
            "Class of Objects",
            "Serialized size (B)",
            "Serialization cost (us)",
            "Size calc, reflective (us)",
            "Size calc, direct (us)",
            "Self-desc sizeOf (us)",
        ],
    );

    for (label, value, has_sizer) in fx.rows() {
        let roots = std::slice::from_ref(value);
        let size = serialized_size(&fx.heap, roots).expect("size");
        let ser_us = time_us(iters, || marshal_values(&fx.heap, roots).expect("marshal"));
        let refl_us =
            time_us(iters, || reflective_size(&fx.heap, &fx.classes, roots).expect("reflective"));
        let calc_us = time_us(iters, || calculated_size(&fx.heap, roots).expect("calc"));
        let self_us = if has_sizer {
            f2(time_us(iters, || sizers.size_of(&fx.heap, &fx.classes, value).expect("sizeOf")))
        } else {
            "n/a".to_string()
        };
        table.row(vec![
            label.to_string(),
            size.to_string(),
            f2(ser_us),
            f2(refl_us),
            f2(calc_us),
            self_us,
        ]);
    }
    table.note(
        "paper (µs): Int100 w/ wrapper 64 / 25 / 0.92; w/o 57 / 2.1 / n/a; \
         AppBase 44 / 38 / 0.90; AppComp 189 / 159 / 1.16 — our ints are \
         8 bytes so serialized sizes are ~2x the paper's",
    );
    table.print();

    let mut report = Report::new("table1");
    report.param_u64("iters", iters as u64).add_table(&table);
    report.finish();
}
