//! Regenerates **Table 2**: effects of runtime adaptation in the wireless
//! image-streaming application (display 160×160; values are average
//! frames per second).
//!
//! Run with `--frames N` (default 300), `--seed S`, and `--json <path>`
//! for the machine-readable report.

use mpart_apps::image::{run_image_experiment, ImageScenario, ImageVersion};
use mpart_bench::table::{arg_u64, arg_usize, f2, Table};
use mpart_bench::Report;

fn main() {
    let frames = arg_usize("frames", 300);
    let seed = arg_u64("seed", 7);

    let mut table = Table::new(
        "Table 2: runtime adaptation with Method Partitioning (fps, display 160*160)",
        &["Implementation", "Small Image (80*80)", "Large Image (200*200)", "Mixed"],
    );
    for version in ImageVersion::ALL {
        let mut cells = vec![version.label().to_string()];
        for scenario in ImageScenario::ALL {
            let stats =
                run_image_experiment(version, scenario, frames, seed).expect("image experiment");
            cells.push(f2(stats.fps));
        }
        table.row(cells);
    }
    table.note(
        "paper: Image<Display 29.79 / 7.53 / 12.98; Image>Display 12.06 / 12.11 / 12.19; \
         Method Partitioning 29.72 / 12.07 / 17.65",
    );
    table.print();

    let mut report = Report::new("table2");
    report.param_u64("frames", frames as u64).param_u64("seed", seed).add_table(&table);
    report.finish();
}
