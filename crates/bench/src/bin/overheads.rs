//! Regenerates the **§5.3 overhead discussion**: PSE counts, generated
//! class sizes, and the costs of adaptation actuation (flag switching)
//! and plan re-selection (min-cut).

use std::sync::Arc;

use mpart::codegen::{generated_sizes, modulator_text};
use mpart::reconfig::select_active_set;
use mpart_apps::image::{image_cost_model, image_program};
use mpart_apps::sensor::{sensor_cost_model, sensor_program};
use mpart_bench::table::{arg_usize, f2, time_us, Table};
use mpart_bench::Report;

fn main() {
    let switch_iters = arg_usize("switch-iters", 5000);
    let cut_iters = arg_usize("cut-iters", 2000);
    let image_prog = image_program().expect("image program");
    let image = mpart::PartitionedHandler::analyze(
        Arc::clone(&image_prog),
        "push",
        image_cost_model(&image_prog),
    )
    .expect("image analysis");
    let sensor_prog = sensor_program().expect("sensor program");
    let sensor = mpart::PartitionedHandler::analyze(
        Arc::clone(&sensor_prog),
        "process",
        sensor_cost_model(),
    )
    .expect("sensor analysis");

    let mut table = Table::new(
        "Section 5.3: Method Partitioning overheads",
        &["Quantity", "image handler (push)", "sensor handler (process)"],
    );

    let isz = generated_sizes(&image);
    let ssz = generated_sizes(&sensor);
    table.row(vec!["PSEs".into(), isz.pses.to_string(), ssz.pses.to_string()]);
    table.row(vec![
        "redirect classes total (B)".into(),
        isz.redirect_classes_bytes.to_string(),
        ssz.redirect_classes_bytes.to_string(),
    ]);
    table.row(vec![
        "redirect class avg (B)".into(),
        (isz.redirect_classes_bytes / isz.pses.max(1)).to_string(),
        (ssz.redirect_classes_bytes / ssz.pses.max(1)).to_string(),
    ]);
    table.row(vec![
        "instrumentation per PSE (B)".into(),
        isz.instrumentation_bytes_per_pse.to_string(),
        ssz.instrumentation_bytes_per_pse.to_string(),
    ]);
    table.row(vec![
        "modulator text (B)".into(),
        isz.modulator_bytes.to_string(),
        ssz.modulator_bytes.to_string(),
    ]);

    // Adaptation actuation: installing a plan is a handful of flag writes.
    let image_active: Vec<usize> = image.plan().active();
    let switch_us = time_us(switch_iters, || image.plan().install(&image_active));
    let sensor_active: Vec<usize> = sensor.plan().active();
    let sensor_switch_us = time_us(switch_iters, || sensor.plan().install(&sensor_active));
    table.row(vec!["plan switch (us)".into(), f2(switch_us), f2(sensor_switch_us)]);

    // Plan re-selection: the min-cut over the Unit Graph.
    let iw = image.static_weights();
    let sw = sensor.static_weights();
    let image_cut_us =
        time_us(cut_iters, || select_active_set(image.analysis(), &iw).expect("cut"));
    let sensor_cut_us =
        time_us(cut_iters, || select_active_set(sensor.analysis(), &sw).expect("cut"));
    table.row(vec!["min-cut reselection (us)".into(), f2(image_cut_us), f2(sensor_cut_us)]);

    table.note(
        "paper: 5 and 21 PSEs; redirect argument classes 500-800 B each; \
         ~150 B instrumentation per PSE; reconfiguration overhead negligible",
    );
    table.print();

    let mut report = Report::new("overheads");
    report
        .param_u64("switch_iters", switch_iters as u64)
        .param_u64("cut_iters", cut_iters as u64)
        .add_table(&table);
    report.finish();

    println!("\n--- generated modulator (image handler) ---");
    print!("{}", modulator_text(&image));
}
