//! Regenerates **Figure 7**: impact of consumer-side active-period
//! probability (AProb) on the four sensor implementations.
//!
//! Consumer side: PLen = 1000 ms, LIndex = 0.8; producer load-free.
//! Prints one series per implementation across the AProb sweep.

use mpart_apps::sensor::{run_sensor_experiment, HostLoad, SensorSetup, SensorVersion};
use mpart_bench::table::{arg_u64, arg_usize, f2, Table};
use mpart_bench::Report;

fn main() {
    let messages = arg_usize("messages", 150);
    let seed = arg_u64("seed", 31);
    let aprobs = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];

    let mut headers: Vec<String> = vec!["Implementation".into()];
    headers.extend(aprobs.iter().map(|a| format!("AProb={a}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut table = Table::new(
        "Figure 7: consumer-side AProb sweep (PLen=1000ms, LIndex=0.8; avg ms)",
        &header_refs,
    );
    for version in SensorVersion::ALL {
        let mut cells = vec![version.label().to_string()];
        for &aprob in &aprobs {
            let mut setup = SensorSetup::intel_cluster(messages, seed);
            setup.consumer_load = HostLoad { aprob, plen_ms: 1000.0, lindex: 0.8 };
            let stats = run_sensor_experiment(version, &setup).expect("cell");
            cells.push(f2(stats.avg_ms));
        }
        table.row(cells);
    }
    table.note(
        "expected shape: Producer flat; Method Partitioning near-flat; \
         Consumer and Divided degrade as AProb grows",
    );
    table.print();

    let mut report = Report::new("figure7");
    report.param_u64("messages", messages as u64).param_u64("seed", seed).add_table(&table);
    report.finish();
}
