//! Plain-text table rendering for the harness binaries, plus tiny CLI and
//! timing helpers.

use std::time::Instant;

/// A printable table with a title, column headers, and string rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    note: Option<String>,
}

impl Table {
    /// Starts a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            note: None,
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Sets a footnote printed under the table.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.note = Some(note.into());
        self
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The rows appended so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The footnote, if one was set.
    pub fn footnote(&self) -> Option<&str> {
        self.note.as_deref()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let sep: String = widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        if let Some(n) = &self.note {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Reads `--<name> <value>` from the process arguments, falling back to
/// `default`.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let flag = format!("--{name}");
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| *a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Reads `--seed <value>` style u64 arguments.
pub fn arg_u64(name: &str, default: u64) -> u64 {
    arg_usize(name, default as usize) as u64
}

/// Median wall-clock microseconds of `f` over `iters` timed runs (after
/// one warm-up).
pub fn time_us<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let _warmup = f();
    let mut samples: Vec<f64> = (0..iters.max(1))
        .map(|_| {
            let t = Instant::now();
            let out = f();
            let us = t.elapsed().as_secs_f64() * 1e6;
            drop(out);
            us
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer-name"));
        let lines: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        Table::new("t", &["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn timing_returns_positive() {
        let us = time_us(3, || (0..1000).sum::<u64>());
        assert!(us >= 0.0);
    }
}
