//! The wireless image-streaming application (§5.1).
//!
//! A stationary server streams image frames to a handheld client over an
//! 802.11b-class wireless link. The client's handler checks the event
//! type, resizes the frame to its display window (160×160 in the paper's
//! Table 2), and hands it to the native display routine. Frames may be
//! smaller than the display (80×80 — cheapest to ship raw and upsample at
//! the client) or larger (200×200 — cheapest to downsample at the server
//! first), "without the client's a priori knowledge".
//!
//! Three implementation versions reproduce Table 2's rows:
//!
//! * [`ImageVersion::ShipRaw`] — the manual version optimized for
//!   `Image < Display`: always send the original frame;
//! * [`ImageVersion::ResizeAtServer`] — the manual version optimized for
//!   `Image > Display`: always resize inside the server;
//! * [`ImageVersion::MethodPartitioning`] — the adaptive version: the
//!   data-size cost model plus runtime profiling pick the split per
//!   current frame population.

use std::sync::Arc;

use mpart::profile::TriggerPolicy;
use mpart::PseId;
use mpart_cost::{CostModel, DataSizeModel};
use mpart_ir::heap::Heap;
use mpart_ir::interp::{BuiltinRegistry, ExecCtx};
use mpart_ir::marshal::{SelfSizerRegistry, ARRAY_HEADER_SIZE, OBJECT_HEADER_SIZE, REF_SIZE};
use mpart_ir::parse::parse_program;
use mpart_ir::types::{ClassTable, ElemType};
use mpart_ir::{IrError, Program, Value};
use mpart_jecho::{SimConfig, SimSession};
use mpart_simnet::{Host, Link, SimTime};
use rand::prelude::*;

/// Display window side length used throughout Table 2.
pub const DISPLAY_SIDE: i64 = 160;

/// The handler program: `push` mirrors the paper's running example, with
/// the resize target fixed to the subscriber's display window.
pub const IMAGE_PROGRAM: &str = r#"
class ImageData { width: int, height: int, buff: ref }

fn push(event) {
    z0 = event instanceof ImageData
    if z0 == 0 goto skip
    img = (ImageData) event
    out = call resize_image(img, 160, 160)
    native display_image(out)
    return 1
skip:
    return 0
}
"#;

/// Which implementation of the application runs (Table 2's rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageVersion {
    /// Manual version optimized for `Image < Display`: ship the raw frame.
    ShipRaw,
    /// Manual version optimized for `Image > Display`: resize at the
    /// server.
    ResizeAtServer,
    /// Adaptive Method Partitioning.
    MethodPartitioning,
}

impl ImageVersion {
    /// All three versions, in Table 2 row order.
    pub const ALL: [ImageVersion; 3] =
        [ImageVersion::ShipRaw, ImageVersion::ResizeAtServer, ImageVersion::MethodPartitioning];

    /// Table row label.
    pub fn label(self) -> &'static str {
        match self {
            ImageVersion::ShipRaw => "Image<Display",
            ImageVersion::ResizeAtServer => "Image>Display",
            ImageVersion::MethodPartitioning => "Method Partitioning",
        }
    }
}

/// Frame-population scenario (Table 2's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageScenario {
    /// All frames 80×80 (smaller than the display).
    Small,
    /// All frames 200×200 (larger than the display).
    Large,
    /// Alternating scenarios, each lasting `n ~ U[1, 20]` frames.
    Mixed,
}

impl ImageScenario {
    /// All three scenarios, in Table 2 column order.
    pub const ALL: [ImageScenario; 3] =
        [ImageScenario::Small, ImageScenario::Large, ImageScenario::Mixed];

    /// Table column label.
    pub fn label(self) -> &'static str {
        match self {
            ImageScenario::Small => "Small Image (80*80)",
            ImageScenario::Large => "Large Image (200*200)",
            ImageScenario::Mixed => "Mixed",
        }
    }

    /// Frame side-length sequence for `n` frames under `seed` (the Mixed
    /// scenario pre-generates its phase lengths, like the paper's
    /// pre-generated random arrays).
    pub fn sides(self, n: usize, seed: u64) -> Vec<i64> {
        match self {
            ImageScenario::Small => vec![80; n],
            ImageScenario::Large => vec![200; n],
            ImageScenario::Mixed => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut out = Vec::with_capacity(n);
                let mut small = true;
                while out.len() < n {
                    let phase = rng.random_range(1..=20usize);
                    let side = if small { 80 } else { 200 };
                    for _ in 0..phase.min(n - out.len()) {
                        out.push(side);
                    }
                    small = !small;
                }
                out
            }
        }
    }
}

/// Parses the handler program.
///
/// # Errors
///
/// Propagates parser errors (never fails for the embedded source).
pub fn image_program() -> Result<Arc<Program>, IrError> {
    image_program_custom(DISPLAY_SIDE)
}

/// Generates the handler for a client with a custom display window — the
/// paper's per-receiver customization ("customize image handling to
/// different client needs"): each subscriber submits its own handler with
/// its display size baked in, and gets its own modulator in the sender.
///
/// # Errors
///
/// Returns [`IrError::Invalid`] for a non-positive side, else parser
/// errors (none for valid sides).
pub fn image_program_custom(display_side: i64) -> Result<Arc<Program>, IrError> {
    if display_side <= 0 {
        return Err(IrError::Invalid(format!("display side must be positive, got {display_side}")));
    }
    let source = format!(
        r#"
class ImageData {{ width: int, height: int, buff: ref }}

fn push(event) {{
    z0 = event instanceof ImageData
    if z0 == 0 goto skip
    img = (ImageData) event
    out = call resize_image(img, {display_side}, {display_side})
    native display_image(out)
    return 1
skip:
    return 0
}}
"#
    );
    Ok(Arc::new(parse_program(&source)?))
}

fn resize_impl(classes: &ClassTable, heap: &mut Heap, args: &[Value]) -> Result<Value, IrError> {
    let src = args[0].as_ref("resize_image source")?;
    let w = args[1].as_int("resize_image width")?;
    let h = args[2].as_int("resize_image height")?;
    if w <= 0 || h <= 0 {
        return Err(IrError::Type("resize_image: non-positive target".into()));
    }
    let class =
        classes.id("ImageData").ok_or_else(|| IrError::Unresolved("class ImageData".into()))?;
    let decl = classes.decl(class);
    let f_width = decl.field("width").expect("width field");
    let f_height = decl.field("height").expect("height field");
    let f_buff = decl.field("buff").expect("buff field");

    let src_w = heap.field(src, f_width)?.as_int("width")?.max(1);
    let src_h = heap.field(src, f_height)?.as_int("height")?.max(1);
    let src_buff = heap.field(src, f_buff)?.as_ref("buff")?;

    let out = heap.alloc_object(classes, class);
    let out_buff = heap.alloc_array(ElemType::Byte, (w * h) as usize);
    for y in 0..h {
        let sy = y * src_h / h;
        for x in 0..w {
            let sx = x * src_w / w;
            let px = heap.array_get(src_buff, sy * src_w + sx)?;
            heap.array_set(out_buff, y * w + x, px)?;
        }
    }
    heap.set_field(out, f_width, Value::Int(w))?;
    heap.set_field(out, f_height, Value::Int(h))?;
    heap.set_field(out, f_buff, Value::Ref(out_buff))?;
    Ok(Value::Ref(out))
}

fn frame_pixels(classes: &ClassTable, heap: &Heap, args: &[Value]) -> u64 {
    let Some(Value::Ref(img)) = args.first() else { return 1 };
    let Some(class) = classes.id("ImageData") else { return 1 };
    let decl = classes.decl(class);
    let (Some(fw), Some(fh)) = (decl.field("width"), decl.field("height")) else {
        return 1;
    };
    let w = heap.field(*img, fw).ok().and_then(|v| v.as_int("w").ok()).unwrap_or(1);
    let h = heap.field(*img, fh).ok().and_then(|v| v.as_int("h").ok()).unwrap_or(1);
    (w * h).max(1) as u64
}

/// Builtins available on the *sender* side: the pure `resize_image`
/// (one work unit per output pixel).
pub fn server_builtins(program: &Program) -> BuiltinRegistry {
    let classes = program.classes.clone();
    let mut b = BuiltinRegistry::new();
    b.register_pure(
        "resize_image",
        |_, args| {
            let w = args.get(1).and_then(|v| v.as_int("w").ok()).unwrap_or(0);
            let h = args.get(2).and_then(|v| v.as_int("h").ok()).unwrap_or(0);
            (w * h).max(0) as u64
        },
        move |heap, args| resize_impl(&classes, heap, args),
    );
    b
}

/// Builtins on the *client* side: `resize_image` plus the native
/// `display_image` costing one work unit per painted pixel.
pub fn client_builtins(program: &Program) -> BuiltinRegistry {
    let mut b = server_builtins(program);
    let classes_cost = program.classes.clone();
    let classes_check = program.classes.clone();
    b.register_native_with_cost(
        "display_image",
        move |heap, args| frame_pixels(&classes_cost, heap, args),
        move |heap, args| {
            let img = args[0].as_ref("display_image frame")?;
            let class = classes_check.id("ImageData").expect("ImageData");
            if heap.class_of(img)? != Some(class) {
                return Err(IrError::Type("display_image: not an ImageData".into()));
            }
            Ok(Value::Null)
        },
    );
    b
}

/// Self-describing `sizeOf` for `ImageData` — the compiler-generated fast
/// sizing path of Table 1, used by the data-size profiler.
pub fn image_sizers(program: &Program) -> SelfSizerRegistry {
    let classes = program.classes.clone();
    let mut reg = SelfSizerRegistry::new();
    reg.register("ImageData", move |heap, obj| {
        let class = classes.id("ImageData").expect("ImageData");
        let decl = classes.decl(class);
        let w = heap.field(obj, decl.field("width").expect("width"))?.as_int("width")?;
        let h = heap.field(obj, decl.field("height").expect("height"))?.as_int("height")?;
        Ok(OBJECT_HEADER_SIZE + 2 * 8 + 2 * REF_SIZE + ARRAY_HEADER_SIZE + (w * h).max(0) as usize)
    });
    reg
}

/// The application's cost model: data size with the `ImageData`
/// self-sizer registered.
pub fn image_cost_model(program: &Program) -> Arc<dyn CostModel> {
    Arc::new(DataSizeModel::with_sizers(image_sizers(program)))
}

/// Allocates one `side × side` frame in the sender's context.
///
/// # Errors
///
/// Propagates heap errors.
pub fn make_frame(program: &Program, ctx: &mut ExecCtx, side: i64) -> Result<Vec<Value>, IrError> {
    let classes = &program.classes;
    let class = classes.id("ImageData").expect("ImageData");
    let decl = classes.decl(class);
    let img = ctx.heap.alloc_object(classes, class);
    let buff = ctx.heap.alloc_array(ElemType::Byte, (side * side) as usize);
    ctx.heap.set_field(img, decl.field("width").expect("width"), Value::Int(side))?;
    ctx.heap.set_field(img, decl.field("height").expect("height"), Value::Int(side))?;
    ctx.heap.set_field(img, decl.field("buff").expect("buff"), Value::Ref(buff))?;
    Ok(vec![Value::Ref(img)])
}

/// Hosts and link calibrated to the paper's testbed ratios: a fast server
/// laptop, a slow handheld (≈1.5 M pixel-ops/s), and a ~300 KB/s effective
/// 802.11b link.
pub fn image_testbed(trigger: TriggerPolicy) -> SimConfig {
    SimConfig::new(
        Host::new("server-laptop", 20_000_000.0),
        Link::new("wireless-802.11b", SimTime::from_millis(5), 300_000.0),
        Host::new("ipaq-client", 1_520_000.0),
        trigger,
    )
}

/// Result of one scenario run.
#[derive(Debug, Clone)]
pub struct ImageRunStats {
    /// Frames delivered per second.
    pub fps: f64,
    /// Average wire bytes per frame.
    pub avg_wire_bytes: f64,
    /// Plan installations performed during the run.
    pub plan_installs: u64,
}

/// The fixed plan corresponding to a manual version.
///
/// # Panics
///
/// Panics if called for the adaptive version.
pub fn fixed_plan(version: ImageVersion, handler: &mpart::PartitionedHandler) -> Vec<PseId> {
    match version {
        ImageVersion::ShipRaw => vec![handler.entry_pse().expect("entry PSE")],
        ImageVersion::ResizeAtServer => handler
            .analysis()
            .pses()
            .iter()
            .enumerate()
            .filter(|(_, p)| !p.edge.is_entry())
            .map(|(i, _)| i)
            .collect(),
        ImageVersion::MethodPartitioning => {
            panic!("the adaptive version has no fixed plan")
        }
    }
}

/// Knobs for ablation studies on the image experiment.
#[derive(Debug, Clone, Copy)]
pub struct ImageOptions {
    /// Register the `ImageData` self-describing `sizeOf` (fast profiling)
    /// or fall back to generic graph-walk sizing.
    pub self_sizers: bool,
    /// Feedback trigger for the adaptive version.
    pub trigger: TriggerPolicy,
    /// Profile every Nth message.
    pub sample_period: u64,
    /// EWMA smoothing factor.
    pub ewma_alpha: f64,
}

impl Default for ImageOptions {
    fn default() -> Self {
        ImageOptions {
            self_sizers: true,
            trigger: TriggerPolicy::Rate(1),
            sample_period: 1,
            ewma_alpha: 0.5,
        }
    }
}

/// Builds a ready-to-run session for `version` on the Table 2 testbed.
///
/// # Errors
///
/// Propagates analysis errors.
pub fn image_session(version: ImageVersion) -> Result<SimSession, IrError> {
    image_session_with(version, ImageOptions::default())
}

/// Like [`image_session`] with explicit ablation knobs.
///
/// # Errors
///
/// Propagates analysis errors.
pub fn image_session_with(
    version: ImageVersion,
    options: ImageOptions,
) -> Result<SimSession, IrError> {
    let program = image_program()?;
    let model: Arc<dyn CostModel> = if options.self_sizers {
        image_cost_model(&program)
    } else {
        Arc::new(DataSizeModel::new())
    };
    let sender = server_builtins(&program);
    let receiver = client_builtins(&program);
    match version {
        ImageVersion::MethodPartitioning => SimSession::adaptive(
            program,
            "push",
            model,
            sender,
            receiver,
            image_testbed(options.trigger)
                .with_profile_sampling(options.sample_period)
                .with_ewma_alpha(options.ewma_alpha),
        ),
        fixed => {
            let probe = mpart::PartitionedHandler::analyze(
                Arc::clone(&program),
                "push",
                image_cost_model(&program),
            )?;
            let plan = fixed_plan(fixed, &probe);
            SimSession::fixed(
                program,
                "push",
                model,
                &plan,
                sender,
                receiver,
                image_testbed(TriggerPolicy::Never),
            )
        }
    }
}

/// Runs `version` against `scenario` for `frames` messages; deterministic
/// under `seed`.
///
/// # Errors
///
/// Propagates analysis/runtime errors.
pub fn run_image_experiment(
    version: ImageVersion,
    scenario: ImageScenario,
    frames: usize,
    seed: u64,
) -> Result<ImageRunStats, IrError> {
    run_image_experiment_with(version, scenario, frames, seed, ImageOptions::default())
}

/// Like [`run_image_experiment`] with explicit ablation knobs.
///
/// # Errors
///
/// Propagates analysis/runtime errors.
pub fn run_image_experiment_with(
    version: ImageVersion,
    scenario: ImageScenario,
    frames: usize,
    seed: u64,
    options: ImageOptions,
) -> Result<ImageRunStats, IrError> {
    let program = image_program()?;
    let mut session = image_session_with(version, options)?;
    for side in scenario.sides(frames, seed) {
        let program_ref = Arc::clone(&program);
        session.deliver(move |ctx| make_frame(&program_ref, ctx, side))?;
    }
    let total_bytes: usize = session.reports().iter().map(|r| r.wire_bytes).sum();
    Ok(ImageRunStats {
        fps: session.fps(),
        avg_wire_bytes: total_bytes as f64 / frames.max(1) as f64,
        plan_installs: session.plan_installs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_generate_expected_sides() {
        assert!(ImageScenario::Small.sides(5, 0).iter().all(|&s| s == 80));
        assert!(ImageScenario::Large.sides(5, 0).iter().all(|&s| s == 200));
        let mixed = ImageScenario::Mixed.sides(200, 42);
        assert_eq!(mixed.len(), 200);
        assert!(mixed.contains(&80) && mixed.contains(&200));
        assert_eq!(mixed, ImageScenario::Mixed.sides(200, 42), "deterministic");
    }

    #[test]
    fn handler_analysis_finds_three_pses() {
        let program = image_program().unwrap();
        let h = mpart::PartitionedHandler::analyze(
            Arc::clone(&program),
            "push",
            image_cost_model(&program),
        )
        .unwrap();
        assert_eq!(h.analysis().pses().len(), 3, "{:?}", h.analysis().pses());
        assert!(h.entry_pse().is_some());
    }

    #[test]
    fn self_sizer_matches_frame_size() {
        let program = image_program().unwrap();
        let sizers = image_sizers(&program);
        let mut ctx = ExecCtx::new(&program);
        let frame = make_frame(&program, &mut ctx, 80).unwrap();
        let size = sizers.size_of(&ctx.heap, &program.classes, &frame[0]).unwrap();
        assert!(size > 6400 && size < 6500, "{size}");
    }

    #[test]
    fn small_frames_favor_ship_raw() {
        let raw = run_image_experiment(ImageVersion::ShipRaw, ImageScenario::Small, 40, 1).unwrap();
        let server =
            run_image_experiment(ImageVersion::ResizeAtServer, ImageScenario::Small, 40, 1)
                .unwrap();
        assert!(
            raw.fps > server.fps * 1.5,
            "raw {} fps vs resize-at-server {} fps",
            raw.fps,
            server.fps
        );
    }

    #[test]
    fn large_frames_favor_resize_at_server() {
        let raw = run_image_experiment(ImageVersion::ShipRaw, ImageScenario::Large, 40, 1).unwrap();
        let server =
            run_image_experiment(ImageVersion::ResizeAtServer, ImageScenario::Large, 40, 1)
                .unwrap();
        assert!(
            server.fps > raw.fps * 1.4,
            "resize-at-server {} fps vs raw {} fps",
            server.fps,
            raw.fps
        );
    }

    #[test]
    fn method_partitioning_tracks_the_best_manual_version() {
        for scenario in [ImageScenario::Small, ImageScenario::Large] {
            let mp =
                run_image_experiment(ImageVersion::MethodPartitioning, scenario, 60, 2).unwrap();
            let raw = run_image_experiment(ImageVersion::ShipRaw, scenario, 60, 2).unwrap();
            let server =
                run_image_experiment(ImageVersion::ResizeAtServer, scenario, 60, 2).unwrap();
            let best = raw.fps.max(server.fps);
            assert!(
                mp.fps > best * 0.9,
                "{scenario:?}: MP {} fps vs best manual {} fps",
                mp.fps,
                best
            );
        }
    }

    #[test]
    fn per_subscriber_display_customization() {
        use mpart::profile::TriggerPolicy;
        use mpart_jecho::EventChannel;

        // Two clients with different displays subscribe their own handlers
        // to one channel; each modulator adapts to its own client.
        let base = image_program().unwrap();
        let big = image_program_custom(160).unwrap();
        let small = image_program_custom(40).unwrap();
        // Handlers live in separate programs; publish through two channels
        // fed the same frames (one sender per subscriber program).
        let run = |program: Arc<mpart_ir::Program>, frames: &[i64]| -> (usize, i64) {
            let mut channel = EventChannel::new(Arc::clone(&program), server_builtins(&program));
            let id = channel
                .subscribe(
                    "push",
                    image_cost_model(&program),
                    client_builtins(&program),
                    TriggerPolicy::Rate(1),
                )
                .unwrap();
            let mut last_bytes = 0usize;
            for &side in frames {
                let p = Arc::clone(&program);
                let reports = channel.publish(move |ctx| make_frame(&p, ctx, side)).unwrap();
                last_bytes = reports[id].wire_bytes;
            }
            (last_bytes, frames[frames.len() - 1])
        };
        let frames = [120i64; 8];
        let (big_bytes, _) = run(big, &frames);
        let (small_bytes, _) = run(small, &frames);
        // The 40x40 client converges to tiny resized payloads; the 160x160
        // client prefers the raw 120x120 frame (smaller than its resize).
        assert!(small_bytes < 2200, "small display ships thumbnails: {small_bytes}");
        assert!(big_bytes > 14_000, "big display ships the raw 120x120 frame: {big_bytes}");
        drop(base);
    }

    #[test]
    fn custom_display_rejects_nonpositive() {
        assert!(image_program_custom(0).is_err());
        assert!(image_program_custom(-4).is_err());
    }

    #[test]
    fn method_partitioning_wins_on_mixed() {
        let mp =
            run_image_experiment(ImageVersion::MethodPartitioning, ImageScenario::Mixed, 120, 3)
                .unwrap();
        let raw =
            run_image_experiment(ImageVersion::ShipRaw, ImageScenario::Mixed, 120, 3).unwrap();
        let server =
            run_image_experiment(ImageVersion::ResizeAtServer, ImageScenario::Mixed, 120, 3)
                .unwrap();
        assert!(
            mp.fps > raw.fps && mp.fps > server.fps,
            "MP {} vs raw {} vs server {}",
            mp.fps,
            raw.fps,
            server.fps
        );
        assert!(mp.plan_installs >= 2, "MP adapted: {}", mp.plan_installs);
    }
}
