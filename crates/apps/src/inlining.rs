//! The interprocedural-expansion extension experiment.
//!
//! §7 leaves "expanding the UG of the message handling method" as future
//! work; [`mpart_ir::inline`] implements it. This module quantifies the
//! benefit: a handler whose heavy computation hides inside helper methods
//! can only be split *around* the helpers when they are opaque, but can be
//! split *inside* them after expansion — finer balance, lower
//! `max(T_mod, T_demod)`.
//!
//! The handler calls three IR helpers; the middle one contains four heavy
//! `grind` steps. Opaquely, the best split leaves ~70% of the work on one
//! side; expanded, the split lands between grind steps, near 50/50.

use std::sync::Arc;

use mpart::profile::TriggerPolicy;
use mpart_cost::{CostModel, ExecTimeModel};
use mpart_ir::inline::{inlined_program, InlineOptions};
use mpart_ir::interp::{BuiltinRegistry, ExecCtx};
use mpart_ir::parse::parse_program;
use mpart_ir::{IrError, Program, Value};
use mpart_jecho::{SimConfig, SimSession};
use mpart_simnet::{Host, Link};

/// Work units of one `grind` step.
pub const GRIND_UNITS: u64 = 10_000;

/// The handler: three helpers, with the heavy lifting buried inside
/// `heavy_mid`.
pub const INLINING_PROGRAM: &str = r#"
class Job { id: int, payload: ref }

fn prepare(x) {
    a = call grind(x)
    return a
}

fn heavy_mid(x) {
    a = call grind(x)
    b = call grind(a)
    c = call grind(b)
    d = call grind(c)
    return d
}

fn finish(x) {
    a = call grind(x)
    return a
}

fn work(event) {
    ok = event instanceof Job
    if ok == 0 goto skip
    j = (Job) event
    p = call prepare(j)
    m = call heavy_mid(p)
    f = call finish(m)
    native submit(f)
    return 1
skip:
    return 0
}
"#;

/// Parses the handler program.
///
/// # Errors
///
/// Propagates parser errors (never fails for the embedded source).
pub fn inlining_program() -> Result<Arc<Program>, IrError> {
    Ok(Arc::new(parse_program(INLINING_PROGRAM)?))
}

/// Builtins: `grind` is a pure step costing [`GRIND_UNITS`] that passes
/// its (Job) argument through; `submit` is the receiver-anchored sink.
pub fn inlining_builtins() -> BuiltinRegistry {
    let mut b = BuiltinRegistry::new();
    b.register_pure("grind", |_, _| GRIND_UNITS, |_, args| Ok(args[0].clone()));
    b.register_native("submit", 16, |_, _| Ok(Value::Null));
    b
}

/// Allocates one job event.
///
/// # Errors
///
/// Propagates heap errors.
pub fn make_job(program: &Program, ctx: &mut ExecCtx, id: u64) -> Result<Vec<Value>, IrError> {
    let classes = &program.classes;
    let class = classes.id("Job").expect("Job");
    let decl = classes.decl(class);
    let j = ctx.heap.alloc_object(classes, class);
    let payload = ctx.heap.alloc_array(mpart_ir::types::ElemType::Byte, 512);
    ctx.heap.set_field(j, decl.field("id").expect("id"), Value::Int(id as i64))?;
    ctx.heap.set_field(j, decl.field("payload").expect("payload"), Value::Ref(payload))?;
    Ok(vec![Value::Ref(j)])
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct InliningRunStats {
    /// Average message processing time (ms).
    pub avg_ms: f64,
    /// Number of Potential Split Edges the analysis found.
    pub pses: usize,
}

/// Runs the adaptive session with the handler either opaque or expanded.
///
/// # Errors
///
/// Propagates analysis/runtime errors.
pub fn run_inlining_experiment(expand: bool, messages: usize) -> Result<InliningRunStats, IrError> {
    let base = inlining_program()?;
    let program = if expand {
        Arc::new(inlined_program(&base, "work", InlineOptions::default())?)
    } else {
        base
    };
    let model: Arc<dyn CostModel> = Arc::new(ExecTimeModel::new());
    let pses =
        mpart::PartitionedHandler::analyze(Arc::clone(&program), "work", Arc::clone(&model))?
            .analysis()
            .pses()
            .len();

    let config = SimConfig::new(
        Host::new("producer", 1_000_000.0),
        Link::fast_ethernet(),
        Host::new("consumer", 1_000_000.0),
        TriggerPolicy::Rate(1),
    )
    .with_serialize_cost(0.35);
    let mut session = SimSession::adaptive(
        Arc::clone(&program),
        "work",
        model,
        inlining_builtins(),
        inlining_builtins(),
        config,
    )?;
    let program_ref = Arc::clone(&program);
    session.run(messages, move |seq, ctx| make_job(&program_ref, ctx, seq))?;
    Ok(InliningRunStats { avg_ms: session.avg_processing_ms(), pses })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_exposes_interior_pses() {
        let opaque = run_inlining_experiment(false, 30).unwrap();
        let expanded = run_inlining_experiment(true, 30).unwrap();
        assert!(expanded.pses > opaque.pses, "{} vs {}", expanded.pses, opaque.pses);
    }

    #[test]
    fn expansion_improves_balance() {
        let opaque = run_inlining_experiment(false, 60).unwrap();
        let expanded = run_inlining_experiment(true, 60).unwrap();
        // Opaque best split: 2 grinds vs 4 (or 1 vs 5) -> max 4/6 of the
        // work; expanded best: 3 vs 3 -> max 3/6. Expect a clear win.
        assert!(
            expanded.avg_ms < opaque.avg_ms * 0.85,
            "expanded {} ms vs opaque {} ms",
            expanded.avg_ms,
            opaque.avg_ms
        );
    }

    #[test]
    fn both_variants_produce_identical_results() {
        let base = inlining_program().unwrap();
        let expanded = Arc::new(inlined_program(&base, "work", InlineOptions::default()).unwrap());
        for program in [&base, &expanded] {
            let mut ctx = ExecCtx::with_builtins(program, inlining_builtins());
            let args = make_job(program, &mut ctx, 7).unwrap();
            let r = mpart_ir::interp::Interp::new(program).run(&mut ctx, "work", args).unwrap();
            assert_eq!(r, Some(Value::Int(1)));
            assert_eq!(ctx.trace.len(), 1);
        }
    }
}
