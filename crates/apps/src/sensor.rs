//! The sensor data-processing application (§5.2).
//!
//! Mobile sensors capture signal arrays and push them through a
//! compute-intensive processing pipeline before delivery to a client.
//! Method Partitioning, under the execution-time cost model, distributes
//! the pipeline stages between sensor (producer) and client (consumer)
//! according to their current effective speeds — which change with
//! perturbation-thread load (PLen / AProb / LIndex).
//!
//! Four implementation versions reproduce the rows of Tables 3–4 and the
//! series of Figures 7–8:
//!
//! * [`SensorVersion::Consumer`] — all processing in the consumer;
//! * [`SensorVersion::Producer`] — all processing in the producer;
//! * [`SensorVersion::Divided`] — split at the stage-count midpoint
//!   ("two roughly equal parts" — equal in stage count, not in cost,
//!   which is why finer-grained balancing wins even without load);
//! * [`SensorVersion::MethodPartitioning`] — adaptive.
//!
//! The pipeline has 12 stages of deliberately uneven cost, so the
//! handler exposes a dense ladder of PSEs along one path (the paper's
//! sensor handler had 21), and the profiler can place the split at any
//! stage boundary.

use std::sync::Arc;

use mpart::profile::TriggerPolicy;
use mpart::{PartitionedHandler, PseId};
use mpart_cost::{CostModel, ExecTimeModel};
use mpart_ir::heap::{ArrayData, Heap};
use mpart_ir::instr::{Instr, Rvalue};
use mpart_ir::interp::{BuiltinRegistry, ExecCtx};
use mpart_ir::parse::parse_program;
use mpart_ir::{IrError, Program, Value};
use mpart_jecho::{SimConfig, SimSession};
use mpart_simnet::{Host, Link, PerturbConfig, PerturbationTrace, SimTime};
use rand::prelude::*;

/// Number of samples in a captured signal.
pub const SIGNAL_LEN: usize = 2048;

/// The 12 pipeline stages: `(name, cost-per-input-element)`. The early
/// stages are cheap per-element scans of the full signal; the later
/// stages run heavier kernels on the decimated spectrum.
pub const STAGES: [(&str, u64); 12] = [
    ("stage_calibrate", 2),
    ("stage_dc_remove", 2),
    ("stage_window", 2),
    ("stage_filter", 2),
    ("stage_derivative", 2),
    ("stage_decimate", 2), // reduces 2048 -> 512
    ("stage_spectrum", 10),
    ("stage_threshold", 10),
    ("stage_cluster", 14),
    ("stage_track", 14),
    ("stage_classify", 14),
    ("stage_annotate", 10), // reduces 512 -> 64
];

/// The handler program: a straight-line pipeline ending in the native
/// delivery call — every inter-stage edge is a Potential Split Edge.
pub const SENSOR_PROGRAM: &str = r#"
class SensorData { count: int, samples: ref }

fn process(event) {
    z = event instanceof SensorData
    if z == 0 goto skip
    d = (SensorData) event
    a0 = d.samples
    a1 = call stage_calibrate(a0)
    a2 = call stage_dc_remove(a1)
    a3 = call stage_window(a2)
    a4 = call stage_filter(a3)
    a5 = call stage_derivative(a4)
    a6 = call stage_decimate(a5)
    a7 = call stage_spectrum(a6)
    a8 = call stage_threshold(a7)
    a9 = call stage_cluster(a8)
    a10 = call stage_track(a9)
    a11 = call stage_classify(a10)
    a12 = call stage_annotate(a11)
    native deliver_result(a12)
    return 1
skip:
    return 0
}
"#;

/// Parses the handler program.
///
/// # Errors
///
/// Propagates parser errors (never fails for the embedded source).
pub fn sensor_program() -> Result<Arc<Program>, IrError> {
    Ok(Arc::new(parse_program(SENSOR_PROGRAM)?))
}

fn float_array<'h>(heap: &'h Heap, v: &Value) -> Result<&'h [f64], IrError> {
    let r = v.as_ref("stage input")?;
    match heap.cell(r)? {
        mpart_ir::heap::HeapCell::Array(ArrayData::Float(xs)) => Ok(xs),
        _ => Err(IrError::Type("stage input must be a float array".into())),
    }
}

fn register_stage(
    b: &mut BuiltinRegistry,
    name: &'static str,
    cost_per_elem: u64,
    transform: impl Fn(&[f64]) -> Vec<f64> + Send + Sync + 'static,
) {
    b.register_pure(
        name,
        move |heap, args| {
            args.first()
                .and_then(|v| float_array(heap, v).ok())
                .map(|xs| cost_per_elem * xs.len() as u64)
                .unwrap_or(1)
        },
        move |heap, args| {
            let input = float_array(heap, &args[0])?.to_vec();
            let out = transform(&input);
            Ok(Value::Ref(heap.alloc_array_from(ArrayData::Float(out))))
        },
    );
}

/// Pure stage builtins, available on both sides. Every stage performs a
/// real (deterministic) numeric transformation; its declared work cost is
/// `cost-per-element × input length`.
pub fn stage_builtins() -> BuiltinRegistry {
    let mut b = BuiltinRegistry::new();
    register_stage(&mut b, "stage_calibrate", STAGES[0].1, |xs| {
        xs.iter().map(|x| x * 1.01 + 0.003).collect()
    });
    register_stage(&mut b, "stage_dc_remove", STAGES[1].1, |xs| {
        let mean = xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        xs.iter().map(|x| x - mean).collect()
    });
    register_stage(&mut b, "stage_window", STAGES[2].1, |xs| {
        let n = xs.len().max(1) as f64;
        xs.iter()
            .enumerate()
            .map(|(i, x)| {
                let w = 0.54 - 0.46 * (2.0 * std::f64::consts::PI * i as f64 / n).cos();
                x * w
            })
            .collect()
    });
    register_stage(&mut b, "stage_filter", STAGES[3].1, |xs| {
        (0..xs.len())
            .map(|i| {
                let a = xs[i.saturating_sub(1)];
                let c = xs[(i + 1).min(xs.len() - 1)];
                (a + 2.0 * xs[i] + c) / 4.0
            })
            .collect()
    });
    register_stage(&mut b, "stage_derivative", STAGES[4].1, |xs| {
        (0..xs.len()).map(|i| xs[(i + 1).min(xs.len() - 1)] - xs[i]).collect()
    });
    register_stage(&mut b, "stage_decimate", STAGES[5].1, |xs| {
        xs.chunks(4).map(|c| c.iter().sum::<f64>() / c.len() as f64).collect()
    });
    register_stage(&mut b, "stage_spectrum", STAGES[6].1, |xs| {
        // A cheap stand-in for a spectral transform: absolute second
        // difference energy per bin.
        (0..xs.len())
            .map(|i| {
                let a = xs[i.saturating_sub(1)];
                let c = xs[(i + 1).min(xs.len() - 1)];
                (2.0 * xs[i] - a - c).abs()
            })
            .collect()
    });
    register_stage(&mut b, "stage_threshold", STAGES[7].1, |xs| {
        let mean = xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        xs.iter().map(|x| if *x > mean { *x } else { 0.0 }).collect()
    });
    register_stage(&mut b, "stage_cluster", STAGES[8].1, |xs| {
        // Run-length smooth of detections.
        let mut out = xs.to_vec();
        for i in 1..out.len() {
            if out[i] == 0.0 && xs[i - 1] > 0.0 && xs[(i + 1).min(xs.len() - 1)] > 0.0 {
                out[i] = (xs[i - 1] + xs[(i + 1).min(xs.len() - 1)]) / 2.0;
            }
        }
        out
    });
    register_stage(&mut b, "stage_track", STAGES[9].1, |xs| {
        let mut acc = 0.0;
        xs.iter()
            .map(|x| {
                acc = 0.9 * acc + 0.1 * x;
                acc
            })
            .collect()
    });
    register_stage(&mut b, "stage_classify", STAGES[10].1, |xs| {
        xs.iter().map(|x| if *x > 0.05 { 1.0 } else { 0.0 }).collect()
    });
    register_stage(&mut b, "stage_annotate", STAGES[11].1, |xs| {
        // Summarize into 64 report bins.
        let bins = 64;
        let chunk = xs.len().div_ceil(bins).max(1);
        xs.chunks(chunk).map(|c| c.iter().sum::<f64>()).take(bins).collect()
    });
    b
}

/// Consumer-side builtins: the stages plus the native delivery sink.
pub fn consumer_builtins() -> BuiltinRegistry {
    let mut b = stage_builtins();
    b.register_native("deliver_result", 64, |heap, args| {
        // The client consumes the 64-bin report.
        let r = args[0].as_ref("deliver_result report")?;
        let _ = heap.array_len(r)?;
        Ok(Value::Null)
    });
    b
}

/// Allocates one captured signal in the sender's context: `SensorData`
/// with a deterministic pseudo-random `float[SIGNAL_LEN]` derived from
/// `seq` and `seed`.
///
/// # Errors
///
/// Propagates heap errors.
pub fn make_signal(
    program: &Program,
    ctx: &mut ExecCtx,
    seq: u64,
    seed: u64,
) -> Result<Vec<Value>, IrError> {
    let classes = &program.classes;
    let class = classes.id("SensorData").expect("SensorData");
    let decl = classes.decl(class);
    let mut rng = StdRng::seed_from_u64(seed ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let samples: Vec<f64> = (0..SIGNAL_LEN)
        .map(|i| (i as f64 * 0.05).sin() + 0.2 * rng.random_range(-1.0..1.0))
        .collect();
    let obj = ctx.heap.alloc_object(classes, class);
    let arr = ctx.heap.alloc_array_from(ArrayData::Float(samples));
    ctx.heap.set_field(obj, decl.field("count").expect("count"), Value::Int(SIGNAL_LEN as i64))?;
    ctx.heap.set_field(obj, decl.field("samples").expect("samples"), Value::Ref(arr))?;
    Ok(vec![Value::Ref(obj)])
}

/// Which implementation of the application runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorVersion {
    /// All processing inside the consumer.
    Consumer,
    /// All processing inside the producer.
    Producer,
    /// Fixed split at the stage-count midpoint.
    Divided,
    /// Adaptive Method Partitioning.
    MethodPartitioning,
}

impl SensorVersion {
    /// All four versions, in the tables' column order.
    pub const ALL: [SensorVersion; 4] = [
        SensorVersion::Consumer,
        SensorVersion::Producer,
        SensorVersion::Divided,
        SensorVersion::MethodPartitioning,
    ];

    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            SensorVersion::Consumer => "Consumer Version",
            SensorVersion::Producer => "Producer Version",
            SensorVersion::Divided => "Divided Version",
            SensorVersion::MethodPartitioning => "Method Partitioning",
        }
    }
}

/// The execution-time cost model used by this application.
pub fn sensor_cost_model() -> Arc<dyn CostModel> {
    Arc::new(ExecTimeModel::new())
}

/// Finds the instruction index of `call <callee>` in the handler.
fn call_pc(program: &Program, callee: &str) -> Option<usize> {
    let f = program.function("process")?;
    f.instrs.iter().position(|i| {
        matches!(i, Instr::Assign { rvalue: Rvalue::Invoke { callee: c, .. }, .. } if c == callee)
    })
}

/// PSEs with an empty live set (the filtered-path edges) — included in
/// every fixed plan so non-`SensorData` events stay coverable.
fn side_path_pses(handler: &PartitionedHandler) -> Vec<PseId> {
    handler
        .analysis()
        .pses()
        .iter()
        .enumerate()
        .filter(|(_, p)| p.inter.is_empty() && !p.edge.is_entry())
        .map(|(i, _)| i)
        .collect()
}

/// The fixed plan of a manual version.
///
/// # Panics
///
/// Panics for the adaptive version or if the handler shape is unexpected.
pub fn fixed_plan(version: SensorVersion, handler: &PartitionedHandler) -> Vec<PseId> {
    let program = handler.program();
    let mut plan = side_path_pses(handler);
    match version {
        SensorVersion::Consumer => {
            // Earliest split on the processing path: everything except the
            // type check runs in the consumer. (The entry edge itself is
            // deduped away by the points-to analysis: the post-cast edge
            // ships the identical object.)
            let main =
                handler.analysis().cut.path_pses.iter().max_by_key(|v| v.len()).expect("main path");
            plan.push(*main.first().expect("main-path PSE"));
        }
        SensorVersion::Producer => {
            // Split right after the last stage: the edge out of the final
            // call instruction.
            let pc = call_pc(program, "stage_annotate").expect("final stage");
            let pse = handler
                .analysis()
                .pses()
                .iter()
                .position(|p| p.edge.from == pc)
                .expect("PSE after final stage");
            plan.push(pse);
        }
        SensorVersion::Divided => {
            // Stage-count midpoint: after stage 6 of 12.
            let pc = call_pc(program, "stage_decimate").expect("midpoint stage");
            let pse = handler
                .analysis()
                .pses()
                .iter()
                .position(|p| p.edge.from == pc)
                .expect("PSE after midpoint stage");
            plan.push(pse);
        }
        SensorVersion::MethodPartitioning => panic!("adaptive version has no fixed plan"),
    }
    plan
}

/// Load configuration of one host for an experiment cell.
#[derive(Debug, Clone, Copy)]
pub struct HostLoad {
    /// Active-period probability.
    pub aprob: f64,
    /// Expected period length in milliseconds.
    pub plen_ms: f64,
    /// Load index of active periods.
    pub lindex: f64,
}

impl HostLoad {
    /// No perturbation.
    pub fn free() -> Self {
        HostLoad { aprob: 0.0, plen_ms: 1000.0, lindex: 0.0 }
    }

    /// Constant load: always-active periods at the given index (Table 4's
    /// rows).
    pub fn constant(lindex: f64) -> Self {
        HostLoad { aprob: if lindex > 0.0 { 1.0 } else { 0.0 }, plen_ms: 1000.0, lindex }
    }

    fn trace(&self, horizon: SimTime, seed: u64) -> PerturbationTrace {
        if self.aprob <= 0.0 || self.lindex <= 0.0 {
            return PerturbationTrace::idle();
        }
        PerturbationTrace::generate(
            &PerturbConfig::single(self.plen_ms, self.aprob, self.lindex),
            horizon,
            seed,
        )
    }
}

/// One experiment cell: host speeds, loads, link, and length.
#[derive(Debug, Clone)]
pub struct SensorSetup {
    /// Producer base speed (work units/s).
    pub producer_speed: f64,
    /// Consumer base speed (work units/s).
    pub consumer_speed: f64,
    /// Producer load.
    pub producer_load: HostLoad,
    /// Consumer load.
    pub consumer_load: HostLoad,
    /// The connecting link.
    pub link: Link,
    /// Messages per run.
    pub messages: usize,
    /// Seed shared by all compared versions (pre-generated randoms, as in
    /// the paper).
    pub seed: u64,
}

/// Base speed of the Intel/Linux cluster nodes, calibrated so the Consumer
/// Version's unloaded processing time lands near Table 4's 88.44 ms.
pub const PC_SPEED: f64 = 760_000.0;
/// Base speed of the Sun Ultra-30 nodes (≈2.7× slower).
pub const SUN_SPEED: f64 = 281_000.0;
/// Marshalling work per wire byte (both sides).
pub const SERIALIZE_WORK_PER_BYTE: f64 = 0.35;

impl SensorSetup {
    /// The homogeneous Intel-cluster setup of Table 4 / Figures 7–8.
    pub fn intel_cluster(messages: usize, seed: u64) -> Self {
        SensorSetup {
            producer_speed: PC_SPEED,
            consumer_speed: PC_SPEED,
            producer_load: HostLoad::free(),
            consumer_load: HostLoad::free(),
            link: Link::fast_ethernet(),
            messages,
            seed,
        }
    }

    /// The heterogeneous setup of Table 3: messages flow PC→Sun.
    pub fn pc_to_sun(messages: usize, seed: u64) -> Self {
        SensorSetup {
            producer_speed: PC_SPEED,
            consumer_speed: SUN_SPEED,
            producer_load: HostLoad::free(),
            consumer_load: HostLoad::free(),
            link: Link::gigabit(),
            messages,
            seed,
        }
    }

    /// The heterogeneous setup of Table 3: messages flow Sun→PC.
    pub fn sun_to_pc(messages: usize, seed: u64) -> Self {
        SensorSetup {
            producer_speed: SUN_SPEED,
            consumer_speed: PC_SPEED,
            producer_load: HostLoad::free(),
            consumer_load: HostLoad::free(),
            link: Link::gigabit(),
            messages,
            seed,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct SensorRunStats {
    /// Average message processing time in milliseconds (makespan / n).
    pub avg_ms: f64,
    /// Plan installations during the run.
    pub plan_installs: u64,
    /// Average wire bytes per message.
    pub avg_wire_bytes: f64,
}

/// Runs `version` under `setup`.
///
/// # Errors
///
/// Propagates analysis/runtime errors.
pub fn run_sensor_experiment(
    version: SensorVersion,
    setup: &SensorSetup,
) -> Result<SensorRunStats, IrError> {
    let program = sensor_program()?;
    let horizon = SimTime::from_millis(10 * 60 * 1000);
    let producer = Host::new("producer", setup.producer_speed)
        .with_perturbation(setup.producer_load.trace(horizon, setup.seed.wrapping_mul(3) + 1));
    let consumer = Host::new("consumer", setup.consumer_speed)
        .with_perturbation(setup.consumer_load.trace(horizon, setup.seed.wrapping_mul(5) + 2));

    let trigger = match version {
        SensorVersion::MethodPartitioning => TriggerPolicy::Rate(1),
        _ => TriggerPolicy::Never,
    };
    let config = SimConfig::new(producer, setup.link.clone(), consumer, trigger)
        .with_serialize_cost(SERIALIZE_WORK_PER_BYTE);

    let mut session = match version {
        SensorVersion::MethodPartitioning => SimSession::adaptive(
            Arc::clone(&program),
            "process",
            sensor_cost_model(),
            stage_builtins(),
            consumer_builtins(),
            config,
        )?,
        fixed => {
            let probe =
                PartitionedHandler::analyze(Arc::clone(&program), "process", sensor_cost_model())?;
            let plan = fixed_plan(fixed, &probe);
            SimSession::fixed(
                Arc::clone(&program),
                "process",
                sensor_cost_model(),
                &plan,
                stage_builtins(),
                consumer_builtins(),
                config,
            )?
        }
    };

    let seed = setup.seed;
    let program_ref = Arc::clone(&program);
    session.run(setup.messages, move |seq, ctx| make_signal(&program_ref, ctx, seq, seed))?;

    let total_bytes: usize = session.reports().iter().map(|r| r.wire_bytes).sum();
    Ok(SensorRunStats {
        avg_ms: session.avg_processing_ms(),
        plan_installs: session.plan_installs(),
        avg_wire_bytes: total_bytes as f64 / setup.messages.max(1) as f64,
    })
}

/// The signal-complexity extension experiment.
///
/// The paper motivates adaptation partly by "changes in the complexities
/// of signals (e.g., the amounts of 'interesting' vs. 'uninteresting'
/// data currently captured)". This variant pipeline makes processing cost
/// *content-dependent*: a detection stage keeps only the samples above a
/// threshold, and every later stage's cost scales with the number of
/// detections — quadratically for the pairwise correlation stage. Bursty
/// traffic therefore reshapes the cost profile along the pipeline, and
/// the optimal split point moves with it.
pub const COMPLEXITY_PROGRAM: &str = r#"
class SensorData { count: int, samples: ref }

fn track(event) {
    z = event instanceof SensorData
    if z == 0 goto skip
    d = (SensorData) event
    a0 = d.samples
    a1 = call stage_prepare(a0)
    a2 = call stage_detect(a1)
    a3 = call stage_refine(a2)
    a4 = call stage_correlate(a3)
    a5 = call stage_classify_det(a4)
    a6 = call stage_report(a5)
    native deliver_result(a6)
    return 1
skip:
    return 0
}
"#;

/// Parses the complexity-extension program.
///
/// # Errors
///
/// Propagates parser errors (never fails for the embedded source).
pub fn complexity_program() -> Result<Arc<Program>, IrError> {
    Ok(Arc::new(parse_program(COMPLEXITY_PROGRAM)?))
}

/// Builtins for the complexity pipeline. Detection keeps samples with
/// `|x| > 0.8`; refine/classify cost linearly and correlate costs
/// quadratically in the detection count.
pub fn complexity_builtins() -> BuiltinRegistry {
    let mut b = BuiltinRegistry::new();
    register_stage(&mut b, "stage_prepare", 2, |xs| xs.iter().map(|x| x * 1.02).collect());
    register_stage(&mut b, "stage_detect", 2, |xs| {
        xs.iter().copied().filter(|x| x.abs() > 0.8).collect()
    });
    register_stage(&mut b, "stage_refine", 10, |xs| xs.iter().map(|x| x * 0.99 + 0.001).collect());
    // Pairwise correlation: cost scales with len^2 (capped), output len.
    b.register_pure(
        "stage_correlate",
        |heap, args| {
            args.first()
                .and_then(|v| float_array(heap, v).ok())
                .map(|xs| {
                    let n = xs.len() as u64;
                    (n * n) / 16 + 1
                })
                .unwrap_or(1)
        },
        |heap, args| {
            let xs = float_array(heap, &args[0])?.to_vec();
            let mean = xs.iter().sum::<f64>() / xs.len().max(1) as f64;
            let out: Vec<f64> = xs.iter().map(|x| (x - mean) * (x - mean)).collect();
            Ok(Value::Ref(heap.alloc_array_from(ArrayData::Float(out))))
        },
    );
    register_stage(&mut b, "stage_classify_det", 60, |xs| {
        xs.iter().map(|x| if *x > 0.01 { 1.0 } else { 0.0 }).collect()
    });
    register_stage(&mut b, "stage_report", 4, |xs| {
        let bins = 64usize;
        let chunk = xs.len().div_ceil(bins).max(1);
        xs.chunks(chunk).map(|c| c.iter().sum::<f64>()).take(bins).collect()
    });
    b.register_native("deliver_result", 64, |heap, args| {
        let r = args[0].as_ref("deliver_result report")?;
        let _ = heap.array_len(r)?;
        Ok(Value::Null)
    });
    b
}

/// Allocates one bursty signal: `active` bursts carry many
/// above-threshold samples, quiet ones almost none.
///
/// # Errors
///
/// Propagates heap errors.
pub fn make_bursty_signal(
    program: &Program,
    ctx: &mut ExecCtx,
    seq: u64,
    seed: u64,
    active: bool,
) -> Result<Vec<Value>, IrError> {
    let classes = &program.classes;
    let class = classes.id("SensorData").expect("SensorData");
    let decl = classes.decl(class);
    let mut rng = StdRng::seed_from_u64(seed ^ seq.wrapping_mul(0x2545_F491_4F6C_DD1D));
    let amplitude = if active { 1.6 } else { 0.3 };
    let samples: Vec<f64> = (0..SIGNAL_LEN)
        .map(|i| amplitude * (i as f64 * 0.11).sin() + 0.1 * rng.random_range(-1.0..1.0))
        .collect();
    let obj = ctx.heap.alloc_object(classes, class);
    let arr = ctx.heap.alloc_array_from(ArrayData::Float(samples));
    ctx.heap.set_field(obj, decl.field("count").expect("count"), Value::Int(SIGNAL_LEN as i64))?;
    ctx.heap.set_field(obj, decl.field("samples").expect("samples"), Value::Ref(arr))?;
    Ok(vec![Value::Ref(obj)])
}

/// Pre-generates the burst schedule: phases of `U[5, 15]` messages
/// alternating quiet/active, with roughly `quiet_fraction` of messages
/// quiet.
pub fn burst_schedule(messages: usize, quiet_fraction: f64, seed: u64) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(messages);
    let mut quiet = true;
    while out.len() < messages {
        let phase = rng.random_range(10..=30usize);
        // Bias phase lengths so the long-run quiet share matches.
        let scaled = if quiet {
            ((phase as f64) * 2.0 * quiet_fraction).round().max(1.0) as usize
        } else {
            ((phase as f64) * 2.0 * (1.0 - quiet_fraction)).round().max(1.0) as usize
        };
        for _ in 0..scaled.min(messages - out.len()) {
            out.push(!quiet); // true = active
        }
        quiet = !quiet;
    }
    out
}

/// Runs the complexity-extension experiment for one version.
///
/// # Errors
///
/// Propagates analysis/runtime errors.
pub fn run_complexity_experiment(
    version: SensorVersion,
    messages: usize,
    quiet_fraction: f64,
    seed: u64,
) -> Result<SensorRunStats, IrError> {
    let program = complexity_program()?;
    let producer = Host::new("producer", PC_SPEED);
    let consumer = Host::new("consumer", PC_SPEED);
    let trigger = match version {
        SensorVersion::MethodPartitioning => TriggerPolicy::Rate(1),
        _ => TriggerPolicy::Never,
    };
    let config = SimConfig::new(producer, Link::fast_ethernet(), consumer, trigger)
        .with_serialize_cost(SERIALIZE_WORK_PER_BYTE);

    let mut session = match version {
        SensorVersion::MethodPartitioning => SimSession::adaptive(
            Arc::clone(&program),
            "track",
            sensor_cost_model(),
            complexity_builtins(),
            complexity_builtins(),
            config,
        )?,
        fixed => {
            let probe =
                PartitionedHandler::analyze(Arc::clone(&program), "track", sensor_cost_model())?;
            let plan = complexity_fixed_plan(fixed, &probe);
            SimSession::fixed(
                Arc::clone(&program),
                "track",
                sensor_cost_model(),
                &plan,
                complexity_builtins(),
                complexity_builtins(),
                config,
            )?
        }
    };

    let schedule = burst_schedule(messages, quiet_fraction, seed);
    for (i, &active) in schedule.iter().enumerate() {
        let program_ref = Arc::clone(&program);
        session
            .deliver(move |ctx| make_bursty_signal(&program_ref, ctx, i as u64, seed, active))?;
    }
    let total_bytes: usize = session.reports().iter().map(|r| r.wire_bytes).sum();
    Ok(SensorRunStats {
        avg_ms: session.avg_processing_ms(),
        plan_installs: session.plan_installs(),
        avg_wire_bytes: total_bytes as f64 / messages.max(1) as f64,
    })
}

fn complexity_fixed_plan(version: SensorVersion, handler: &PartitionedHandler) -> Vec<PseId> {
    let program = handler.program();
    let mut plan: Vec<PseId> = handler
        .analysis()
        .pses()
        .iter()
        .enumerate()
        .filter(|(_, p)| p.inter.is_empty() && !p.edge.is_entry())
        .map(|(i, _)| i)
        .collect();
    let call_pc_of = |callee: &str| -> usize {
        program
            .function("track")
            .and_then(|f| {
                f.instrs.iter().position(|i| {
                    matches!(i, Instr::Assign { rvalue: Rvalue::Invoke { callee: c, .. }, .. } if c == callee)
                })
            })
            .expect("stage present")
    };
    match version {
        SensorVersion::Consumer => {
            plan.clear();
            let main =
                handler.analysis().cut.path_pses.iter().max_by_key(|v| v.len()).expect("main path");
            plan.push(*main.first().expect("first candidate"));
        }
        SensorVersion::Producer => {
            let pc = call_pc_of("stage_report");
            plan.push(
                handler
                    .analysis()
                    .pses()
                    .iter()
                    .position(|p| p.edge.from == pc)
                    .expect("PSE after final stage"),
            );
        }
        SensorVersion::Divided => {
            // Stage-count midpoint of the 6 stages: after stage_refine.
            let pc = call_pc_of("stage_refine");
            plan.push(
                handler
                    .analysis()
                    .pses()
                    .iter()
                    .position(|p| p.edge.from == pc)
                    .expect("PSE after midpoint stage"),
            );
        }
        SensorVersion::MethodPartitioning => panic!("adaptive version has no fixed plan"),
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_has_a_dense_pse_ladder() {
        let program = sensor_program().unwrap();
        let h = PartitionedHandler::analyze(Arc::clone(&program), "process", sensor_cost_model())
            .unwrap();
        // Entry + 13 chain edges (after the field load and each of the 12
        // stages) at minimum; the paper reports 21 for its handler.
        assert!(h.analysis().pses().len() >= 14, "PSE ladder: {}", h.analysis().pses().len());
    }

    #[test]
    fn full_pipeline_runs_and_delivers() {
        let program = sensor_program().unwrap();
        let mut full = ExecCtx::with_builtins(&program, consumer_builtins());
        let interp = mpart_ir::interp::Interp::new(&program);
        let args = make_signal(&program, &mut full, 0, 9).unwrap();
        let out = interp.run(&mut full, "process", args).unwrap();
        assert_eq!(out, Some(Value::Int(1)));
        assert_eq!(full.trace.len(), 1, "deliver_result ran once");
        // Non-sensor events are filtered.
        let out2 = interp.run(&mut full, "process", vec![Value::Int(4)]).unwrap();
        assert_eq!(out2, Some(Value::Int(0)));
    }

    #[test]
    fn fixed_plans_are_valid_cuts() {
        let program = sensor_program().unwrap();
        let h = PartitionedHandler::analyze(Arc::clone(&program), "process", sensor_cost_model())
            .unwrap();
        for version in [SensorVersion::Consumer, SensorVersion::Producer, SensorVersion::Divided] {
            let plan = fixed_plan(version, &h);
            h.plan().install(&plan);
            h.plan().validate_cut(h.analysis()).unwrap();
        }
    }

    #[test]
    fn unloaded_ordering_matches_table4_row0() {
        let setup = SensorSetup::intel_cluster(60, 11);
        let consumer = run_sensor_experiment(SensorVersion::Consumer, &setup).unwrap();
        let producer = run_sensor_experiment(SensorVersion::Producer, &setup).unwrap();
        let divided = run_sensor_experiment(SensorVersion::Divided, &setup).unwrap();
        let mp = run_sensor_experiment(SensorVersion::MethodPartitioning, &setup).unwrap();
        assert!(
            mp.avg_ms < divided.avg_ms
                && divided.avg_ms < producer.avg_ms
                && producer.avg_ms < consumer.avg_ms,
            "MP {} < Divided {} < Producer {} < Consumer {}",
            mp.avg_ms,
            divided.avg_ms,
            producer.avg_ms,
            consumer.avg_ms
        );
        // Calibration: Consumer Version near the paper's 88.44 ms.
        assert!((consumer.avg_ms - 88.44).abs() < 12.0, "consumer version {} ms", consumer.avg_ms);
    }

    #[test]
    fn consumer_load_barely_hurts_producer_version_and_mp() {
        let mut setup = SensorSetup::intel_cluster(80, 13);
        setup.consumer_load = HostLoad::constant(1.0);
        let producer = run_sensor_experiment(SensorVersion::Producer, &setup).unwrap();
        let consumer = run_sensor_experiment(SensorVersion::Consumer, &setup).unwrap();
        let mp = run_sensor_experiment(SensorVersion::MethodPartitioning, &setup).unwrap();

        let mut free = setup.clone();
        free.consumer_load = HostLoad::free();
        let producer_free = run_sensor_experiment(SensorVersion::Producer, &free).unwrap();
        let consumer_free = run_sensor_experiment(SensorVersion::Consumer, &free).unwrap();
        let mp_free = run_sensor_experiment(SensorVersion::MethodPartitioning, &free).unwrap();

        // Producer version is insensitive to consumer load (Figure 7).
        assert!(producer.avg_ms < producer_free.avg_ms * 1.15);
        // Consumer version degrades hard.
        assert!(consumer.avg_ms > consumer_free.avg_ms * 1.5);
        // MP shifts load away and degrades only mildly.
        assert!(mp.avg_ms < mp_free.avg_ms * 1.5, "MP {} vs free {}", mp.avg_ms, mp_free.avg_ms);
        assert!(mp.avg_ms < consumer.avg_ms);
    }

    #[test]
    fn heterogeneous_hosts_favor_mp_both_directions() {
        for setup in [SensorSetup::pc_to_sun(60, 17), SensorSetup::sun_to_pc(60, 17)] {
            let mut best_manual = f64::INFINITY;
            for version in
                [SensorVersion::Consumer, SensorVersion::Producer, SensorVersion::Divided]
            {
                let stats = run_sensor_experiment(version, &setup).unwrap();
                best_manual = best_manual.min(stats.avg_ms);
            }
            let mp = run_sensor_experiment(SensorVersion::MethodPartitioning, &setup).unwrap();
            assert!(
                mp.avg_ms <= best_manual * 1.05,
                "MP {} vs best manual {}",
                mp.avg_ms,
                best_manual
            );
        }
    }

    #[test]
    fn complexity_pipeline_costs_track_content() {
        let program = complexity_program().unwrap();
        let interp = mpart_ir::interp::Interp::new(&program);
        let mut quiet_ctx = ExecCtx::with_builtins(&program, complexity_builtins());
        let args = make_bursty_signal(&program, &mut quiet_ctx, 0, 3, false).unwrap();
        interp.run(&mut quiet_ctx, "track", args).unwrap();
        let mut active_ctx = ExecCtx::with_builtins(&program, complexity_builtins());
        let args = make_bursty_signal(&program, &mut active_ctx, 0, 3, true).unwrap();
        interp.run(&mut active_ctx, "track", args).unwrap();
        assert!(
            active_ctx.work > quiet_ctx.work * 3,
            "active {} vs quiet {}",
            active_ctx.work,
            quiet_ctx.work
        );
    }

    #[test]
    fn complexity_mp_beats_fixed_versions_on_bursty_traffic() {
        let mut best_fixed = f64::INFINITY;
        for version in [SensorVersion::Consumer, SensorVersion::Producer, SensorVersion::Divided] {
            let stats = run_complexity_experiment(version, 80, 0.5, 23).unwrap();
            best_fixed = best_fixed.min(stats.avg_ms);
        }
        let mp = run_complexity_experiment(SensorVersion::MethodPartitioning, 80, 0.5, 23).unwrap();
        assert!(mp.avg_ms <= best_fixed * 1.02, "MP {} vs best fixed {}", mp.avg_ms, best_fixed);
        assert!(mp.plan_installs >= 2, "MP re-split across bursts");
    }

    #[test]
    fn burst_schedule_is_deterministic_and_mixed() {
        let a = burst_schedule(100, 0.5, 9);
        let b = burst_schedule(100, 0.5, 9);
        assert_eq!(a, b);
        assert!(a.iter().any(|x| *x) && a.iter().any(|x| !*x));
        let mostly_quiet = burst_schedule(400, 0.9, 9);
        let active_count = mostly_quiet.iter().filter(|x| **x).count();
        assert!(active_count < 200, "90% quiet: {active_count} active");
    }

    #[test]
    fn signals_are_deterministic_per_seed() {
        let program = sensor_program().unwrap();
        let mut c1 = ExecCtx::new(&program);
        let mut c2 = ExecCtx::new(&program);
        let a = make_signal(&program, &mut c1, 5, 42).unwrap();
        let b = make_signal(&program, &mut c2, 5, 42).unwrap();
        let da = mpart_ir::marshal::deep_digest_many(&c1.heap, &a).unwrap();
        let db = mpart_ir::marshal::deep_digest_many(&c2.heap, &b).unwrap();
        assert_eq!(da, db);
    }
}
