//! # mpart-apps — the paper's two evaluation applications
//!
//! * [`image`] — communication-bound wireless image streaming (§5.1,
//!   Table 2): resize-to-display handlers under the data-size cost model;
//! * [`sensor`] — compute-bound sensor data processing (§5.2, Tables 3–4,
//!   Figures 7–8): a multi-stage pipeline under the execution-time cost
//!   model, with perturbation-thread load, plus the signal-complexity
//!   extension;
//! * [`inlining`] — the interprocedural-expansion extension: quantifies
//!   the benefit of splitting *inside* helper methods.

pub mod image;
pub mod inlining;
pub mod sensor;
