//! Chaos suite: the paper's two applications driven through drop /
//! duplicate / reorder / corrupt / partition storms on a supervised wire,
//! asserting that everything the subscriber applies is identical to an
//! unpartitioned oracle — and that the session degrades to the trivial
//! entry cut during an outage and re-promotes the optimized plan after
//! recovery.
//!
//! All storms are seeded; each scenario runs across several seeds and is
//! replayed to prove determinism.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use method_partitioning::apps::image;
use method_partitioning::apps::sensor;
use method_partitioning::core::failure::FailureConfig;
use method_partitioning::core::profile::TriggerPolicy;
use method_partitioning::ir::interp::ExecCtx;
use method_partitioning::ir::{IrError, Value};
use method_partitioning::jecho::{SimConfig, SimSession};
use method_partitioning::simnet::{FaultPlan, Host, Link, SimTime};

const MESSAGES: u64 = 30;

/// The seed matrix: the baked-in seeds plus `MPART_CHAOS_SEED` from the
/// environment — the CI chaos-matrix job sweeps that variable so every
/// scenario here replays under eight fixed seeds without recompiling.
fn seed_matrix(base: &[u64]) -> Vec<u64> {
    let mut seeds = base.to_vec();
    if let Some(seed) =
        std::env::var("MPART_CHAOS_SEED").ok().and_then(|s| s.trim().parse::<u64>().ok())
    {
        if !seeds.contains(&seed) {
            seeds.push(seed);
        }
    }
    seeds
}

/// A storm with every fault class plus a scheduled outage.
fn storm(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_drop(0.12)
        .with_duplicate(0.10)
        .with_reorder(0.10)
        .with_corrupt(0.15)
        .with_partition(20..36)
}

fn sensor_session(fault: Option<FaultPlan>) -> SimSession {
    sensor_session_with(fault, FailureConfig::default())
}

fn sensor_session_with(fault: Option<FaultPlan>, failure: FailureConfig) -> SimSession {
    let program = sensor::sensor_program().unwrap();
    let mut link = Link::new("lan", SimTime::from_millis(1), 1_000_000.0);
    if let Some(plan) = fault {
        link = link.with_fault_plan(plan);
    }
    SimSession::adaptive(
        Arc::clone(&program),
        "process",
        sensor::sensor_cost_model(),
        sensor::stage_builtins(),
        sensor::consumer_builtins(),
        SimConfig::new(
            Host::new("producer", 760_000.0),
            link,
            Host::new("consumer", 281_000.0),
            TriggerPolicy::Rate(2),
        )
        .with_degradation(3, 3)
        .with_failure(failure),
    )
    .unwrap()
}

/// Event mix: every third message is a foreign event (filtered, returns
/// 0), the rest are real signals (processed, returns 1) — so the per-seq
/// result stream carries identity, not just a constant.
fn sensor_event(
    program: &Arc<method_partitioning::ir::Program>,
    seq: u64,
) -> impl FnOnce(&mut ExecCtx) -> Result<Vec<Value>, IrError> + '_ {
    move |ctx| {
        if seq.is_multiple_of(3) {
            Ok(vec![Value::Int(seq as i64)])
        } else {
            sensor::make_signal(program, ctx, seq, 0xC0FFEE)
        }
    }
}

/// The unpartitioned oracle: same traffic over a fault-free link.
fn sensor_oracle() -> BTreeMap<u64, Option<Value>> {
    let program = sensor::sensor_program().unwrap();
    let mut session = sensor_session(None);
    let mut results = BTreeMap::new();
    for seq in 1..=MESSAGES {
        let report = session.deliver(sensor_event(&program, seq)).unwrap();
        assert!(report.delivered);
        results.insert(report.seq, report.ret);
    }
    results
}

fn run_sensor_storm(seed: u64) -> SimSession {
    let program = sensor::sensor_program().unwrap();
    let mut session = sensor_session(Some(storm(seed)));
    for seq in 1..=MESSAGES {
        session.deliver(sensor_event(&program, seq)).unwrap();
    }
    let left = session.drain(500).unwrap();
    assert_eq!(left, 0, "seed {seed}: storm tail drained");
    session
}

/// Mid-batch-fault ordering: with batching enabled, a storm's drop /
/// corrupt / reorder decisions land on whole batch frames, so a single
/// fault hits several coalesced envelopes at once. Re-running the sensor
/// storm over the seed matrix with batched framing must still apply every
/// message exactly once, in per-source order, identical to the oracle —
/// the frame (not the member) is the unit of loss, and the zero-copy
/// batch encoder gathers member segments without disturbing member
/// boundaries.
#[test]
fn batched_sensor_chaos_matches_oracle_across_seeds() {
    let oracle = sensor_oracle();
    let program = sensor::sensor_program().unwrap();
    let mut faulted_frames = 0;
    for seed in seed_matrix(&[1, 7, 42]) {
        let mut link = Link::new("lan", SimTime::from_millis(1), 1_000_000.0);
        link = link.with_fault_plan(storm(seed));
        let mut session = SimSession::adaptive(
            Arc::clone(&program),
            "process",
            sensor::sensor_cost_model(),
            sensor::stage_builtins(),
            sensor::consumer_builtins(),
            SimConfig::new(
                Host::new("producer", 760_000.0),
                link,
                Host::new("consumer", 281_000.0),
                TriggerPolicy::Rate(2),
            )
            .with_degradation(3, 3)
            .with_batching(4, SimTime::from_millis(5)),
        )
        .unwrap();
        for seq in 1..=MESSAGES {
            session.deliver(sensor_event(&program, seq)).unwrap();
        }
        let left = session.drain(500).unwrap();
        assert_eq!(left, 0, "seed {seed}: batched storm tail drained");
        assert_eq!(
            session.applied_results(),
            &oracle,
            "seed {seed}: batched framing preserved exactly-once ordering under faults"
        );
        assert!(session.envelope_batches() > 0, "seed {seed}: batching actually engaged");
        faulted_frames += session.frames_lost() + session.frames_corrupted();
        // The zero-copy counters registered and moved: the sensor app's
        // small envelopes inline (copied); nothing here crosses the
        // borrow threshold.
        let snap = session.handler().obs().registry().snapshot();
        assert!(
            snap.counter_sum("marshal_copied_bytes_total")
                + snap.counter_sum("marshal_borrowed_bytes_total")
                > 0,
            "seed {seed}: marshal accounting moved"
        );
    }
    assert!(faulted_frames > 0, "the storms actually dropped or corrupted batch frames");
}

#[test]
fn sensor_chaos_matches_oracle_across_seeds() {
    let oracle = sensor_oracle();
    assert_eq!(oracle.len(), MESSAGES as usize);
    let mut corrupted = 0;
    for seed in seed_matrix(&[1, 7, 42]) {
        let session = run_sensor_storm(seed);
        assert_eq!(
            session.applied_results(),
            &oracle,
            "seed {seed}: every message applied exactly once, identical to the oracle"
        );
        assert!(session.frames_lost() > 0, "seed {seed}: the storm actually lost frames");
        assert!(session.retransmissions() > 0, "seed {seed}: losses forced retransmissions");
        assert!(
            session.duplicates_suppressed() > 0,
            "seed {seed}: duplicate deliveries were suppressed"
        );
        corrupted += session.frames_corrupted();
    }
    assert!(corrupted > 0, "corruption was exercised and caught by the checksum");
}

#[test]
fn sensor_outage_degrades_and_recovers() {
    for seed in seed_matrix(&[1, 7, 42]) {
        let session = run_sensor_storm(seed);
        assert!(
            session.degradations() >= 1,
            "seed {seed}: the partition window exhausted the failure budget"
        );
        assert!(session.promotions() >= 1, "seed {seed}: recovery re-promoted the optimized plan");
        assert!(!session.is_degraded(), "seed {seed}: healthy at the end");
        // During the outage the modulator fell back to the entry cut, so
        // some applied messages carry the trivial split.
        let entry = session.handler().entry_pse().unwrap();
        assert!(
            session.reports().iter().any(|r| r.split_pse == entry),
            "seed {seed}: some messages shipped raw during the outage"
        );
    }
}

#[test]
fn trace_ring_records_degradation_cycle_in_order() {
    use method_partitioning::obs::TraceEvent;
    for seed in seed_matrix(&[1, 7, 42]) {
        let session = run_sensor_storm(seed);
        let transitions: Vec<&'static str> = session
            .obs()
            .trace()
            .snapshot()
            .iter()
            .filter_map(|rec| match rec.event {
                TraceEvent::Degraded { .. } => Some("degraded"),
                TraceEvent::Promoted { .. } => Some("promoted"),
                _ => None,
            })
            .collect();
        // Health transitions must strictly alternate, starting with the
        // outage-induced degradation, and the ring must agree with the
        // session's own transition counters.
        for (i, kind) in transitions.iter().enumerate() {
            let expected = if i % 2 == 0 { "degraded" } else { "promoted" };
            assert_eq!(
                *kind, expected,
                "seed {seed}: transition {i} out of order: {transitions:?}"
            );
        }
        let degraded = transitions.iter().filter(|k| **k == "degraded").count() as u64;
        let promoted = transitions.iter().filter(|k| **k == "promoted").count() as u64;
        assert_eq!(degraded, session.degradations(), "seed {seed}: ring vs counter");
        assert_eq!(promoted, session.promotions(), "seed {seed}: ring vs counter");
        assert!(degraded >= 1, "seed {seed}: the outage shows up in the trace ring");
    }
}

#[test]
fn sensor_chaos_is_deterministic() {
    let a = run_sensor_storm(7);
    let b = run_sensor_storm(7);
    assert_eq!(a.applied_results(), b.applied_results());
    assert_eq!(a.frames_lost(), b.frames_lost());
    assert_eq!(a.frames_corrupted(), b.frames_corrupted());
    assert_eq!(a.duplicates_suppressed(), b.duplicates_suppressed());
    assert_eq!(a.retransmissions(), b.retransmissions());
    assert_eq!(a.degradations(), b.degradations());
    assert_eq!(a.promotions(), b.promotions());
}

fn image_session(fault: Option<FaultPlan>) -> SimSession {
    let program = image::image_program().unwrap();
    let mut link = Link::new("wifi", SimTime::from_millis(5), 300_000.0);
    if let Some(plan) = fault {
        link = link.with_fault_plan(plan);
    }
    SimSession::adaptive(
        Arc::clone(&program),
        "push",
        image::image_cost_model(&program),
        image::server_builtins(&program),
        image::client_builtins(&program),
        SimConfig::new(
            Host::new("server", 20_000_000.0),
            link,
            Host::new("client", 1_520_000.0),
            TriggerPolicy::Rate(2),
        )
        .with_degradation(3, 3),
    )
    .unwrap()
}

/// Frames alternate between smaller and larger than the display target,
/// with every fourth event foreign (filtered).
fn image_event(
    program: &Arc<method_partitioning::ir::Program>,
    seq: u64,
) -> impl FnOnce(&mut ExecCtx) -> Result<Vec<Value>, IrError> + '_ {
    move |ctx| {
        if seq.is_multiple_of(4) {
            Ok(vec![Value::Int(seq as i64)])
        } else {
            let side = if seq.is_multiple_of(2) { 80 } else { 240 };
            image::make_frame(program, ctx, side)
        }
    }
}

#[test]
fn image_chaos_matches_oracle_across_seeds() {
    let program = image::image_program().unwrap();
    let mut oracle = BTreeMap::new();
    let mut clean = image_session(None);
    for seq in 1..=MESSAGES {
        let report = clean.deliver(image_event(&program, seq)).unwrap();
        oracle.insert(report.seq, report.ret);
    }

    for seed in seed_matrix(&[3, 11, 99]) {
        let mut session = image_session(Some(storm(seed)));
        for seq in 1..=MESSAGES {
            session.deliver(image_event(&program, seq)).unwrap();
        }
        assert_eq!(session.drain(500).unwrap(), 0, "seed {seed}");
        assert_eq!(session.applied_results(), &oracle, "seed {seed}");
        assert!(session.degradations() >= 1, "seed {seed}");
        assert!(session.promotions() >= 1, "seed {seed}");
        // The client painted exactly the valid frames, once each.
        let painted =
            session.receiver_ctx().trace.iter().filter(|t| t.callee == "display_image").count();
        let valid = (1..=MESSAGES).filter(|s| s % 4 != 0).count();
        assert_eq!(painted, valid, "seed {seed}: no frame lost or painted twice");
    }
}

#[test]
fn plan_update_lands_while_message_in_flight() {
    // Epoch race: one message is held back by a one-attempt outage while
    // adaptation keeps installing new plans; when it finally crosses, the
    // demodulator must accept its (superseded) epoch and produce the same
    // result as the oracle.
    let program = sensor::sensor_program().unwrap();
    let oracle = sensor_oracle();

    let mut session = sensor_session(Some(FaultPlan::new(5).with_partition(4..6)));
    let mut stalled = None;
    for seq in 1..=MESSAGES {
        let report = session.deliver(sensor_event(&program, seq)).unwrap();
        if !report.delivered && stalled.is_none() {
            stalled = Some((report.seq, session.handler().plan().epoch()));
        }
    }
    assert_eq!(session.drain(100).unwrap(), 0);
    let (stalled_seq, epoch_at_send) = stalled.expect("the outage stalled a message");
    // Plans moved on while the message waited.
    assert!(
        session.handler().plan().epoch() > epoch_at_send,
        "a plan update landed between send and demodulation"
    );
    assert!(session.retransmissions() >= 1);
    // The old-epoch message was still demodulated, correctly.
    assert_eq!(session.applied_results(), &oracle);
    assert_eq!(
        session.applied_results()[&stalled_seq],
        oracle[&stalled_seq],
        "the in-flight message survived the plan change"
    );
}

#[test]
fn poisoned_envelope_is_quarantined_while_the_session_keeps_serving() {
    // The failure-domain acceptance scenario: one envelope panics the
    // demodulator on *every* delivery attempt. The session must keep
    // serving on the degraded entry cut, the poison must exhaust its
    // retry budget and move to the dead-letter ring, and the ack
    // watermark must advance past it — no other message lost or
    // duplicated.
    let program = sensor::sensor_program().unwrap();
    let oracle = sensor_oracle();
    for seed in seed_matrix(&[1, 7, 42]) {
        let mut session = sensor_session_with(
            Some(storm(seed).with_poison(13)),
            FailureConfig::default().with_retry_budget(12),
        );
        for seq in 1..=MESSAGES {
            session.deliver(sensor_event(&program, seq)).unwrap();
        }
        assert_eq!(
            session.drain(500).unwrap(),
            0,
            "seed {seed}: the watermark advanced past the quarantined envelope"
        );
        let letters = session.dead_letters();
        assert_eq!(letters.len(), 1, "seed {seed}: only the poisoned envelope was quarantined");
        assert_eq!(letters[0].seq, 13, "seed {seed}");
        assert_eq!(session.quarantined(), 1, "seed {seed}");
        assert!(
            session.handler_panics() >= u64::from(letters[0].failures),
            "seed {seed}: every quarantine failure was an isolated panic"
        );
        // Everything else matches the fault-free oracle exactly once.
        let mut expected = oracle.clone();
        expected.remove(&13);
        assert_eq!(session.applied_results(), &expected, "seed {seed}");
        assert!(
            session.degradations() >= 1,
            "seed {seed}: repeated panics degraded the session to the entry cut"
        );
        // The session kept serving throughout: raw entry-cut shipments
        // appear among the applied reports (degraded-mode service), and
        // nothing is stuck in the retransmit window.
        let entry = session.handler().entry_pse().unwrap();
        assert!(
            session.reports().iter().any(|r| r.split_pse == entry),
            "seed {seed}: degraded-mode messages were still served on the entry cut"
        );
        assert_eq!(session.unacked(), 0, "seed {seed}: nothing stuck in the retransmit window");
    }
}

#[test]
fn chaos_with_random_handler_panics_keeps_exactly_once_accounting() {
    // Exactly-once accounting under randomized handler panics: every
    // delivered envelope ends in exactly one of two places — the applied
    // results (acked) or the dead-letter ring (quarantined). Never both,
    // never neither.
    let program = sensor::sensor_program().unwrap();
    let oracle = sensor_oracle();
    for seed in seed_matrix(&[1, 7, 42]) {
        let mut session = sensor_session_with(
            Some(storm(seed).with_handler_panic(0.25)),
            FailureConfig::default().with_retry_budget(2),
        );
        for seq in 1..=MESSAGES {
            session.deliver(sensor_event(&program, seq)).unwrap();
        }
        assert_eq!(session.drain(500).unwrap(), 0, "seed {seed}: tail drained");
        let applied: BTreeSet<u64> = session.applied_results().keys().copied().collect();
        let quarantined: BTreeSet<u64> = session.dead_letters().iter().map(|l| l.seq).collect();
        assert!(
            applied.is_disjoint(&quarantined),
            "seed {seed}: no envelope both acked and dead-lettered"
        );
        let mut union = applied.clone();
        union.extend(quarantined.iter().copied());
        let all: BTreeSet<u64> = (1..=MESSAGES).collect();
        assert_eq!(union, all, "seed {seed}: every envelope resolved exactly once");
        assert_eq!(
            session.quarantined() as usize,
            quarantined.len(),
            "seed {seed}: ring count agrees with the quarantined set"
        );
        // What *was* applied is byte-identical to the fault-free oracle.
        for (seq, ret) in session.applied_results() {
            assert_eq!(ret, &oracle[seq], "seed {seed}: applied result {seq} matches the oracle");
        }
    }
}

// --------------------------------------------------------------------
// Node-kill chaos: the multi-host routing layer under host faults.
// Sessions hash across an in-process LocalNode cluster sharing one
// journal and analysis cache; a NodeFaultPlan kills and revives nodes
// between delivery rounds. The invariants are the tentpole's acceptance
// bar: exactly-once numbering and per-message identity across every
// migration, and zero static re-analysis (asserted on the cache-miss
// gauge).
// --------------------------------------------------------------------

use method_partitioning::analysis::AnalysisCache;
use method_partitioning::core::journal::SessionJournal;
use method_partitioning::core::router::{LocalNode, Router, RouterConfig, SessionSpec};
use method_partitioning::core::session::SessionConfig;
use method_partitioning::cost::DataSizeModel;
use method_partitioning::ir::interp::BuiltinRegistry;
use method_partitioning::ir::parse::parse_program;
use method_partitioning::simnet::NodeFaultPlan;

const ROUTE_SRC: &str = r#"
    fn route_handle(x, salt) {
        a = x * 3
        b = a + salt
        native emit(b)
        return b
    }
"#;

/// A routed cluster: `nodes_n` LocalNodes over one shared journal and
/// cache, `sessions` sessions hashed across them.
fn route_cluster(
    nodes_n: usize,
    sessions: usize,
) -> (Vec<LocalNode>, Router, Vec<u64>, Arc<AnalysisCache>) {
    route_cluster_with(nodes_n, sessions, None)
}

/// [`route_cluster`] with an optional plan guard armed on every node —
/// the §16 transactional-reconfiguration drills.
fn route_cluster_with(
    nodes_n: usize,
    sessions: usize,
    guard: Option<method_partitioning::core::reconfig::GuardConfig>,
) -> (Vec<LocalNode>, Router, Vec<u64>, Arc<AnalysisCache>) {
    let program = Arc::new(parse_program(ROUTE_SRC).unwrap());
    let journal = Arc::new(SessionJournal::in_memory());
    let cache = Arc::new(AnalysisCache::new(16));
    let mut config = SessionConfig::default().with_journal(Arc::clone(&journal));
    if let Some(g) = guard {
        config = config.with_guard(g);
    }
    let nodes: Vec<LocalNode> = (0..nodes_n)
        .map(|i| LocalNode::new(format!("n{i}"), config.clone(), Arc::clone(&cache)))
        .collect();
    let mut router = Router::new(RouterConfig::default(), journal, Arc::clone(&cache));
    for node in &nodes {
        router.add_node(Box::new(node.clone()));
    }
    let mut receiver_builtins = BuiltinRegistry::new();
    receiver_builtins.register_native("emit", 1, |_, _| Ok(Value::Null));
    let gids: Vec<u64> = (0..sessions)
        .map(|_| {
            router
                .open_session(SessionSpec {
                    program: Arc::clone(&program),
                    func: "route_handle".into(),
                    model: Arc::new(DataSizeModel::new()),
                    sender_builtins: BuiltinRegistry::new(),
                    receiver_builtins: receiver_builtins.clone(),
                })
                .unwrap()
        })
        .collect();
    (nodes, router, gids, cache)
}

/// Drives rounds `start..start + rounds`, applying the node fault plan
/// before each and heartbeating after each; returns the `(seq, ret)`
/// stream per session. `start` lets a caller interleave out-of-band
/// control actions (a drain, a close) between two driven stretches while
/// keeping round identities absolute.
fn drive_routed(
    router: &mut Router,
    nodes: &[LocalNode],
    gids: &[u64],
    plan: &NodeFaultPlan,
    start: u64,
    rounds: u64,
) -> BTreeMap<u64, Vec<(u64, i64)>> {
    let mut seen: BTreeMap<u64, Vec<(u64, i64)>> = BTreeMap::new();
    for round in start..start + rounds {
        for node in plan.kills_at(round) {
            nodes[node].kill();
        }
        for node in plan.revives_at(round) {
            nodes[node].revive();
        }
        for node in plan.partitions_at(round) {
            nodes[node].partition();
        }
        for node in plan.heals_at(round) {
            nodes[node].heal();
        }
        for gid in gids {
            let out = router
                .deliver(*gid, vec![Value::Int(round as i64), Value::Int(*gid as i64)])
                .unwrap();
            let ret = match out.ret {
                Some(Value::Int(v)) => v,
                other => panic!("scalar handler returned {other:?}"),
            };
            seen.entry(*gid).or_default().push((out.seq, ret));
        }
        router.heartbeat().unwrap();
    }
    seen
}

/// Exactly-once across migrations: per session, sequence numbers are the
/// contiguous 1..=rounds (nothing re-applied past an ack watermark,
/// nothing skipped) and every return value carries the round identity.
fn assert_exactly_once(
    seen: &BTreeMap<u64, Vec<(u64, i64)>>,
    gids: &[u64],
    rounds: u64,
    tag: &str,
) {
    for gid in gids {
        let stream = &seen[gid];
        let seqs: Vec<u64> = stream.iter().map(|(s, _)| *s).collect();
        let expected: Vec<u64> = (1..=rounds).collect();
        assert_eq!(seqs, expected, "{tag}: session {gid} numbering is contiguous exactly-once");
        for (round, (_, ret)) in stream.iter().enumerate() {
            assert_eq!(
                *ret,
                3 * round as i64 + *gid as i64,
                "{tag}: session {gid} round {round} result identity"
            );
        }
    }
}

#[test]
fn routed_cluster_survives_a_node_kill_with_exactly_once_migration() {
    for seed in seed_matrix(&[1, 7, 42]) {
        let (nodes, mut router, gids, cache) = route_cluster(3, 6);
        let victim = (seed % 3) as usize;
        let kill_round = 3 + seed % 4;
        let rounds = 12;
        let homed = gids.iter().filter(|g| (**g % 3) as usize == victim).count() as u64;
        let misses_after_open = cache.misses();

        let plan = NodeFaultPlan::new().with_kill(kill_round, victim);
        let seen = drive_routed(&mut router, &nodes, &gids, &plan, 0, rounds);

        assert_exactly_once(&seen, &gids, rounds, &format!("seed {seed}"));
        assert_eq!(
            cache.misses(),
            misses_after_open,
            "seed {seed}: failover migration performed zero re-analysis"
        );
        let snapshot = router.obs().registry().snapshot();
        assert_eq!(
            snapshot.counter_sum("node_failovers_total"),
            1,
            "seed {seed}: one crash, one failover"
        );
        assert_eq!(
            snapshot.counter_sum("sessions_migrated_total"),
            homed,
            "seed {seed}: exactly the dead node's sessions migrated"
        );
        assert!(!router.node_is_up(victim), "seed {seed}: no revive, node stays down");
        for gid in &gids {
            assert_ne!(
                router.placement(*gid),
                Some(victim),
                "seed {seed}: nothing is still placed on the dead node"
            );
        }
    }
}

#[test]
fn killed_node_rejoins_and_takes_its_home_sessions_back() {
    for seed in seed_matrix(&[1, 7, 42]) {
        let (nodes, mut router, gids, cache) = route_cluster(3, 6);
        let victim = (seed % 3) as usize;
        let rounds = 14;
        let homed = gids.iter().filter(|g| (**g % 3) as usize == victim).count() as u64;
        let misses_after_open = cache.misses();

        // Revive at round 7; the hysteresis streak (3 clean beats) makes
        // the rejoin migration land around round 9, inside the run.
        let plan = NodeFaultPlan::new().with_kill(4, victim).with_revive(7, victim);
        let seen = drive_routed(&mut router, &nodes, &gids, &plan, 0, rounds);

        assert_exactly_once(&seen, &gids, rounds, &format!("seed {seed}"));
        assert_eq!(cache.misses(), misses_after_open, "seed {seed}: zero re-analysis both ways");
        assert!(router.node_is_up(victim), "seed {seed}: the node rejoined");
        let snapshot = router.obs().registry().snapshot();
        assert_eq!(
            snapshot.counter_sum("sessions_migrated_total"),
            2 * homed,
            "seed {seed}: every displaced session migrated out and back home"
        );
        for gid in &gids {
            if (*gid % 3) as usize == victim {
                assert_eq!(
                    router.placement(*gid),
                    Some(victim),
                    "seed {seed}: rejoin rebalanced session {gid} back to its home node"
                );
            }
        }
    }
}

#[test]
fn flapping_node_never_breaks_exactly_once() {
    for seed in seed_matrix(&[1, 7, 42]) {
        let (nodes, mut router, gids, cache) = route_cluster(3, 6);
        let victim = (seed % 3) as usize;
        let plan = NodeFaultPlan::new().with_flapping(seed, victim, 2, 6, 3);
        let rounds = plan.horizon() + 6;
        let misses_after_open = cache.misses();

        let seen = drive_routed(&mut router, &nodes, &gids, &plan, 0, rounds);

        assert_exactly_once(&seen, &gids, rounds, &format!("seed {seed}"));
        assert_eq!(
            cache.misses(),
            misses_after_open,
            "seed {seed}: repeated migrations still perform zero re-analysis"
        );
        let snapshot = router.obs().registry().snapshot();
        assert!(
            snapshot.counter_sum("node_failovers_total") >= 1,
            "seed {seed}: the flapping node tripped at least one failover"
        );
        assert!(
            snapshot.counter_sum("sessions_migrated_total") >= homed_count(&gids, victim),
            "seed {seed}: at least one full evacuation happened"
        );
    }
}

fn homed_count(gids: &[u64], node: usize) -> u64 {
    gids.iter().filter(|g| (**g % 3) as usize == node).count() as u64
}

/// The survived-node failover drill: a heartbeat partition (node alive,
/// unreachable) trips failover and strands orphaned copies on the
/// partitioned host; the heal + rejoin tick must reclaim every orphan so
/// `worker_slots_active` returns to baseline — the leak this PR closes.
#[test]
fn partitioned_node_failover_reclaims_every_orphan_slot() {
    for seed in seed_matrix(&[1, 7, 42]) {
        let (nodes, mut router, gids, cache) = route_cluster(3, 6);
        let victim = (seed % 3) as usize;
        let rounds = 16;
        let misses_after_open = cache.misses();
        let baseline: Vec<usize> = nodes.iter().map(|n| n.sessions()).collect();

        // Cut at round 3, heal at round 8: the three-miss budget declares
        // the node dead mid-window, the rejoin streak lands inside the
        // run.
        let plan = NodeFaultPlan::new().with_partition(3, 8, victim);
        let seen = drive_routed(&mut router, &nodes, &gids, &plan, 0, rounds);

        assert_exactly_once(&seen, &gids, rounds, &format!("seed {seed}"));
        assert_eq!(
            cache.misses(),
            misses_after_open,
            "seed {seed}: orphan reclamation performed zero re-analysis"
        );
        assert_eq!(router.orphans(), 0, "seed {seed}: no orphan record left pending");
        let snapshot = router.obs().registry().snapshot();
        assert!(
            snapshot.counter_sum("orphans_reclaimed_total") >= 1,
            "seed {seed}: the stranded copies were reclaimed, not forgotten"
        );
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(
                node.sessions(),
                baseline[i],
                "seed {seed}: node {i} worker slots back to baseline — zero leaked"
            );
        }
        let active: f64 = router
            .cluster_stats()
            .iter()
            .filter(|(n, _)| n.starts_with("worker_slots_active{node="))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(
            active as usize,
            gids.len(),
            "seed {seed}: worker_slots_active gauge agrees across the cluster"
        );
    }
}

/// Elastic scale-down mid-run: drain a node between two driven
/// stretches. The drain must empty the node with zero re-analysis,
/// compact the shared journal down to the live set, and leave the
/// exactly-once numbering unbroken across the migration.
#[test]
fn drained_node_empties_mid_run_without_breaking_exactly_once() {
    for seed in seed_matrix(&[1, 7, 42]) {
        let (nodes, mut router, gids, cache) = route_cluster(3, 6);
        let victim = (seed % 3) as usize;
        let quiet = NodeFaultPlan::new();
        let mut seen = drive_routed(&mut router, &nodes, &gids, &quiet, 0, 4);

        let misses_before = cache.misses();
        let journal_before = router.journal().len();
        let moved = router.drain_node(victim).unwrap();
        assert_eq!(
            u64::from(moved),
            homed_count(&gids, victim),
            "seed {seed}: every hosted session moved"
        );
        assert_eq!(nodes[victim].sessions(), 0, "seed {seed}: the drained node is empty");
        assert!(!router.node_is_up(victim), "seed {seed}: the drained node left the ring");
        assert_eq!(cache.misses(), misses_before, "seed {seed}: drain performed zero re-analysis");
        assert!(
            router.journal().len() < journal_before,
            "seed {seed}: drain compacted the journal ({} -> {})",
            journal_before,
            router.journal().len()
        );

        let tail = drive_routed(&mut router, &nodes, &gids, &quiet, 4, 4);
        for (gid, stream) in tail {
            seen.entry(gid).or_default().extend(stream);
        }
        assert_exactly_once(&seen, &gids, 8, &format!("seed {seed}"));
        for gid in &gids {
            assert_ne!(
                router.placement(*gid),
                Some(victim),
                "seed {seed}: nothing is placed on the drained node"
            );
        }
    }
}

/// The close-during-partition race: a session is closed while its home
/// node is unreachable. When the partition heals, the rejoin rebalance
/// must NOT re-migrate the closed session home, and the orphaned copy on
/// the healed node must still be reclaimed.
#[test]
fn close_during_partition_never_resurrects_the_session() {
    for seed in seed_matrix(&[1, 7, 42]) {
        let (nodes, mut router, gids, _cache) = route_cluster(3, 6);
        let victim = (seed % 3) as usize;
        let closed = *gids.iter().find(|g| (**g % 3) as usize == victim).unwrap();
        for &gid in &gids {
            router.deliver(gid, vec![Value::Int(0), Value::Int(gid as i64)]).unwrap();
        }

        nodes[victim].partition();
        for _ in 0..3 {
            router.heartbeat().unwrap();
        }
        assert!(!router.node_is_up(victim), "seed {seed}: the partition tripped failover");

        // Close while the home node is unreachable.
        let watermark = router.close_session(closed).unwrap();
        assert_eq!(watermark, 1, "seed {seed}: the final ack watermark survived the outage");
        assert_eq!(router.placement(closed), None);

        nodes[victim].heal();
        for _ in 0..4 {
            router.heartbeat().unwrap();
        }
        assert!(router.node_is_up(victim), "seed {seed}: the node rejoined");
        assert_eq!(
            router.placement(closed),
            None,
            "seed {seed}: rejoin did not resurrect the closed session"
        );
        assert!(
            router.deliver(closed, vec![Value::Int(1), Value::Int(closed as i64)]).is_err(),
            "seed {seed}: the closed session refuses deliveries"
        );
        assert_eq!(router.orphans(), 0, "seed {seed}: the healed node's orphans were reclaimed");

        // The survivors keep serving with unbroken numbering, and no
        // worker slot anywhere still belongs to the closed session.
        for &gid in gids.iter().filter(|g| **g != closed) {
            let out = router.deliver(gid, vec![Value::Int(1), Value::Int(gid as i64)]).unwrap();
            assert_eq!(out.seq, 2, "seed {seed}: session {gid} numbered continuously");
        }
        let total: usize = nodes.iter().map(|n| n.sessions()).sum();
        assert_eq!(
            total,
            gids.len() - 1,
            "seed {seed}: exactly the closed session's slot was released cluster-wide"
        );
    }
}

// --------------------------------------------------------------------
// Transactional reconfiguration drills (DESIGN.md §16): prepare
// timeouts, guard-breach rollbacks, and mid-canary node death.
// --------------------------------------------------------------------

use std::time::Duration;

use method_partitioning::core::reconfig::GuardConfig;
use method_partitioning::core::session::SessionManager;
use mpart::PartitionedHandler;

/// A reference analysis of the routed handler: the cluster nodes all run
/// the same deployment, so enumerating alternate valid cuts here is
/// enumerating theirs.
fn alternate_cut(program: &Arc<method_partitioning::ir::Program>) -> Vec<usize> {
    let handler = PartitionedHandler::analyze(
        Arc::clone(program),
        "route_handle",
        Arc::new(DataSizeModel::new()),
    )
    .unwrap();
    let n = handler.analysis().pses().len();
    (0..n)
        .map(|p| vec![p])
        .find(|c| handler.validate_candidate(c).is_ok() && !handler.plan().active_eq(c))
        .expect("ROUTE_SRC has an alternate valid cut")
}

/// A prepare that cannot finish inside its budget times out without
/// touching the serving plan: the worker is pinned by a slow in-flight
/// delivery, the Plan job queues behind it (FIFO), and the manager's
/// deadline fires. Service resumes on the old plan as if nothing
/// happened, and the timeout is counted.
#[test]
fn prepare_timeout_leaves_the_serving_plan_untouched() {
    let src = r#"
        fn slow(x) {
            y = x * 2
            native nap(y)
            return y
        }
    "#;
    let program = Arc::new(parse_program(src).unwrap());
    let mut receiver = BuiltinRegistry::new();
    receiver.register_native("nap", 1, |_, args| {
        if matches!(args.first(), Some(Value::Int(v)) if *v < 0) {
            std::thread::sleep(Duration::from_millis(400));
        }
        Ok(Value::Null)
    });
    let mut mgr = SessionManager::new(
        SessionConfig::default().with_workers(1).with_guard(GuardConfig::default()),
    );
    let id = mgr
        .open_session(
            Arc::clone(&program),
            "slow",
            Arc::new(DataSizeModel::new()),
            BuiltinRegistry::new(),
            receiver,
        )
        .unwrap();
    mgr.deliver(id, |_| Ok(vec![Value::Int(3)])).unwrap();
    let handler = Arc::clone(mgr.handler(id).unwrap());
    let before = handler.plan().active();
    let epoch_before = handler.plan().epoch();

    // Pin the worker: a negative frame naps 400ms inside the handler.
    let pending = mgr.submit(id, |_| Ok(vec![Value::Int(-1)])).unwrap();
    let n = handler.analysis().pses().len();
    let alt = (0..n)
        .map(|p| vec![p])
        .find(|c| handler.validate_candidate(c).is_ok() && !handler.plan().active_eq(c))
        .expect("slow handler has an alternate valid cut");
    let err = mgr.prepare_plan(id, &alt, Duration::from_millis(40)).unwrap_err();
    assert!(
        matches!(err, method_partitioning::ir::IrError::Deadline(_)),
        "a wedged prepare surfaces as a deadline, got {err}"
    );
    pending.wait().unwrap();

    // The old plan never stopped serving and was never replaced.
    assert_eq!(handler.plan().active(), before);
    assert_eq!(handler.plan().epoch(), epoch_before);
    let out = mgr.deliver(id, |_| Ok(vec![Value::Int(5)])).unwrap();
    assert_eq!(out.ret, Some(Value::Int(10)));
    let snapshot = handler.obs().registry().snapshot();
    assert_eq!(
        snapshot
            .metrics
            .iter()
            .find(|m| m.identity() == "plan_prepares_total{outcome=\"timeout\"}")
            .map(|m| match m.value {
                method_partitioning::obs::MetricValue::Counter(v) => v,
                _ => 0,
            }),
        Some(1),
        "the timeout was counted"
    );
    assert_eq!(snapshot.counter_sum("plan_rollbacks_total"), 0);
    mgr.shutdown();
}

/// Satellite: a dead-silent remote during prepare surfaces as a
/// transport error inside the per-call deadline — never a wedge. The
/// "node" here is a raw listener that accepts and then says nothing.
#[test]
fn hung_remote_prepare_fails_fast_as_transport() {
    use method_partitioning::core::router::{NodeEndpoint, NodeError};
    use method_partitioning::jecho::node::TcpNode;
    use method_partitioning::jecho::RetryPolicy;

    let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let port = listener.local_addr().unwrap().port();
    let hold = std::thread::spawn(move || {
        // Accept and hold the sockets open without ever responding.
        let mut held = Vec::new();
        while let Ok((stream, _)) = listener.accept() {
            held.push(stream);
            if held.len() >= 4 {
                break;
            }
        }
        held
    });
    let policy = RetryPolicy {
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(5),
        max_attempts: 2,
        ..RetryPolicy::default()
    };
    let mut node = TcpNode::new("mute", port, policy);
    let started = std::time::Instant::now();
    let err = node.prepare_plan(0, &[1], Duration::from_millis(80)).unwrap_err();
    assert!(matches!(err, NodeError::Transport(_)), "hung remote: {err:?}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "the per-call deadline bounded the hang: {:?}",
        started.elapsed()
    );
    drop(node);
    let _ = std::net::TcpStream::connect(("127.0.0.1", port));
    let _ = std::net::TcpStream::connect(("127.0.0.1", port));
    let _ = hold.join();
}

/// The §16 acceptance drill: a guard-breaching plan commits, trips the
/// canary, rolls back automatically, and lands in quarantine — with zero
/// envelope loss and contiguous ack watermarks across
/// prepare → commit → rollback, per the exactly-once oracle.
#[test]
fn guard_breach_rolls_back_and_quarantines_across_the_cluster() {
    for seed in seed_matrix(&[1, 7, 42]) {
        let guard = GuardConfig { canary: 6, breach_pct: 25.0, quarantine_decay: 16 };
        let (_nodes, mut router, gids, _cache) = route_cluster_with(3, 6, Some(guard));
        let program = Arc::new(parse_program(ROUTE_SRC).unwrap());
        let alt = alternate_cut(&program);
        let victim = gids[(seed % gids.len() as u64) as usize];

        let plan = NodeFaultPlan::new();
        let nodes: Vec<LocalNode> = Vec::new();
        let first = drive_routed(&mut router, &nodes, &gids, &plan, 0, 6);

        // Two-phase switch on the victim session: prepared, committed,
        // canary open.
        let epoch = router.reconfigure_session(victim, &alt, Duration::from_secs(2)).unwrap();
        assert!(epoch > 0, "seed {seed}: commit bumped the epoch");

        // One breaching envelope: a string where the handler multiplies.
        let trap = router
            .deliver(victim, vec![Value::str("boom"), Value::Int(victim as i64)])
            .unwrap_err();
        assert!(format!("{trap}").contains('*'), "seed {seed}: the trap crossed: {trap}");

        // The guard rolled the plan back and quarantined the set: an
        // immediate re-commit of the same cut is refused at prepare.
        let again = router.reconfigure_session(victim, &alt, Duration::from_secs(2)).unwrap_err();
        assert!(
            format!("{again}").contains("quarantined"),
            "seed {seed}: the breaching set is blacklisted: {again}"
        );

        // Service continues uninterrupted for everyone.
        let second = drive_routed(&mut router, &nodes, &gids, &plan, 6, 6);

        // Exactly-once across the whole episode: the victim's successful
        // seqs are contiguous except for the one dead-lettered trap (seq
        // 7 consumed, never acked, never lost — it is quarantined); every
        // other session is untouched.
        for gid in &gids {
            let mut stream = first[gid].clone();
            stream.extend(second[gid].iter().copied());
            let seqs: Vec<u64> = stream.iter().map(|(s, _)| *s).collect();
            let expected: Vec<u64> =
                if *gid == victim { (1..=6).chain(8..=13).collect() } else { (1..=12).collect() };
            assert_eq!(seqs, expected, "seed {seed}: session {gid} numbering");
            for (i, (_, ret)) in stream.iter().enumerate() {
                let round = i;
                assert_eq!(
                    *ret,
                    3 * round as i64 + *gid as i64,
                    "seed {seed}: session {gid} result identity"
                );
            }
        }
        let stats = router.cluster_stats();
        let sum = |name: &str| {
            stats.iter().filter(|(n, _)| n.starts_with(name)).map(|(_, v)| *v).sum::<f64>()
        };
        assert_eq!(sum("plan_rollbacks_total"), 1.0, "seed {seed}: one breach, one rollback");
        assert_eq!(sum("plans_quarantined"), 1.0, "seed {seed}: the set is quarantined");
        let prepared_ready: f64 = stats
            .iter()
            .filter(|(n, _)| {
                n.starts_with("plan_prepares_total") && n.contains("outcome=\"ready\"")
            })
            .map(|(_, v)| *v)
            .sum();
        assert!(prepared_ready >= 1.0, "seed {seed}: the commit was prepared first");
    }
}

/// Mid-canary node death: the canary window and quarantine entries are
/// journaled, so a session that dies mid-canary resumes its watch on the
/// failover host and still rolls back to the journal-carried prior plan
/// when the breach lands after migration.
#[test]
fn mid_canary_node_kill_resumes_the_guard_on_failover() {
    for seed in seed_matrix(&[1, 7, 42]) {
        let guard = GuardConfig { canary: 8, breach_pct: 25.0, quarantine_decay: 16 };
        let (nodes, mut router, gids, cache) = route_cluster_with(3, 6, Some(guard));
        let program = Arc::new(parse_program(ROUTE_SRC).unwrap());
        let alt = alternate_cut(&program);
        let home = (seed % 3) as usize;
        let victim = *gids.iter().find(|g| (**g % 3) as usize == home).unwrap();
        let misses_after_open = cache.misses();

        let plan = NodeFaultPlan::new();
        let _warm = drive_routed(&mut router, &nodes, &gids, &plan, 0, 4);

        // Open the canary, burn one watched envelope, then kill the
        // hosting node with the window still open.
        router.reconfigure_session(victim, &alt, Duration::from_secs(2)).unwrap();
        let out = router.deliver(victim, vec![Value::Int(100), Value::Int(victim as i64)]).unwrap();
        assert_eq!(out.seq, 5, "seed {seed}: one canary envelope before the crash");
        nodes[home].kill();

        // The next delivery fails over; the restored session is still
        // mid-canary (journaled guard state), so the trap that follows
        // breaches and rolls back to the journal-carried prior plan.
        let out = router.deliver(victim, vec![Value::Int(101), Value::Int(victim as i64)]).unwrap();
        assert_eq!(out.seq, 6, "seed {seed}: watermark carried over the failover");
        let trap = router
            .deliver(victim, vec![Value::str("boom"), Value::Int(victim as i64)])
            .unwrap_err();
        assert!(format!("{trap}").contains('*'), "seed {seed}: {trap}");
        let again = router.reconfigure_session(victim, &alt, Duration::from_secs(2)).unwrap_err();
        assert!(
            format!("{again}").contains("quarantined"),
            "seed {seed}: quarantine survived the migration: {again}"
        );

        // Service, numbering, and zero re-analysis all hold.
        let out = router.deliver(victim, vec![Value::Int(5), Value::Int(victim as i64)]).unwrap();
        assert_eq!(out.seq, 8, "seed {seed}: the trap consumed seq 7, nothing was lost");
        assert_eq!(out.ret, Some(Value::Int(15 + victim as i64)));
        assert_eq!(cache.misses(), misses_after_open, "seed {seed}: zero re-analysis");
        let stats = router.cluster_stats();
        let rollbacks: f64 = stats
            .iter()
            .filter(|(n, _)| n.starts_with("plan_rollbacks_total"))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(rollbacks, 1.0, "seed {seed}: the resumed canary rolled back once");
    }
}
