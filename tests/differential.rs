//! Differential tests for the two-engine execution contract: for any
//! handler, the compiled register-bytecode engine must be
//! **observationally indistinguishable** from the reference tree-walking
//! interpreter — same results, same traps (error value AND trap point in
//! steps/work), and same continuation cut-points through the full
//! modulator → continuation → demodulator pipeline.
//!
//! Exercised three ways: a proptest sweep over random handler programs at
//! the engine level (Observed::All, so the bytecode engine fires the
//! observer on every edge exactly like the interpreter), a proptest sweep
//! at the partitioned level over every PSE of each generated handler, and
//! a deterministic seed-matrix replay wired into the CI chaos matrix via
//! `MPART_CHAOS_SEED`.

use std::sync::Arc;

use method_partitioning::core::partitioned::PartitionedHandler;
use method_partitioning::cost::{CostModel, DataSizeModel};
use method_partitioning::ir::compile::CompileHints;
use method_partitioning::ir::engine::{CompiledEngine, Engine, EngineChoice, InterpEngine};
use method_partitioning::ir::interp::{
    BuiltinRegistry, EdgeAction, EdgeObserver, ExecCtx, Outcome,
};
use method_partitioning::ir::parse::parse_program;
use method_partitioning::ir::{IrError, Program, Value};
use proptest::prelude::*;

/// The seed matrix: baked-in seeds plus `MPART_CHAOS_SEED` from the
/// environment, mirroring tests/chaos.rs so the CI chaos-matrix job
/// replays the differential property under its eight fixed seeds.
fn seed_matrix(base: &[u64]) -> Vec<u64> {
    let mut seeds = base.to_vec();
    if let Some(seed) =
        std::env::var("MPART_CHAOS_SEED").ok().and_then(|s| s.trim().parse::<u64>().ok())
    {
        if !seeds.contains(&seed) {
            seeds.push(seed);
        }
    }
    seeds
}

/// Renders a small random handler: arithmetic/array chain, an optional
/// guard branch, an optional bounded loop, and an optional division whose
/// divisor hits zero for one specific input (the trap case).
fn random_handler(ops: &[u8], with_branch: bool, with_loop: bool, div_at: Option<i64>) -> String {
    let mut body = String::new();
    body.push_str("    acc = x\n    arr = new int[4]\n    arr[0] = x\n");
    if with_branch {
        body.push_str("    if x < 0 goto neg\n");
    }
    if let Some(k) = div_at {
        // Traps with DivideByZero exactly when x == k; both engines must
        // raise it at the same step count.
        body.push_str(&format!("    d = x - {k}\n    acc = acc / d\n"));
    }
    if with_loop {
        body.push_str("    i = 0\nhead:\n    if i >= 5 goto after\n");
        body.push_str("    acc = acc + i\n    i = i + 1\n    goto head\nafter:\n");
    }
    for (i, op) in ops.iter().enumerate() {
        match op % 6 {
            0 => body.push_str(&format!("    acc = acc + {}\n", i + 1)),
            1 => body.push_str(&format!("    acc = acc * {}\n", (i % 3) + 2)),
            2 => body.push_str(&format!("    arr[{}] = acc\n", i % 4)),
            3 => body.push_str(&format!("    t{i} = arr[{}]\n    acc = acc + t{i}\n", i % 4)),
            4 => body.push_str(&format!("    acc = acc - {}\n", i * 2)),
            _ => body.push_str(&format!("    u{i} = acc < {}\n    acc = acc + u{i}\n", i)),
        }
    }
    body.push_str("    native emit(acc, arr)\n    return acc\n");
    if with_branch {
        body.push_str("neg:\n    native emit_err(x)\n    return 0\n");
    }
    format!("fn gen(x) {{\n{body}}}\n")
}

fn gen_builtins() -> BuiltinRegistry {
    let mut builtins = BuiltinRegistry::new();
    builtins.register_native("emit", 1, |_, _| Ok(Value::Null));
    builtins.register_native("emit_err", 1, |_, _| Ok(Value::Null));
    builtins
}

/// Records every observed edge with the work counter at observation time.
#[derive(Default)]
struct EdgeLog(Vec<(usize, usize, u64)>);

impl EdgeObserver for EdgeLog {
    fn on_edge(
        &mut self,
        from: usize,
        to: usize,
        _: &[Value],
        _: &mpart_ir::heap::Heap,
        work: u64,
    ) -> EdgeAction {
        self.0.push((from, to, work));
        EdgeAction::Continue
    }
}

/// Everything one engine run exposes: result-or-trap, step and work
/// counters at exit, globals, native trace, and the full edge log.
type EngineRun =
    (Result<Option<Value>, IrError>, u64, u64, Vec<Value>, Vec<String>, Vec<(usize, usize, u64)>);

fn run_engine(engine: &dyn Engine, program: &Arc<Program>, input: i64) -> EngineRun {
    let mut ctx = ExecCtx::with_builtins(program, gen_builtins());
    let func = program.function("gen").expect("generated handler exists");
    let mut log = EdgeLog::default();
    let res =
        engine.run_observed(&mut ctx, func, vec![Value::Int(input)], &mut log).map(|o| match o {
            Outcome::Finished(v) => v,
            Outcome::Suspended(_) => unreachable!("the logging observer never suspends"),
        });
    let trace = ctx.trace.iter().map(|t| format!("{}:{}", t.callee, t.args_digest)).collect();
    (res, ctx.steps, ctx.work, ctx.globals, trace, log.0)
}

/// Asserts the two engines are indistinguishable for one handler+input.
fn assert_engines_agree(src: &str, input: i64) {
    let program = Arc::new(parse_program(src).expect("generated program parses"));
    let interp = InterpEngine::new(Arc::clone(&program));
    let compiled = CompiledEngine::compile(Arc::clone(&program), &CompileHints::default());
    assert!(compiled.is_compiled("gen"), "generated handlers always compile:\n{src}");
    let a = run_engine(&interp, &program, input);
    let b = run_engine(&compiled, &program, input);
    assert_eq!(a.0, b.0, "result/trap for input {input} of:\n{src}");
    assert_eq!(a.1, b.1, "steps at exit for input {input} of:\n{src}");
    assert_eq!(a.2, b.2, "work at exit for input {input} of:\n{src}");
    assert_eq!(a.3, b.3, "globals for input {input} of:\n{src}");
    assert_eq!(a.4, b.4, "native trace for input {input} of:\n{src}");
    assert_eq!(a.5, b.5, "edge log for input {input} of:\n{src}");
}

/// Observable outcome of a partitioned run, including the cut-point: the
/// PSE the message split at, its wire size, and the sender-side work.
type Partitioned = (Option<Value>, Vec<String>, Vec<Value>, usize, usize, u64);

/// Runs modulator → continuation → demodulator under `choice`, splitting
/// at `main_pse` (plus first candidates of uncovered paths, as in
/// tests/equivalence.rs).
fn run_partitioned(
    program: &Arc<Program>,
    main_pse: usize,
    choice: EngineChoice,
    input: i64,
) -> Result<Partitioned, IrError> {
    let model: Arc<dyn CostModel> = Arc::new(DataSizeModel::new());
    let handler = PartitionedHandler::analyze(Arc::clone(program), "gen", model)?;
    handler.select_engine(choice);
    let mut plan: Vec<usize> = vec![main_pse];
    let analysis = handler.analysis();
    for (path, candidates) in analysis.paths.paths.iter().zip(&analysis.cut.path_pses) {
        let edges = mpart_analysis::convex::path_edges(analysis.ug.start(), path);
        let covered = plan.iter().any(|&p| edges.contains(&analysis.pses()[p].edge));
        if !covered {
            plan.push(*candidates.first().expect("every path has a candidate"));
        }
    }
    handler.plan().install(&plan);
    handler.plan().validate_cut(handler.analysis())?;

    let mut sender = ExecCtx::with_builtins(program, gen_builtins());
    let run = handler.modulator().handle(&mut sender, vec![Value::Int(input)])?;
    let mut receiver = ExecCtx::with_builtins(program, gen_builtins());
    let out = handler.demodulator().handle(&mut receiver, &run.message)?;
    let trace = receiver.trace.iter().map(|t| format!("{}:{}", t.callee, t.args_digest)).collect();
    Ok((out.ret, trace, receiver.globals, run.message.pse, run.message.wire_size(), run.mod_work))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Engine-level sweep: under Observed::All the bytecode VM must match
    /// the interpreter edge-for-edge, step-for-step — including the
    /// DivideByZero trap case (`input == div_at`).
    #[test]
    fn random_handlers_run_identically_on_both_engines(
        ops in proptest::collection::vec(0u8..=5, 1..10),
        with_branch in any::<bool>(),
        with_loop in any::<bool>(),
        div_on in any::<bool>(),
        div_k in -3i64..4,
        input in -50i64..50,
    ) {
        let div_at = if div_on { Some(div_k) } else { None };
        let src = random_handler(&ops, with_branch, with_loop, div_at);
        assert_engines_agree(&src, input);
        if let Some(k) = div_at {
            // Force the trap case regardless of what `input` drew.
            assert_engines_agree(&src, k);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Partitioned-level sweep: for every PSE of each generated handler,
    /// both engines pick the same cut-point, pack the same continuation,
    /// and demodulate to the same observable outcome.
    #[test]
    fn every_pse_cuts_identically_across_engines(
        ops in proptest::collection::vec(0u8..=5, 1..8),
        with_branch in any::<bool>(),
        with_loop in any::<bool>(),
        input in -50i64..50,
    ) {
        let src = random_handler(&ops, with_branch, with_loop, None);
        let program = Arc::new(parse_program(&src).expect("parses"));
        let probe = PartitionedHandler::analyze(
            Arc::clone(&program),
            "gen",
            Arc::new(DataSizeModel::new()) as Arc<dyn CostModel>,
        )
        .unwrap();
        for pse in 0..probe.analysis().pses().len() {
            let a = run_partitioned(&program, pse, EngineChoice::Interp, input)
                .unwrap_or_else(|e| panic!("interp pse {pse}: {e}\n{src}"));
            let b = run_partitioned(&program, pse, EngineChoice::Compiled, input)
                .unwrap_or_else(|e| panic!("compiled pse {pse}: {e}\n{src}"));
            prop_assert_eq!(&a, &b, "pse {} of:\n{}", pse, src);
        }
    }
}

/// Deterministic replay keyed on the chaos seed matrix: each seed derives
/// a handler shape and an input set (always including the division trap),
/// and both engines must agree at the engine level and at every PSE.
#[test]
fn seeded_differential_matrix_agrees_across_engines() {
    for seed in seed_matrix(&[2, 5, 13, 23, 31, 47, 73, 101]) {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed | 1);
        let mut next = move || {
            s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            s >> 33
        };
        let ops: Vec<u8> = (0..(3 + (next() % 7) as usize)).map(|_| (next() % 6) as u8).collect();
        let with_branch = next() % 2 == 0;
        let with_loop = next() % 2 == 0;
        let div_at = (next() % 5) as i64 - 2;
        let src = random_handler(&ops, with_branch, with_loop, Some(div_at));
        for input in [div_at, div_at + 1, -9, 0, 17] {
            assert_engines_agree(&src, input);
        }

        let no_trap = random_handler(&ops, with_branch, with_loop, None);
        let program = Arc::new(parse_program(&no_trap).unwrap());
        let probe = PartitionedHandler::analyze(
            Arc::clone(&program),
            "gen",
            Arc::new(DataSizeModel::new()) as Arc<dyn CostModel>,
        )
        .unwrap();
        for pse in 0..probe.analysis().pses().len() {
            let a = run_partitioned(&program, pse, EngineChoice::Interp, 17)
                .unwrap_or_else(|e| panic!("seed {seed} interp pse {pse}: {e}"));
            let b = run_partitioned(&program, pse, EngineChoice::Compiled, 17)
                .unwrap_or_else(|e| panic!("seed {seed} compiled pse {pse}: {e}"));
            assert_eq!(a, b, "seed {seed}, pse {pse} of:\n{no_trap}");
        }
    }
}

/// Auto keeps the envelope alive when the handler body declines: a body
/// past the compiler's local-slot budget still partitions correctly on
/// the interpreter, with the decline counted, never an error.
#[test]
fn declined_handler_degrades_gracefully_under_auto() {
    let src = random_handler(&[0, 1, 3], true, true, None);
    let program = Arc::new(parse_program(&src).unwrap());
    let handler = PartitionedHandler::analyze(
        Arc::clone(&program),
        "gen",
        Arc::new(DataSizeModel::new()) as Arc<dyn CostModel>,
    )
    .unwrap();
    // This small body compiles, so Auto selects the bytecode engine...
    assert_eq!(handler.select_engine(EngineChoice::Auto), "compiled");
    // ...and a full envelope still round-trips.
    let mut sender = ExecCtx::with_builtins(&program, gen_builtins());
    let run = handler.modulator().handle(&mut sender, vec![Value::Int(6)]).unwrap();
    let mut receiver = ExecCtx::with_builtins(&program, gen_builtins());
    let out = handler.demodulator().handle(&mut receiver, &run.message).unwrap();
    let direct = {
        let mut ctx = ExecCtx::with_builtins(&program, gen_builtins());
        InterpEngine::new(Arc::clone(&program)).run(&mut ctx, "gen", vec![Value::Int(6)]).unwrap()
    };
    assert_eq!(out.ret, direct);
}
