//! Property tests over the static-analysis invariants, on randomly
//! generated handler programs (with branches and loops).

use std::sync::Arc;

use method_partitioning::analysis::{analyze, HandlerAnalysis};
use method_partitioning::cost::{CostModel, DataSizeModel, ExecTimeModel};
use method_partitioning::ir::parse::parse_program;
use method_partitioning::ir::pretty::program_to_string;
use proptest::prelude::*;

/// Builds a random but well-formed handler with `ops` straight-line
/// operations, an optional early-exit branch, and an optional counted
/// loop.
fn random_source(ops: &[u8], with_branch: bool, with_loop: bool) -> String {
    let mut body = String::new();
    body.push_str("    acc = x\n");
    if with_branch {
        body.push_str("    if x < 0 goto bail\n");
    }
    if with_loop {
        body.push_str(
            "    i = 0\nhead:\n    if i >= 3 goto after\n    acc = acc + i\n    i = i + 1\n    goto head\nafter:\n",
        );
    }
    for (i, op) in ops.iter().enumerate() {
        match op % 5 {
            0 => body.push_str(&format!("    acc = acc + {}\n", i + 1)),
            1 => body.push_str(&format!("    v{i} = acc * 2\n    acc = acc + v{i}\n")),
            2 => body.push_str(&format!("    w{i} = call grind(acc)\n    acc = w{i}\n")),
            3 => body.push_str(&format!("    acc = acc - {i}\n")),
            _ => body.push_str(&format!("    z{i} = acc > {i}\n    acc = acc + z{i}\n")),
        }
    }
    body.push_str("    native out(acc)\n    return acc\n");
    if with_branch {
        body.push_str("bail:\n    return -1\n");
    }
    format!("fn gen(x) {{\n{body}}}\n")
}

fn analyses(src: &str) -> Vec<HandlerAnalysis> {
    let program = Arc::new(parse_program(src).expect("generated source parses"));
    let models: Vec<Arc<dyn CostModel>> =
        vec![Arc::new(DataSizeModel::new()), Arc::new(ExecTimeModel::new())];
    models
        .iter()
        .map(|m| analyze(&program, "gen", m.as_ref(), Default::default()).expect("analysis"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every target path must offer at least one candidate split edge —
    /// otherwise no valid partition plan exists.
    #[test]
    fn every_path_has_a_candidate(
        ops in proptest::collection::vec(0u8..=4, 0..8),
        with_branch in any::<bool>(),
        with_loop in any::<bool>(),
    ) {
        for ha in analyses(&random_source(&ops, with_branch, with_loop)) {
            prop_assert_eq!(ha.paths.paths.len(), ha.cut.path_pses.len());
            for (i, cands) in ha.cut.path_pses.iter().enumerate() {
                prop_assert!(!cands.is_empty(), "path {} of\n{:?}", i, ha.paths.paths[i]);
            }
        }
    }

    /// Convexity: no selected PSE lies on a cycle (its head must not be
    /// reachable from its tail), so data never flows backward across a
    /// split.
    #[test]
    fn selected_pses_are_never_inside_loops(
        ops in proptest::collection::vec(0u8..=4, 0..8),
        with_branch in any::<bool>(),
        with_loop in any::<bool>(),
    ) {
        for ha in analyses(&random_source(&ops, with_branch, with_loop)) {
            for pse in ha.pses() {
                if pse.edge.is_entry() {
                    continue;
                }
                let back_reachable = ha.ug.reachable_from(pse.edge.to).contains(pse.edge.from);
                prop_assert!(
                    !back_reachable,
                    "PSE {} lies on a cycle",
                    pse.edge
                );
            }
        }
    }

    /// No candidate on a path may be determinably more expensive than a
    /// sibling candidate on the same path (`MinCostEdgeSet` postcondition).
    /// The entry candidate is exempt: it is reinstated even when dominated,
    /// because the runtime needs the always-valid trivial plan as its
    /// degradation fallback.
    #[test]
    fn path_candidates_are_pairwise_minimal(
        ops in proptest::collection::vec(0u8..=4, 0..8),
        with_branch in any::<bool>(),
        with_loop in any::<bool>(),
    ) {
        for ha in analyses(&random_source(&ops, with_branch, with_loop)) {
            for cands in &ha.cut.path_pses {
                for &a in cands {
                    if ha.pses()[a].edge.is_entry() { continue; }
                    for &b in cands {
                        if a == b { continue; }
                        let ca = &ha.pses()[a].static_cost;
                        let cb = &ha.pses()[b].static_cost;
                        prop_assert!(
                            !ca.determinably_greater(cb),
                            "candidate {:?} dominated by {:?}",
                            ha.pses()[a].edge,
                            ha.pses()[b].edge
                        );
                    }
                }
            }
        }
    }

    /// The INTER set of every PSE is consistent with liveness: exactly the
    /// variables live into the edge's head (intersected with the tail's
    /// live-out set).
    #[test]
    fn pse_inter_sets_match_liveness(
        ops in proptest::collection::vec(0u8..=4, 0..8),
        with_branch in any::<bool>(),
        with_loop in any::<bool>(),
    ) {
        let src = random_source(&ops, with_branch, with_loop);
        let program = Arc::new(parse_program(&src).unwrap());
        let model = DataSizeModel::new();
        let ha = analyze(&program, "gen", &model, Default::default()).unwrap();
        let func = program.function("gen").unwrap();
        for pse in ha.pses() {
            let expected = ha.liveness.inter(func, pse.edge);
            prop_assert_eq!(&pse.inter, &expected);
        }
    }

    /// Pretty-printing and re-parsing preserves the analysis: same paths,
    /// same PSE edges.
    #[test]
    fn analysis_survives_print_parse_round_trip(
        ops in proptest::collection::vec(0u8..=4, 0..8),
        with_branch in any::<bool>(),
        with_loop in any::<bool>(),
    ) {
        let src = random_source(&ops, with_branch, with_loop);
        let p1 = Arc::new(parse_program(&src).unwrap());
        let printed = program_to_string(&p1);
        let p2 = Arc::new(parse_program(&printed).expect("printed source re-parses"));
        let model = DataSizeModel::new();
        let a1 = analyze(&p1, "gen", &model, Default::default()).unwrap();
        let a2 = analyze(&p2, "gen", &model, Default::default()).unwrap();
        prop_assert_eq!(&a1.paths.paths, &a2.paths.paths, "printed:\n{}", printed);
        let e1: Vec<_> = a1.pses().iter().map(|p| p.edge).collect();
        let e2: Vec<_> = a2.pses().iter().map(|p| p.edge).collect();
        prop_assert_eq!(e1, e2, "printed:\n{}", printed);
    }
}
