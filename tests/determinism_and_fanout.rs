//! Simulation determinism and multi-subscriber fan-out.

use std::sync::Arc;

use method_partitioning::apps::image::{run_image_experiment, ImageScenario, ImageVersion};
use method_partitioning::apps::sensor::{
    run_sensor_experiment, HostLoad, SensorSetup, SensorVersion,
};
use method_partitioning::core::profile::TriggerPolicy;
use method_partitioning::cost::{DataSizeModel, ExecTimeModel};
use method_partitioning::ir::interp::{BuiltinRegistry, ExecCtx};
use method_partitioning::ir::parse::parse_program;
use method_partitioning::ir::types::ElemType;
use method_partitioning::ir::{IrError, Value};
use method_partitioning::jecho::EventChannel;

#[test]
fn identical_seeds_identical_results() {
    let a = run_image_experiment(ImageVersion::MethodPartitioning, ImageScenario::Mixed, 60, 5)
        .unwrap();
    let b = run_image_experiment(ImageVersion::MethodPartitioning, ImageScenario::Mixed, 60, 5)
        .unwrap();
    assert_eq!(a.fps, b.fps);
    assert_eq!(a.avg_wire_bytes, b.avg_wire_bytes);
    assert_eq!(a.plan_installs, b.plan_installs);
}

#[test]
fn different_seeds_differ_under_mixed_traffic() {
    let a = run_image_experiment(ImageVersion::MethodPartitioning, ImageScenario::Mixed, 60, 5)
        .unwrap();
    let b = run_image_experiment(ImageVersion::MethodPartitioning, ImageScenario::Mixed, 60, 6)
        .unwrap();
    assert_ne!(a.fps, b.fps);
}

#[test]
fn sensor_runs_are_reproducible_under_load() {
    let mut setup = SensorSetup::intel_cluster(30, 9);
    setup.consumer_load = HostLoad { aprob: 0.5, plen_ms: 400.0, lindex: 0.9 };
    let a = run_sensor_experiment(SensorVersion::MethodPartitioning, &setup).unwrap();
    let b = run_sensor_experiment(SensorVersion::MethodPartitioning, &setup).unwrap();
    assert_eq!(a.avg_ms, b.avg_ms);
    assert_eq!(a.plan_installs, b.plan_installs);
}

const FANOUT_SRC: &str = r#"
class Sample { n: int, data: ref }

fn shrink(s) {
    out = new Sample
    out.n = 16
    d = new byte[16]
    out.data = d
    return out
}

fn tiny_view(event) {
    ok = event instanceof Sample
    if ok == 0 goto skip
    s = (Sample) event
    t = call shrink(s)
    native view(t)
    return 1
skip:
    return 0
}

fn full_archive(event) {
    ok = event instanceof Sample
    if ok == 0 goto skip
    s = (Sample) event
    native archive(s)
    return 2
skip:
    return 0
}
"#;

fn sample_builder(
    program: &Arc<mpart_ir::Program>,
    n: usize,
) -> impl FnMut(&mut ExecCtx) -> Result<Vec<Value>, IrError> + '_ {
    let classes = &program.classes;
    move |ctx| {
        let class = classes.id("Sample").unwrap();
        let decl = classes.decl(class);
        let s = ctx.heap.alloc_object(classes, class);
        let d = ctx.heap.alloc_array(ElemType::Byte, n);
        ctx.heap.set_field(s, decl.field("n").unwrap(), Value::Int(n as i64))?;
        ctx.heap.set_field(s, decl.field("data").unwrap(), Value::Ref(d))?;
        Ok(vec![Value::Ref(s)])
    }
}

/// One sender, two receivers with *different handlers and cost models* —
/// Figure 1's fan-out. Each subscriber's modulator adapts independently.
#[test]
fn fanout_subscribers_adapt_independently() {
    let program = Arc::new(parse_program(FANOUT_SRC).unwrap());
    let mut channel = EventChannel::new(Arc::clone(&program), BuiltinRegistry::new());

    let mut viewer_builtins = BuiltinRegistry::new();
    viewer_builtins.register_native("view", 1, |_, _| Ok(Value::Null));
    let viewer = channel
        .subscribe(
            "tiny_view",
            Arc::new(DataSizeModel::new()),
            viewer_builtins,
            TriggerPolicy::Rate(1),
        )
        .unwrap();

    let mut archiver_builtins = BuiltinRegistry::new();
    archiver_builtins.register_native("archive", 1, |_, _| Ok(Value::Null));
    let archiver = channel
        .subscribe(
            "full_archive",
            Arc::new(ExecTimeModel::new()),
            archiver_builtins,
            TriggerPolicy::Rate(1),
        )
        .unwrap();

    for _ in 0..8 {
        let reports = channel.publish(sample_builder(&program, 40_000)).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[viewer].ret, Some(Value::Int(1)));
        assert_eq!(reports[archiver].ret, Some(Value::Int(2)));
    }

    // The viewer adapted to shrink at the sender (tiny payload); the
    // archiver necessarily ships the full sample (its handler keeps it).
    let last = channel.publish(sample_builder(&program, 40_000)).unwrap();
    assert!(last[viewer].wire_bytes < 1000, "viewer payload {}", last[viewer].wire_bytes);
    assert!(last[archiver].wire_bytes > 40_000, "archiver payload {}", last[archiver].wire_bytes);
    // Plans are independent objects (the wire-byte contrast above already
    // shows they diverged semantically; raw index lists may coincide since
    // each handler has its own PSE table).
    // Both receivers saw every event.
    assert_eq!(channel.subscriber_ctx(viewer).trace.len(), 9);
    assert_eq!(channel.subscriber_ctx(archiver).trace.len(), 9);
}
