//! The keystone correctness property of Method Partitioning:
//!
//! > For any handler, any input, and ANY valid partition plan, running
//! > the modulator on the sender, shipping the continuation, and running
//! > the demodulator on the receiver is observationally equivalent to
//! > running the original handler in one place: same return value, same
//! > native-call trace (deep argument comparison), same receiver-side
//! > global effects.
//!
//! Exercised both on hand-written handlers covering every IR feature and
//! on randomly generated handler programs (property test).

use std::sync::Arc;

use method_partitioning::core::partitioned::PartitionedHandler;
use method_partitioning::cost::{CostModel, DataSizeModel, ExecTimeModel};
use method_partitioning::ir::interp::{BuiltinRegistry, ExecCtx, Interp};
use method_partitioning::ir::parse::parse_program;
use method_partitioning::ir::types::ElemType;
use method_partitioning::ir::{IrError, Program, Value};
use proptest::prelude::*;

/// Observable outcome of a handler run: return value, native trace, and
/// receiver-side globals.
type Observed = (Option<Value>, Vec<String>, Vec<Value>);

/// Runs the handler unpartitioned in `ctx`.
fn run_direct(
    program: &Program,
    builtins: &BuiltinRegistry,
    name: &str,
    args: Vec<Value>,
) -> Observed {
    let mut ctx = ExecCtx::with_builtins(program, builtins.clone());
    let ret = Interp::new(program).run(&mut ctx, name, args).expect("direct run");
    let trace = ctx.trace.iter().map(|t| format!("{}:{}", t.callee, t.args_digest)).collect();
    (ret, trace, ctx.globals)
}

/// Runs the handler through modulator + continuation + demodulator, with
/// the given single main split (plus all empty-INTER PSEs so every path
/// is covered).
fn run_partitioned(
    program: &Arc<Program>,
    builtins: &BuiltinRegistry,
    name: &str,
    model: Arc<dyn CostModel>,
    main_pse: usize,
    args_builder: impl FnOnce(&mut ExecCtx) -> Vec<Value>,
) -> Result<Observed, IrError> {
    let handler = PartitionedHandler::analyze(Arc::clone(program), name, model)?;
    // Plan = the chosen main split, plus each uncovered path's first
    // candidate so the active set forms a cut.
    let mut plan: Vec<usize> = vec![main_pse];
    let analysis = handler.analysis();
    for (path, candidates) in analysis.paths.paths.iter().zip(&analysis.cut.path_pses) {
        let edges = mpart_analysis::convex::path_edges(analysis.ug.start(), path);
        let covered = plan.iter().any(|&p| edges.contains(&analysis.pses()[p].edge));
        if !covered {
            plan.push(*candidates.first().expect("every path has a candidate"));
        }
    }
    handler.plan().install(&plan);
    handler.plan().validate_cut(handler.analysis())?;

    let mut sender = ExecCtx::with_builtins(program, builtins.clone());
    let args = args_builder(&mut sender);
    let run = handler.modulator().handle(&mut sender, args)?;
    let mut receiver = ExecCtx::with_builtins(program, builtins.clone());
    let out = handler.demodulator().handle(&mut receiver, &run.message)?;
    let trace = receiver.trace.iter().map(|t| format!("{}:{}", t.callee, t.args_digest)).collect();
    Ok((out.ret, trace, receiver.globals))
}

fn feature_rich_program() -> (Arc<Program>, BuiltinRegistry) {
    let program = Arc::new(
        parse_program(
            r#"
            class Packet { kind: int, body: ref, tag: str }
            global seen = 0

            fn helper(x, y) {
                s = x + y
                t = s * 3
                return t
            }

            fn handle(event, scale) {
                ok = event instanceof Packet
                if ok == 0 goto reject
                p = (Packet) event
                k = p.kind
                body = p.body
                n = len body
                sum = 0
                i = 0
            loop:
                if i >= n goto done
                v = body[i]
                sum = sum + v
                i = i + 1
                goto loop
            done:
                scaled = call helper(sum, k)
                mixed = scaled * scale
                out = new int[3]
                out[0] = sum
                out[1] = mixed
                out[2] = n
                c = global::seen
                c = c + 1
                global::seen = c
                native emit(out, c)
                return mixed
            reject:
                native emit_err(event)
                return -1
            }
            "#,
        )
        .expect("program"),
    );
    let mut builtins = BuiltinRegistry::new();
    builtins.register_native("emit", 5, |_, _| Ok(Value::Null));
    builtins.register_native("emit_err", 1, |_, _| Ok(Value::Null));
    (program, builtins)
}

fn build_packet(ctx: &mut ExecCtx, program: &Program, kind: i64, body: &[i64]) -> Value {
    let classes = &program.classes;
    let class = classes.id("Packet").unwrap();
    let decl = classes.decl(class);
    let p = ctx.heap.alloc_object(classes, class);
    let arr = ctx.heap.alloc_array(ElemType::Int, body.len());
    for (i, v) in body.iter().enumerate() {
        ctx.heap.array_set(arr, i as i64, Value::Int(*v)).unwrap();
    }
    ctx.heap.set_field(p, decl.field("kind").unwrap(), Value::Int(kind)).unwrap();
    ctx.heap.set_field(p, decl.field("body").unwrap(), Value::Ref(arr)).unwrap();
    ctx.heap.set_field(p, decl.field("tag").unwrap(), Value::str("pkt")).unwrap();
    Value::Ref(p)
}

#[test]
fn every_pse_of_feature_rich_handler_is_equivalent() {
    let (program, builtins) = feature_rich_program();
    let body = [3i64, 1, 4, 1, 5, 9, 2, 6];
    let (ret, trace, globals) = {
        let mut ctx = ExecCtx::with_builtins(&program, builtins.clone());
        let pkt = build_packet(&mut ctx, &program, 7, &body);
        let ret = Interp::new(&program)
            .run(&mut ctx, "handle", vec![pkt, Value::Int(2)])
            .expect("direct");
        (
            ret,
            ctx.trace.iter().map(|t| format!("{}:{}", t.callee, t.args_digest)).collect::<Vec<_>>(),
            ctx.globals.clone(),
        )
    };

    for model in [
        Arc::new(DataSizeModel::new()) as Arc<dyn CostModel>,
        Arc::new(ExecTimeModel::new()) as Arc<dyn CostModel>,
    ] {
        let probe = PartitionedHandler::analyze(Arc::clone(&program), "handle", Arc::clone(&model))
            .unwrap();
        let n = probe.analysis().pses().len();
        assert!(n >= 3, "expected several PSEs under {}", model.name());
        for pse in 0..n {
            let (r, t, g) =
                run_partitioned(&program, &builtins, "handle", Arc::clone(&model), pse, |ctx| {
                    vec![build_packet(ctx, &program, 7, &body), Value::Int(2)]
                })
                .unwrap_or_else(|e| panic!("pse {pse} under {}: {e}", model.name()));
            assert_eq!(r, ret, "return value at pse {pse}");
            assert_eq!(t, trace, "native trace at pse {pse}");
            assert_eq!(g, globals, "globals at pse {pse}");
        }
    }
}

#[test]
fn rejected_events_are_equivalent_too() {
    let (program, builtins) = feature_rich_program();
    let (ret, trace, _) =
        run_direct(&program, &builtins, "handle", vec![Value::Int(99), Value::Int(2)]);
    assert_eq!(ret, Some(Value::Int(-1)));

    let model: Arc<dyn CostModel> = Arc::new(DataSizeModel::new());
    let probe =
        PartitionedHandler::analyze(Arc::clone(&program), "handle", Arc::clone(&model)).unwrap();
    for pse in 0..probe.analysis().pses().len() {
        let (r, t, _) =
            run_partitioned(&program, &builtins, "handle", Arc::clone(&model), pse, |_| {
                vec![Value::Int(99), Value::Int(2)]
            })
            .unwrap();
        assert_eq!(r, ret, "pse {pse}");
        assert_eq!(t, trace, "pse {pse}");
    }
}

/// Renders a small random handler: a chain of arithmetic/array operations
/// with an optional branch, ending in a native emit.
fn random_handler(ops: &[u8], with_branch: bool) -> String {
    let mut body = String::new();
    body.push_str("    acc = x\n    arr = new int[4]\n    arr[0] = x\n");
    if with_branch {
        body.push_str("    if x < 0 goto neg\n");
    }
    for (i, op) in ops.iter().enumerate() {
        match op % 6 {
            0 => body.push_str(&format!("    acc = acc + {}\n", i + 1)),
            1 => body.push_str(&format!("    acc = acc * {}\n", (i % 3) + 2)),
            2 => body.push_str(&format!("    arr[{}] = acc\n", i % 4)),
            3 => body.push_str(&format!("    t{i} = arr[{}]\n    acc = acc + t{i}\n", i % 4)),
            4 => body.push_str(&format!("    acc = acc - {}\n", i * 2)),
            _ => body.push_str(&format!("    u{i} = acc < {}\n    acc = acc + u{i}\n", i)),
        }
    }
    body.push_str("    native emit(acc, arr)\n    return acc\n");
    if with_branch {
        body.push_str("neg:\n    native emit_err(x)\n    return 0\n");
    }
    format!("fn gen(x) {{\n{body}}}\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_handlers_partition_equivalently(
        ops in proptest::collection::vec(0u8..=5, 1..10),
        with_branch in any::<bool>(),
        input in -50i64..50,
    ) {
        let src = random_handler(&ops, with_branch);
        let program = Arc::new(parse_program(&src).expect("generated program parses"));
        let mut builtins = BuiltinRegistry::new();
        builtins.register_native("emit", 1, |_, _| Ok(Value::Null));
        builtins.register_native("emit_err", 1, |_, _| Ok(Value::Null));

        let (ret, trace, _) =
            run_direct(&program, &builtins, "gen", vec![Value::Int(input)]);

        let model: Arc<dyn CostModel> = Arc::new(DataSizeModel::new());
        let probe = PartitionedHandler::analyze(
            Arc::clone(&program), "gen", Arc::clone(&model)).unwrap();
        for pse in 0..probe.analysis().pses().len() {
            let out = run_partitioned(
                &program,
                &builtins,
                "gen",
                Arc::clone(&model),
                pse,
                |_| vec![Value::Int(input)],
            );
            let (r, t, _) = out.expect("partitioned run");
            prop_assert_eq!(&r, &ret, "pse {} of:\n{}", pse, src);
            prop_assert_eq!(&t, &trace, "pse {} of:\n{}", pse, src);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Multi-split plans: ANY subset of PSEs that forms a valid cut is
    /// observationally equivalent (the modulator stops at whichever active
    /// edge it reaches first).
    #[test]
    fn random_plan_subsets_are_equivalent(
        subset_bits in any::<u32>(),
        input in -50i64..50,
        body in proptest::collection::vec(0u8..=5, 1..8),
    ) {
        let src = random_handler(&body, true);
        let program = Arc::new(parse_program(&src).expect("parses"));
        let mut builtins = BuiltinRegistry::new();
        builtins.register_native("emit", 1, |_, _| Ok(Value::Null));
        builtins.register_native("emit_err", 1, |_, _| Ok(Value::Null));

        let (ret, trace, _) = run_direct(&program, &builtins, "gen", vec![Value::Int(input)]);

        let handler = PartitionedHandler::analyze(
            Arc::clone(&program),
            "gen",
            Arc::new(DataSizeModel::new()) as Arc<dyn CostModel>,
        )
        .unwrap();
        let n = handler.analysis().pses().len();
        let subset: Vec<usize> =
            (0..n).filter(|i| subset_bits & (1 << (i % 32)) != 0).collect();
        prop_assume!(!subset.is_empty());
        handler.plan().install(&subset);
        // Only valid cuts are runnable; invalid mixtures are rejected by
        // the modulator (also asserted here).
        if handler.plan().validate_cut(handler.analysis()).is_err() {
            let mut sender = ExecCtx::with_builtins(&program, builtins.clone());
            let err = handler.modulator().handle(&mut sender, vec![Value::Int(input)]);
            // A non-cut plan either fails (the uncovered path was taken) or
            // succeeds (a covered path was taken); it must never corrupt.
            if let Ok(run) = err {
                let mut receiver = ExecCtx::with_builtins(&program, builtins.clone());
                let out = handler.demodulator().handle(&mut receiver, &run.message).unwrap();
                prop_assert_eq!(&out.ret, &ret);
            }
            return Ok(());
        }

        let mut sender = ExecCtx::with_builtins(&program, builtins.clone());
        let run = handler
            .modulator()
            .handle(&mut sender, vec![Value::Int(input)])
            .expect("valid cut runs");
        let mut receiver = ExecCtx::with_builtins(&program, builtins.clone());
        let out = handler.demodulator().handle(&mut receiver, &run.message).unwrap();
        prop_assert_eq!(&out.ret, &ret);
        let got_trace: Vec<String> = receiver
            .trace
            .iter()
            .map(|t| format!("{}:{}", t.callee, t.args_digest))
            .collect();
        prop_assert_eq!(&got_trace, &trace);
    }
}

/// Interprocedural expansion (§7): inlining exposes split edges inside
/// callees, and every one of them is still observationally equivalent.
#[test]
fn inlined_handlers_partition_equivalently_with_more_pses() {
    use method_partitioning::ir::inline::{inlined_program, InlineOptions};

    let src = r#"
        class Frame { n: int, buff: ref }

        fn shrink(f, target) {
            src = f.buff
            x = src[0]
            out = new Frame
            out.n = target
            b = new byte[target]
            b[0] = x
            out.buff = b
            return out
        }

        fn stamp(f) {
            m = f.n
            m2 = m + 1
            f.n = m2
            return f
        }

        fn handle(event) {
            ok = event instanceof Frame
            if ok == 0 goto skip
            fr = (Frame) event
            small = call shrink(fr, 16)
            st = call stamp(small)
            native keep(st)
            return 1
        skip:
            return 0
        }
    "#;
    let program = Arc::new(parse_program(src).unwrap());
    let expanded = Arc::new(inlined_program(&program, "handle", InlineOptions::default()).unwrap());

    let mut builtins = BuiltinRegistry::new();
    builtins.register_native("keep", 1, |_, _| Ok(Value::Null));

    let build_frame = |ctx: &mut ExecCtx, prog: &Program| -> Vec<Value> {
        let classes = &prog.classes;
        let class = classes.id("Frame").unwrap();
        let decl = classes.decl(class);
        let f = ctx.heap.alloc_object(classes, class);
        let b = ctx.heap.alloc_array(method_partitioning::ir::types::ElemType::Byte, 500);
        ctx.heap.set_field(f, decl.field("n").unwrap(), Value::Int(500)).unwrap();
        ctx.heap.set_field(f, decl.field("buff").unwrap(), Value::Ref(b)).unwrap();
        vec![Value::Ref(f)]
    };

    // Reference run on the ORIGINAL program.
    let (ret, trace) = {
        let mut ctx = ExecCtx::with_builtins(&program, builtins.clone());
        let frame = build_frame(&mut ctx, &program);
        let ret = Interp::new(&program).run(&mut ctx, "handle", frame).unwrap();
        let trace: Vec<String> =
            ctx.trace.iter().map(|t| format!("{}:{}", t.callee, t.args_digest)).collect();
        (ret, trace)
    };

    let model: Arc<dyn CostModel> = Arc::new(DataSizeModel::new());
    let plain =
        PartitionedHandler::analyze(Arc::clone(&program), "handle", Arc::clone(&model)).unwrap();
    let rich =
        PartitionedHandler::analyze(Arc::clone(&expanded), "handle", Arc::clone(&model)).unwrap();
    assert!(
        rich.analysis().pses().len() > plain.analysis().pses().len(),
        "expansion exposes interior PSEs: {} vs {}",
        rich.analysis().pses().len(),
        plain.analysis().pses().len()
    );

    for pse in 0..rich.analysis().pses().len() {
        let (r, t, _) =
            run_partitioned(&expanded, &builtins, "handle", Arc::clone(&model), pse, |ctx| {
                build_frame(ctx, &expanded)
            })
            .unwrap_or_else(|e| panic!("inlined pse {pse}: {e}"));
        assert_eq!(r, ret, "return at inlined pse {pse}");
        assert_eq!(t, trace, "trace at inlined pse {pse}");
    }
}
