//! Throughput-layer integration: the analysis cache must be *invisible*
//! to correctness — a cache hit returns exactly the analysis a fresh run
//! would compute — and the multi-session manager must share one analysis
//! across sessions while keeping per-session runtime state (plans,
//! epochs, contexts) isolated.

use std::sync::Arc;

use method_partitioning::analysis::{analyze, AnalysisCache, DEFAULT_CACHE_CAPACITY};
use method_partitioning::core::session::{SessionConfig, SessionManager};
use method_partitioning::cost::{CostModel, DataSizeModel, ExecTimeModel};
use method_partitioning::ir::interp::BuiltinRegistry;
use method_partitioning::ir::parse::parse_program;
use method_partitioning::ir::Value;
use method_partitioning::obs::MetricValue;
use proptest::prelude::*;

/// Builds a random but well-formed handler with `ops` straight-line
/// operations, an optional early-exit branch, and an optional counted
/// loop (the same shape the analysis property suite uses).
fn random_source(ops: &[u8], with_branch: bool, with_loop: bool) -> String {
    let mut body = String::new();
    body.push_str("    acc = x\n");
    if with_branch {
        body.push_str("    if x < 0 goto bail\n");
    }
    if with_loop {
        body.push_str(
            "    i = 0\nhead:\n    if i >= 3 goto after\n    acc = acc + i\n    i = i + 1\n    goto head\nafter:\n",
        );
    }
    for (i, op) in ops.iter().enumerate() {
        match op % 5 {
            0 => body.push_str(&format!("    acc = acc + {}\n", i + 1)),
            1 => body.push_str(&format!("    v{i} = acc * 2\n    acc = acc + v{i}\n")),
            2 => body.push_str(&format!("    w{i} = call grind(acc)\n    acc = w{i}\n")),
            3 => body.push_str(&format!("    acc = acc - {i}\n")),
            _ => body.push_str(&format!("    z{i} = acc > {i}\n    acc = acc + z{i}\n")),
        }
    }
    body.push_str("    native out(acc)\n    return acc\n");
    if with_branch {
        body.push_str("bail:\n    return -1\n");
    }
    format!("fn gen(x) {{\n{body}}}\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A cache hit is indistinguishable from fresh analysis: same Arc on
    /// the repeat lookup, and identical PSE edges, `INTER(e)` live sets,
    /// and target-path counts compared to an uncached `analyze()`.
    #[test]
    fn cached_analysis_is_identical_to_fresh(
        ops in proptest::collection::vec(0u8..=4, 0..8),
        with_branch in any::<bool>(),
        with_loop in any::<bool>(),
    ) {
        let src = random_source(&ops, with_branch, with_loop);
        let program = Arc::new(parse_program(&src).unwrap());
        let model: Arc<dyn CostModel> = Arc::new(DataSizeModel::new());
        let cache = AnalysisCache::new(DEFAULT_CACHE_CAPACITY);

        let first = cache
            .get_or_analyze(&program, "gen", model.name(), model.as_ref(), Default::default())
            .unwrap();
        let second = cache
            .get_or_analyze(&program, "gen", model.name(), model.as_ref(), Default::default())
            .unwrap();
        prop_assert!(Arc::ptr_eq(&first, &second), "the hit must share the analysis Arc");
        prop_assert_eq!(cache.misses(), 1);
        prop_assert_eq!(cache.hits(), 1);

        let fresh = analyze(&program, "gen", model.as_ref(), Default::default()).unwrap();
        prop_assert_eq!(fresh.pses().len(), second.pses().len());
        for (a, b) in fresh.pses().iter().zip(second.pses().iter()) {
            prop_assert_eq!(a.edge, b.edge);
            prop_assert_eq!(&a.inter, &b.inter, "INTER(e) must match the fresh analysis");
        }
        prop_assert_eq!(fresh.paths.paths.len(), second.paths.paths.len());
        prop_assert_eq!(fresh.stops.len(), second.stops.len());

        // A different cost model is a different cache identity.
        let other: Arc<dyn CostModel> = Arc::new(ExecTimeModel::new());
        let third = cache
            .get_or_analyze(&program, "gen", other.name(), other.as_ref(), Default::default())
            .unwrap();
        prop_assert!(!Arc::ptr_eq(&second, &third));
        prop_assert_eq!(cache.misses(), 2);
    }
}

const DOUBLE_SRC: &str = r#"
fn double(x) {
    y = x * 2
    native out(y)
    return y
}
"#;

fn receiver_builtins() -> BuiltinRegistry {
    let mut b = BuiltinRegistry::new();
    b.register_native("out", 1, |_, _| Ok(Value::Null));
    b
}

/// Six sessions over three workers: one analysis miss, five shared hits,
/// the hit gauge visible on the manager's hub, and per-session delivery
/// ordering intact under round-robin interleaving.
#[test]
fn manager_shares_analysis_and_reports_cache_hits() {
    let program = Arc::new(parse_program(DOUBLE_SRC).unwrap());
    let mut manager = SessionManager::new(SessionConfig::default().with_workers(3));
    for _ in 0..6 {
        manager
            .open_session(
                Arc::clone(&program),
                "double",
                Arc::new(DataSizeModel::new()),
                BuiltinRegistry::new(),
                receiver_builtins(),
            )
            .unwrap();
    }
    assert_eq!(manager.cache().misses(), 1, "first session computes the analysis");
    assert_eq!(manager.cache().hits(), 5, "the other five share it");
    assert!(manager.cache().hit_rate() > 0.0);

    for round in 0..3u64 {
        for s in 0..6 {
            let out = manager.deliver(s, move |_| Ok(vec![Value::Int(7)])).unwrap();
            assert_eq!(out.seq, round + 1, "per-session ordering under interleaving");
            assert_eq!(out.ret, Some(Value::Int(14)));
        }
    }

    let snap = manager.obs().registry().snapshot();
    let hits = snap
        .metrics
        .iter()
        .find(|m| m.name == "analysis_cache_hits")
        .expect("cache hit gauge registered on the manager hub");
    match hits.value {
        MetricValue::Gauge(v) => assert!(v >= 5.0, "hit gauge mirrors the cache: {v}"),
        ref other => panic!("analysis_cache_hits should be a gauge, got {other:?}"),
    }
    assert_eq!(manager.shutdown(), 18);
}
