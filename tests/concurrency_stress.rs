//! Concurrency stress: plan flags are shared atomics; switching them from
//! another thread while messages flow must never corrupt results.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use method_partitioning::core::partitioned::PartitionedHandler;
use method_partitioning::core::profile::TriggerPolicy;
use method_partitioning::cost::DataSizeModel;
use method_partitioning::ir::interp::{BuiltinRegistry, ExecCtx};
use method_partitioning::ir::parse::parse_program;
use method_partitioning::ir::types::ElemType;
use method_partitioning::ir::{IrError, Program, Value};
use method_partitioning::jecho::LocalPair;

const SRC: &str = r#"
class Msg { n: int, data: ref }

fn squash(m) {
    out = new Msg
    out.n = 8
    d = new byte[8]
    out.data = d
    return out
}

fn take(event) {
    ok = event instanceof Msg
    if ok == 0 goto skip
    m = (Msg) event
    s = call squash(m)
    native keep(s)
    return 1
skip:
    return 0
}
"#;

fn msg(
    program: &Arc<Program>,
    n: usize,
) -> impl FnOnce(&mut ExecCtx) -> Result<Vec<Value>, IrError> + '_ {
    let classes = &program.classes;
    move |ctx| {
        let class = classes.id("Msg").unwrap();
        let decl = classes.decl(class);
        let m = ctx.heap.alloc_object(classes, class);
        let d = ctx.heap.alloc_array(ElemType::Byte, n);
        ctx.heap.set_field(m, decl.field("n").unwrap(), Value::Int(n as i64))?;
        ctx.heap.set_field(m, decl.field("data").unwrap(), Value::Ref(d))?;
        Ok(vec![Value::Ref(m)])
    }
}

/// One thread flips the plan between "ship raw" and "squash at sender" as
/// fast as it can; the main thread pushes messages through a LocalPair.
/// Every message must still produce the correct result.
#[test]
fn plan_flapping_under_concurrent_traffic_is_safe() {
    let program = Arc::new(parse_program(SRC).unwrap());
    let mut receiver_builtins = BuiltinRegistry::new();
    receiver_builtins.register_native("keep", 1, |_, _| Ok(Value::Null));

    let mut pair = LocalPair::spawn(
        Arc::clone(&program),
        "take",
        Arc::new(DataSizeModel::new()),
        BuiltinRegistry::new(),
        receiver_builtins,
        TriggerPolicy::Never, // adaptation comes from the flapper thread
    )
    .unwrap();

    let handler: Arc<PartitionedHandler> = Arc::clone(pair.handler());
    // Identify the two plans.
    let entry = handler.entry_pse().expect("entry PSE");
    let late: Vec<usize> = (0..handler.analysis().pses().len())
        .filter(|&i| !handler.analysis().pses()[i].edge.is_entry())
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let flap_handler = Arc::clone(&handler);
    let late_clone = late.clone();
    let flapper = std::thread::spawn(move || {
        let mut flips = 0u64;
        while !stop_flag.load(Ordering::Relaxed) {
            flap_handler.plan().install(&[entry]);
            flap_handler.plan().install(&late_clone);
            flips += 2;
        }
        flips
    });

    let rounds = 200;
    for _ in 0..rounds {
        pair.publish(msg(&program, 4096)).unwrap();
        let outcome = pair.next_outcome().unwrap();
        assert_eq!(outcome.ret, Some(Value::Int(1)));
        // Whatever mixture of flags the message observed, it split at a
        // real PSE and carried either the raw message or the squashed one.
        assert!(
            outcome.wire_bytes > 4000 || outcome.wire_bytes < 200,
            "wire bytes {} look like a torn payload",
            outcome.wire_bytes
        );
    }
    stop.store(true, Ordering::Relaxed);
    let flips = flapper.join().unwrap();
    assert!(flips > 0, "the flapper actually ran");
    pair.shutdown().unwrap();
}

/// Many sender threads share one analyzed handler (each gets its own
/// modulator clone); results stay correct and independent.
#[test]
fn shared_handler_across_sender_threads() {
    let program = Arc::new(parse_program(SRC).unwrap());
    let handler =
        PartitionedHandler::analyze(Arc::clone(&program), "take", Arc::new(DataSizeModel::new()))
            .unwrap();
    // Use the "squash at sender" plan.
    let late: Vec<usize> = (0..handler.analysis().pses().len())
        .filter(|&i| !handler.analysis().pses()[i].edge.is_entry())
        .collect();
    handler.plan().install(&late);

    let threads: Vec<_> = (0..8)
        .map(|t| {
            let handler = Arc::clone(&handler);
            let program = Arc::clone(&program);
            std::thread::spawn(move || {
                let modulator = handler.modulator();
                let demodulator = handler.demodulator();
                let mut keep_builtins = BuiltinRegistry::new();
                keep_builtins.register_native("keep", 1, |_, _| Ok(Value::Null));
                for i in 0..50 {
                    let mut sender = ExecCtx::new(&program);
                    let args = msg(&program, 1000 + t * 100 + i)(&mut sender).unwrap();
                    let run = modulator.handle(&mut sender, args).unwrap();
                    let mut receiver = ExecCtx::with_builtins(&program, keep_builtins.clone());
                    let out = demodulator.handle(&mut receiver, &run.message).unwrap();
                    assert_eq!(out.ret, Some(Value::Int(1)));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}
