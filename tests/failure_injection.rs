//! Failure injection: the runtime must stay safe under lost, duplicated,
//! or corrupted control traffic and malformed continuations.

use std::sync::Arc;

use method_partitioning::core::continuation::ContinuationMessage;
use method_partitioning::core::partitioned::PartitionedHandler;
use method_partitioning::core::profile::{
    DemodMessageProfile, ModMessageProfile, PseSample, TriggerPolicy,
};
use method_partitioning::core::reconfig::ReconfigUnit;
use method_partitioning::cost::{CostModel, DataSizeModel, RuntimeCostKind};
use method_partitioning::ir::interp::{BuiltinRegistry, ExecCtx};
use method_partitioning::ir::marshal::Marshalled;
use method_partitioning::ir::parse::parse_program;
use method_partitioning::ir::types::ElemType;
use method_partitioning::ir::{IrError, Program, Value};

fn setup() -> (Arc<Program>, Arc<PartitionedHandler>, BuiltinRegistry) {
    let program = Arc::new(
        parse_program(
            r#"
            class Item { size: int, data: ref }
            fn sink(event) {
                ok = event instanceof Item
                if ok == 0 goto skip
                it = (Item) event
                d = it.data
                native store(d)
                return 1
            skip:
                return 0
            }
            "#,
        )
        .unwrap(),
    );
    let handler = PartitionedHandler::analyze(
        Arc::clone(&program),
        "sink",
        Arc::new(DataSizeModel::new()) as Arc<dyn CostModel>,
    )
    .unwrap();
    let mut builtins = BuiltinRegistry::new();
    builtins.register_native("store", 1, |_, _| Ok(Value::Null));
    (program, handler, builtins)
}

fn make_item(program: &Program, ctx: &mut ExecCtx, n: usize) -> Vec<Value> {
    let classes = &program.classes;
    let class = classes.id("Item").unwrap();
    let decl = classes.decl(class);
    let it = ctx.heap.alloc_object(classes, class);
    let d = ctx.heap.alloc_array(ElemType::Byte, n);
    ctx.heap.set_field(it, decl.field("size").unwrap(), Value::Int(n as i64)).unwrap();
    ctx.heap.set_field(it, decl.field("data").unwrap(), Value::Ref(d)).unwrap();
    vec![Value::Ref(it)]
}

#[test]
fn corrupted_continuation_payload_is_rejected_not_crashing() {
    let (program, handler, builtins) = setup();
    let mut sender = ExecCtx::new(&program);
    let args = make_item(&program, &mut sender, 256);
    let run = handler.modulator().handle(&mut sender, args).unwrap();

    // Corrupt the payload in several ways; the demodulator must return an
    // error each time, never panic or execute garbage.
    let base = run.message;
    let corruptions: Vec<ContinuationMessage> = vec![
        // Truncated payload.
        ContinuationMessage {
            pse: base.pse,
            payload: Marshalled::from_bytes(
                base.payload.as_bytes()[..base.payload.wire_size() / 2].to_vec(),
            ),
            mod_work: base.mod_work,
            epoch: base.epoch,
        },
        // Garbage bytes.
        ContinuationMessage {
            pse: base.pse,
            payload: Marshalled::from_bytes(vec![0xFF; 64]),
            mod_work: base.mod_work,
            epoch: base.epoch,
        },
        // Unknown split point.
        ContinuationMessage {
            pse: 4242,
            payload: base.payload.clone(),
            mod_work: base.mod_work,
            epoch: base.epoch,
        },
    ];
    for (i, msg) in corruptions.iter().enumerate() {
        let mut receiver = ExecCtx::with_builtins(&program, builtins.clone());
        let err = handler.demodulator().handle(&mut receiver, msg);
        assert!(err.is_err(), "corruption {i} must be detected");
        assert!(
            matches!(err.unwrap_err(), IrError::Marshal(_) | IrError::Continuation(_)),
            "corruption {i} yields a marshal/continuation error"
        );
        assert!(receiver.trace.is_empty(), "no native ran for corruption {i}");
    }

    // The original message still works after all that.
    let mut receiver = ExecCtx::with_builtins(&program, builtins);
    let out = handler.demodulator().handle(&mut receiver, &base).unwrap();
    assert_eq!(out.ret, Some(Value::Int(1)));
}

#[test]
fn lost_and_duplicated_feedback_keeps_plans_valid() {
    let (_, handler, _) = setup();
    let analysis = Arc::clone(handler.analysis());
    let mut unit = ReconfigUnit::new(analysis, RuntimeCostKind::DataSize, TriggerPolicy::Rate(1));

    let sample = |pse: usize, bytes: u64| PseSample {
        pse,
        mod_work: 10,
        payload_bytes: Some(bytes),
        was_split: true,
    };

    // Lost demod halves: record mod profiles only.
    for _ in 0..10 {
        unit.record_mod(ModMessageProfile {
            samples: vec![sample(0, 5000)],
            split: 0,
            mod_work: 10,
            t_mod: None,
        });
    }
    // Duplicated demod halves, including for messages never seen.
    for _ in 0..20 {
        unit.record_demod(DemodMessageProfile { pse: 0, demod_work: 99, t_demod: None });
        unit.record_demod(DemodMessageProfile { pse: 7, demod_work: 1, t_demod: None });
    }
    // Out-of-range samples are ignored.
    unit.record_samples(&[sample(999, 1)]);

    // Whatever happened, reconfiguration still produces a valid cut.
    let update = unit.force_reconfigure().unwrap();
    handler.plan().install(&update.active);
    handler.plan().validate_cut(handler.analysis()).unwrap();
}

#[test]
fn stale_plan_update_is_still_a_valid_cut() {
    let (program, handler, builtins) = setup();
    // A "stale" update computed from old statistics is applied after the
    // traffic has changed completely: correctness (being a cut) must not
    // depend on traffic.
    let stale: Vec<usize> = (0..handler.analysis().pses().len()).collect();
    handler.plan().install(&stale);
    handler.plan().validate_cut(handler.analysis()).unwrap();

    let mut sender = ExecCtx::new(&program);
    let args = make_item(&program, &mut sender, 8);
    let run = handler.modulator().handle(&mut sender, args).unwrap();
    let mut receiver = ExecCtx::with_builtins(&program, builtins);
    let out = handler.demodulator().handle(&mut receiver, &run.message).unwrap();
    assert_eq!(out.ret, Some(Value::Int(1)));
}

#[test]
fn plan_torn_between_updates_still_yields_correct_results() {
    // Concurrent plan switching: a message may observe a mixture of old
    // and new flags. Any active PSE produces a correct continuation, so
    // the result must be unaffected. Emulate torn states by toggling
    // every combination of two plans' flags.
    let (program, handler, builtins) = setup();
    let n = handler.analysis().pses().len();
    let all: Vec<usize> = (0..n).collect();
    for mask in 1u32..(1 << n.min(5)) {
        let subset: Vec<usize> = all.iter().copied().filter(|i| mask & (1 << i) != 0).collect();
        handler.plan().install(&subset);
        if handler.plan().validate_cut(handler.analysis()).is_err() {
            continue; // a non-cut mixture is rejected by the modulator
        }
        let mut sender = ExecCtx::new(&program);
        let args = make_item(&program, &mut sender, 64);
        let run = handler.modulator().handle(&mut sender, args).unwrap();
        let mut receiver = ExecCtx::with_builtins(&program, builtins.clone());
        let out = handler.demodulator().handle(&mut receiver, &run.message).unwrap();
        assert_eq!(out.ret, Some(Value::Int(1)), "plan {subset:?}");
    }
}

#[test]
fn adaptation_survives_a_lossy_control_channel() {
    use method_partitioning::jecho::{SimConfig, SimSession};
    use method_partitioning::simnet::{Host, Link, SimTime};

    // A handler with a compaction stage, so the late split actually
    // shrinks the wire (unlike `sink`, whose every split ships the blob).
    let program = Arc::new(
        parse_program(
            r#"
            class Item { size: int, data: ref }
            fn digestion(event) {
                ok = event instanceof Item
                if ok == 0 goto skip
                it = (Item) event
                g = call digest(it)
                native store(g)
                return 1
            skip:
                return 0
            }
            "#,
        )
        .unwrap(),
    );
    let mut builtins = BuiltinRegistry::new();
    builtins.register_native("store", 1, |_, _| Ok(Value::Null));
    let program_for_digest = Arc::clone(&program);
    builtins.register_pure(
        "digest",
        |_, _| 10,
        move |heap, _args| {
            let classes = &program_for_digest.classes;
            let class = classes.id("Item").unwrap();
            let decl = classes.decl(class);
            let out = heap.alloc_object(classes, class);
            let small = heap.alloc_array(ElemType::Byte, 16);
            heap.set_field(out, decl.field("size").unwrap(), Value::Int(16))?;
            heap.set_field(out, decl.field("data").unwrap(), Value::Ref(small))?;
            Ok(Value::Ref(out))
        },
    );

    let make = |loss: f64| {
        SimSession::adaptive(
            Arc::clone(&program),
            "digestion",
            Arc::new(DataSizeModel::new()),
            builtins.clone(),
            builtins.clone(),
            SimConfig::new(
                Host::new("s", 1_000_000.0),
                Link::new("l", SimTime::from_millis(1), 1_000_000.0),
                Host::new("r", 1_000_000.0),
                TriggerPolicy::Rate(1),
            )
            .with_control_loss(loss, 77),
        )
        .unwrap()
    };

    // 60% of plan updates are lost; large items still force adaptation to
    // the post-digest split eventually.
    let mut lossy = make(0.6);
    for _ in 0..20 {
        let p = Arc::clone(&program);
        lossy.deliver(move |ctx| Ok(make_item(&p, ctx, 50_000))).unwrap();
    }
    assert!(lossy.plans_dropped() >= 1, "losses actually happened");
    let last = lossy.reports().last().unwrap();
    assert!(last.wire_bytes < 1000, "converged despite losses: {} bytes", last.wire_bytes);

    // Total loss: the initial static plan stays forever, and nothing breaks.
    let mut dead = make(1.0);
    for _ in 0..8 {
        let p = Arc::clone(&program);
        dead.deliver(move |ctx| Ok(make_item(&p, ctx, 50_000))).unwrap();
    }
    assert_eq!(dead.plan_installs(), 0);
    assert_eq!(dead.reports().last().unwrap().ret, Some(Value::Int(1)));
}

#[test]
fn duplicated_event_delivery_is_idempotent_at_the_subscriber() {
    use method_partitioning::ir::interp::BuiltinRegistry as Builtins;
    use method_partitioning::jecho::{TcpReceiver, TcpSender};

    let (program, _, builtins) = setup();
    let receiver = TcpReceiver::bind(
        Arc::clone(&program),
        "sink",
        Arc::new(DataSizeModel::new()),
        builtins,
        TriggerPolicy::Never,
    )
    .unwrap();
    let mut sender = TcpSender::connect(
        Arc::clone(&program),
        Arc::clone(receiver.handler()),
        Builtins::new(),
        receiver.port(),
    )
    .unwrap();

    // One modulated event, delivered three times (an at-least-once wire
    // under retransmission); then a fresh one.
    let p = Arc::clone(&program);
    let (event, t_mod) = sender.modulate(move |ctx| Ok(make_item(&p, ctx, 512))).unwrap();
    for _ in 0..3 {
        sender.send_event(&event, t_mod).unwrap();
    }
    let p = Arc::clone(&program);
    sender.publish(move |ctx| Ok(make_item(&p, ctx, 512))).unwrap();

    // The duplicates are acknowledged but not re-applied: exactly two
    // outcomes surface, in seq order.
    assert_eq!(receiver.next_outcome().unwrap().seq, 1);
    assert_eq!(receiver.next_outcome().unwrap().seq, 2);
    sender.shutdown().unwrap();
    assert_eq!(receiver.join().unwrap(), 2, "each event applied exactly once");
}

#[test]
fn receiver_restart_mid_stream_is_survived_by_the_supervisor() {
    use method_partitioning::ir::interp::BuiltinRegistry as Builtins;
    use method_partitioning::jecho::{RetryPolicy, Supervisor, TcpReceiver};
    use std::time::Duration;

    let (program, _, builtins) = setup();
    // The receiver drops the connection after 4 events (a restarting
    // subscriber front-end); the supervisor must notice the stalled ack
    // watermark, redial, and replay its unacked window.
    let receiver = TcpReceiver::bind_faulty(
        Arc::clone(&program),
        "sink",
        Arc::new(DataSizeModel::new()),
        builtins,
        TriggerPolicy::Rate(1),
        4,
    )
    .unwrap();
    let mut supervisor = Supervisor::new(
        Arc::clone(&program),
        Arc::clone(receiver.handler()),
        Builtins::new(),
        receiver.port(),
        RetryPolicy { stall_timeout: Duration::from_millis(100), ..RetryPolicy::default() },
    );
    for _ in 0..12 {
        let p = Arc::clone(&program);
        // Sends may land in the dying socket's buffer; the unacked window
        // recovers them after the reconnect.
        let _ = supervisor.publish(move |ctx| Ok(make_item(&p, ctx, 1024)));
    }
    supervisor.await_drain(Duration::from_secs(30)).unwrap();
    assert!(supervisor.reconnects() >= 1, "the restart actually happened");
    assert_eq!(supervisor.acked(), 12, "no event lost");
    assert_eq!(supervisor.unacked(), 0);
    supervisor.shutdown(Duration::from_secs(5)).unwrap();
    assert_eq!(receiver.join().unwrap(), 12, "no event double-applied");
}

#[test]
fn panicking_native_fails_only_its_envelope_on_the_session_manager() {
    use method_partitioning::core::failure::FailureKind;
    use method_partitioning::core::session::{SessionConfig, SessionManager};
    use std::sync::atomic::{AtomicU64, Ordering};

    let (program, _, _) = setup();
    // A receiver-side native that panics on its second execution: one
    // poisoned envelope among healthy traffic.
    let calls = Arc::new(AtomicU64::new(0));
    let mut builtins = BuiltinRegistry::new();
    let seen = Arc::clone(&calls);
    builtins.register_native("store", 1, move |_, _| {
        if seen.fetch_add(1, Ordering::SeqCst) + 1 == 2 {
            panic!("injected native panic");
        }
        Ok(Value::Null)
    });

    let mut mgr =
        SessionManager::new(SessionConfig::default().with_workers(1).with_degradation(3, 3));
    let id = mgr
        .open_session(
            Arc::clone(&program),
            "sink",
            Arc::new(DataSizeModel::new()),
            BuiltinRegistry::new(),
            builtins,
        )
        .unwrap();

    let mut failures = Vec::new();
    for n in 1..=5u64 {
        let p = Arc::clone(&program);
        match mgr.deliver(id, move |ctx| Ok(make_item(&p, ctx, 64))) {
            Ok(out) => assert_eq!(out.ret, Some(Value::Int(1)), "envelope {n} applied"),
            Err(e) => {
                assert!(matches!(e, IrError::HandlerPanic(_)), "isolated, not fatal: {e}");
                failures.push(n);
            }
        }
    }
    // Exactly the poisoned envelope failed; the worker survived and kept
    // serving the other four.
    assert_eq!(failures, vec![2], "only the panicking envelope failed");
    let letters = mgr.dead_letters(id).unwrap();
    assert_eq!(letters.len(), 1);
    assert_eq!(letters[0].seq, 2);
    assert_eq!(letters[0].kind, FailureKind::Panic);
    let snap = mgr.handler(id).unwrap().obs().registry().snapshot();
    assert_eq!(
        snap.get("handler_panics_total", &[("side", "demodulator")],),
        Some(&method_partitioning::obs::MetricValue::Counter(1)),
    );
    assert_eq!(snap.counter_sum("quarantined_total"), 1);
    mgr.shutdown();
}

#[test]
fn kill_and_restart_recovers_sessions_from_journal_with_zero_reanalysis() {
    use method_partitioning::core::journal::SessionJournal;
    use method_partitioning::core::session::{SessionConfig, SessionManager};
    use method_partitioning::obs::MetricValue;

    let (program, _, builtins) = setup();
    let path = std::env::temp_dir()
        .join(format!("mpart-failure-injection-recovery-{}.journal", std::process::id()));
    let path_str = path.to_str().unwrap().to_string();
    let _ = std::fs::remove_file(&path);

    // Incumbent process: three journaled sessions, one busy enough to
    // reconfigure, all checkpointing plan commits and ack watermarks.
    let journal = Arc::new(SessionJournal::at_path(&path_str).unwrap());
    let config = SessionConfig::default()
        .with_workers(2)
        .with_trigger(TriggerPolicy::Rate(1))
        .with_journal(Arc::clone(&journal));
    let mut incumbent = SessionManager::new(config.clone());
    let ids: Vec<_> = (0..3)
        .map(|_| {
            incumbent
                .open_session(
                    Arc::clone(&program),
                    "sink",
                    Arc::new(DataSizeModel::new()),
                    BuiltinRegistry::new(),
                    builtins.clone(),
                )
                .unwrap()
        })
        .collect();
    for _ in 0..8 {
        let p = Arc::clone(&program);
        incumbent.deliver(ids[0], move |ctx| Ok(make_item(&p, ctx, 50_000))).unwrap();
    }
    let p = Arc::clone(&program);
    incumbent.deliver(ids[1], move |ctx| Ok(make_item(&p, ctx, 64))).unwrap();
    let busy_active = incumbent.handler(ids[0]).unwrap().plan().active();
    let cache = Arc::clone(incumbent.cache());
    // "Kill": the manager goes away; only the journal file and the warm
    // analysis cache survive the crash.
    incumbent.shutdown();

    // Restart: replay the journal into a manager over the shared cache.
    let journal = Arc::new(SessionJournal::at_path(&path_str).unwrap());
    let snapshots = journal.replay().unwrap();
    assert_eq!(snapshots.len(), 3, "every session was journaled");
    assert_eq!(snapshots[&0].watermark, 8);
    assert_eq!(snapshots[&0].active, busy_active, "the journal captured the live cut");
    let misses_before = cache.misses();
    let mut restarted = SessionManager::with_shared_cache(config, cache);
    for snapshot in snapshots.values() {
        restarted
            .restore_session(
                Arc::clone(&program),
                &snapshot.func,
                Arc::new(DataSizeModel::new()),
                BuiltinRegistry::new(),
                builtins.clone(),
                snapshot,
            )
            .unwrap();
    }
    // Zero re-analysis: the cache-miss gauge is unchanged across the
    // restart (every restore was a cache hit).
    assert_eq!(restarted.cache().misses(), misses_before);
    let snap = restarted.obs().registry().snapshot();
    assert_eq!(
        snap.get("analysis_cache_misses", &[]),
        Some(&MetricValue::Gauge(misses_before as f64)),
        "cache-miss gauge unchanged after recovery"
    );
    assert_eq!(snap.get("sessions_recovered", &[]), Some(&MetricValue::Gauge(3.0)));
    assert_eq!(restarted.recovered(), 3);
    assert_eq!(
        restarted.handler(0).unwrap().plan().active(),
        busy_active,
        "the journaled plan was reinstalled without re-analysis"
    );
    // Sequence numbering resumes past the journaled watermark.
    let p = Arc::clone(&program);
    let out = restarted.deliver(0, move |ctx| Ok(make_item(&p, ctx, 64))).unwrap();
    assert_eq!(out.seq, 9, "no acked message re-delivered, none skipped");
    restarted.shutdown();
    let _ = std::fs::remove_file(&path);
}
