//! Intra-repo markdown link checker for the top-level docs.
//!
//! The docs cross-reference each other heavily (README → DESIGN →
//! ARCHITECTURE → OBSERVABILITY → WIRE → EXPERIMENTS) and link into the
//! source tree; a renamed file or section silently strands those links.
//! This test walks every `[text](target)` link in the checked docs and
//! fails on:
//!
//! - relative targets that do not exist on disk,
//! - `#anchor` fragments that match no heading in the target document
//!   (GitHub slug rules: lowercase, punctuation stripped, spaces to
//!   hyphens, `-N` suffixes for duplicates).
//!
//! External links (`http://`, `https://`, `mailto:`) are out of scope.
//! CI runs this in the docs job, next to rustdoc.

use std::collections::HashMap;
use std::path::PathBuf;

/// Top-level documents whose outgoing links are verified. Link *targets*
/// may be any file in the repo.
const DOCS: &[&str] = &[
    "README.md",
    "DESIGN.md",
    "ARCHITECTURE.md",
    "OBSERVABILITY.md",
    "EXPERIMENTS.md",
    "WIRE.md",
    "ROADMAP.md",
];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extracts `(line_number, target)` for every inline markdown link,
/// skipping fenced code blocks (``` ... ```) where link syntax is code,
/// not reference.
fn extract_links(text: &str) -> Vec<(usize, String)> {
    let mut links = Vec::new();
    let mut in_fence = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            // Find the `](` that closes a link text and opens its target.
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                let start = i + 2;
                // The target runs to the matching `)` (no nesting in our
                // docs; titles like `(... "title")` are not used).
                if let Some(rel_end) = line[start..].find(')') {
                    let target = line[start..start + rel_end].trim();
                    if !target.is_empty() {
                        links.push((lineno + 1, target.to_string()));
                    }
                    i = start + rel_end;
                }
            }
            i += 1;
        }
    }
    links
}

/// GitHub-style anchor slugs for every heading in a markdown document,
/// including the `-N` suffixes appended to duplicates.
fn heading_slugs(text: &str) -> Vec<String> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut slugs = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence || !line.starts_with('#') {
            continue;
        }
        let heading = line.trim_start_matches('#').trim();
        let mut base = String::new();
        for c in heading.chars() {
            match c {
                'A'..='Z' => base.push(c.to_ascii_lowercase()),
                'a'..='z' | '0'..='9' | '_' | '-' => base.push(c),
                ' ' => base.push('-'),
                // Punctuation (including `·`, `§`, backticks, colons)
                // is dropped, as GitHub does.
                _ => {}
            }
        }
        let n = counts.entry(base.clone()).or_insert(0);
        let slug = if *n == 0 { base.clone() } else { format!("{base}-{n}") };
        *n += 1;
        slugs.push(slug);
    }
    slugs
}

#[test]
fn intra_repo_markdown_links_resolve() {
    let root = repo_root();
    let mut slug_cache: HashMap<PathBuf, Vec<String>> = HashMap::new();
    let mut broken = Vec::new();

    for doc in DOCS {
        let doc_path = root.join(doc);
        let text = match std::fs::read_to_string(&doc_path) {
            Ok(t) => t,
            Err(_) => {
                broken.push(format!("{doc}: checked document is missing"));
                continue;
            }
        };
        slug_cache.entry(doc_path.clone()).or_insert_with(|| heading_slugs(&text));

        for (lineno, target) in extract_links(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let (file_part, anchor) = match target.split_once('#') {
                Some((f, a)) => (f, Some(a.to_string())),
                None => (target.as_str(), None),
            };
            // Resolve the file half: empty means "this document".
            let resolved: PathBuf =
                if file_part.is_empty() { doc_path.clone() } else { root.join(file_part) };
            if !resolved.exists() {
                broken.push(format!("{doc}:{lineno}: target `{target}` does not exist"));
                continue;
            }
            // Anchors only make sense into markdown documents.
            if let Some(anchor) = anchor {
                if resolved.extension().and_then(|e| e.to_str()) != Some("md") {
                    continue;
                }
                let slugs = slug_cache.entry(resolved.clone()).or_insert_with(|| {
                    std::fs::read_to_string(&resolved)
                        .map(|t| heading_slugs(&t))
                        .unwrap_or_default()
                });
                if !slugs.iter().any(|s| s == &anchor) {
                    broken.push(format!(
                        "{doc}:{lineno}: anchor `#{anchor}` not found in {}",
                        resolved.strip_prefix(&root).unwrap_or(&resolved).display()
                    ));
                }
            }
        }
    }

    assert!(broken.is_empty(), "broken intra-repo markdown links:\n  {}", broken.join("\n  "));
}

#[test]
fn link_extractor_handles_the_syntax_we_use() {
    let text = "see [a](X.md) and [b](Y.md#sec-1), skip [c](https://x)\n\
                ```\n[not a link](Z.md)\n```\n\
                [tail](W.md)";
    let links = extract_links(text);
    let targets: Vec<&str> = links.iter().map(|(_, t)| t.as_str()).collect();
    assert_eq!(targets, vec!["X.md", "Y.md#sec-1", "https://x", "W.md"]);

    let slugs = heading_slugs("# Big Title!\n## §3 · Wire format\n## Wire format\ntext");
    assert!(slugs.contains(&"big-title".to_string()), "{slugs:?}");
    assert!(slugs.contains(&"3--wire-format".to_string()), "{slugs:?}");
}
