//! End-to-end adaptation tests: the Reconfiguration Unit must converge to
//! the plan a brute-force oracle would pick, and react to load steps the
//! way the paper describes.

use std::sync::Arc;

use method_partitioning::apps::image::{image_program, image_session, make_frame, ImageVersion};
use method_partitioning::core::profile::TriggerPolicy;
use method_partitioning::core::reconfig::{runtime_weights, select_active_set};
use method_partitioning::cost::{DataSizeModel, RuntimeCostKind};
use method_partitioning::flow::brute_force_min_cut;
use mpart::PartitionedHandler;
use mpart_analysis::ENTRY;

/// Brute-force oracle: enumerate the Unit Graph as an explicit edge list
/// and find the true minimum cut with exhaustive search, then compare
/// against the runtime's Dinic-based selection.
#[test]
fn min_cut_selection_matches_brute_force_oracle() {
    let program = image_program().unwrap();
    let handler =
        PartitionedHandler::analyze(Arc::clone(&program), "push", Arc::new(DataSizeModel::new()))
            .unwrap();
    let analysis = handler.analysis();

    // Try several weight assignments, including ties and extremes.
    let n = analysis.pses().len();
    let weight_sets: Vec<Vec<u64>> = vec![
        vec![10; n],
        (0..n as u64).map(|i| i * 100 + 1).collect(),
        (0..n as u64).map(|i| 1000 - i * 100).collect(),
        vec![0; n],
    ];

    for weights in weight_sets {
        let active = select_active_set(analysis, &weights).unwrap();
        let chosen: u64 = active.iter().map(|&p| weights[p]).sum();

        // Build the explicit graph for the oracle: node ids are pcs, with
        // source = n_nodes (entry) and sink = n_nodes + 1.
        let n_nodes = analysis.ug.len();
        let source = n_nodes;
        let sink = n_nodes + 1;
        let big = 1_000_000u64;
        let mut edges: Vec<(usize, usize, u64)> = Vec::new();
        let entry_pse = analysis.pses().iter().position(|p| p.edge.from == ENTRY);
        edges.push((source, analysis.ug.start(), entry_pse.map(|p| weights[p]).unwrap_or(big)));
        for e in analysis.ug.edges() {
            let cap = analysis.pse_for_edge(e).map(|p| weights[p]).unwrap_or(big);
            edges.push((e.from, e.to, cap));
        }
        for s in analysis.stops.iter() {
            edges.push((s, sink, big));
        }
        let oracle = brute_force_min_cut(n_nodes + 2, &edges, source, sink);
        assert_eq!(chosen, oracle, "weights {weights:?}: plan {active:?}");
    }
}

/// The adaptive image session must converge to (near) the per-scenario
/// optimum and, after a scenario flip, re-converge within a few frames.
#[test]
fn image_session_adapts_within_a_few_frames() {
    let program = image_program().unwrap();
    let mut session = image_session(ImageVersion::MethodPartitioning).unwrap();

    // Phase 1: large frames -> resize at server -> small payloads.
    for _ in 0..10 {
        let p = Arc::clone(&program);
        session.deliver(move |ctx| make_frame(&p, ctx, 200)).unwrap();
    }
    let last = session.reports().last().unwrap();
    assert!(last.wire_bytes < 27_000, "large frames resized: {}", last.wire_bytes);

    // Phase 2: small frames -> ship raw.
    for _ in 0..10 {
        let p = Arc::clone(&program);
        session.deliver(move |ctx| make_frame(&p, ctx, 80)).unwrap();
    }
    let last = session.reports().last().unwrap();
    assert!(last.wire_bytes < 7_000, "small frames ship raw: {}", last.wire_bytes);

    // Count how many frames of phase 2 were needed before the plan
    // settled: adaptation lag should be small (the paper's "fine-grain,
    // low overhead adaptation").
    let phase2 = &session.reports()[10..];
    let lag = phase2.iter().position(|r| r.wire_bytes < 7_000).expect("adaptation happened");
    assert!(lag <= 4, "adaptation lag {lag} frames");
}

/// The ExecTime weights must move toward the loaded side's disadvantage:
/// when the receiver speed estimate halves, the selected split moves
/// toward the sender.
#[test]
fn exec_time_weights_shift_with_speed_estimates() {
    use method_partitioning::apps::sensor::{sensor_cost_model, sensor_program};
    use method_partitioning::core::profile::{
        DemodMessageProfile, ModMessageProfile, ProfilingUnit, PseSample,
    };

    let program = sensor_program().unwrap();
    let handler =
        PartitionedHandler::analyze(Arc::clone(&program), "process", sensor_cost_model()).unwrap();
    let analysis = handler.analysis();
    let n = analysis.pses().len();

    let feed = |speed_demod: f64| -> Vec<usize> {
        let mut unit = ProfilingUnit::new(n, 1.0);
        // Synthetic per-edge work curve: a split at node `t` has done t/N
        // of the total work (keyed by program position, not PSE id — the
        // entry PSE sits at position 0 with no modulator work at all).
        let total = 60_000.0;
        let n_nodes = analysis.ug.len() as f64;
        let samples: Vec<PseSample> = analysis
            .pses()
            .iter()
            .enumerate()
            .map(|(i, p)| PseSample {
                pse: i,
                mod_work: (total * p.edge.to as f64 / n_nodes) as u64,
                payload_bytes: Some(1000),
                was_split: false,
            })
            .collect();
        unit.record_mod(ModMessageProfile {
            samples,
            split: n - 1,
            mod_work: total as u64,
            t_mod: Some(total / 1_000_000.0), // sender speed 1M
        });
        unit.record_demod(DemodMessageProfile {
            pse: n - 1,
            demod_work: 100,
            t_demod: Some(100.0 / speed_demod),
        });
        let weights = runtime_weights(analysis, RuntimeCostKind::ExecTime, &unit.snapshot());
        select_active_set(analysis, &weights).unwrap()
    };

    let balanced = feed(1_000_000.0);
    let slow_receiver = feed(250_000.0);
    // With a 4x slower receiver the split must move later (more work on
    // the sender side): the chosen main-path PSE index grows.
    let main_pse =
        |plan: &[usize]| plan.iter().map(|&p| analysis.pses()[p].edge.to).max().unwrap_or(0);
    assert!(
        main_pse(&slow_receiver) > main_pse(&balanced),
        "balanced {balanced:?} vs slow receiver {slow_receiver:?}"
    );
}

/// Adaptation must also stop: with a `Never` trigger nothing ever changes
/// even under wildly shifting traffic.
#[test]
fn never_trigger_freezes_the_plan() {
    let program = image_program().unwrap();
    let mut session = image_session(ImageVersion::ShipRaw).unwrap();
    let initial = session.handler().plan().active();
    for side in [80i64, 200, 80, 200, 200, 80] {
        let p = Arc::clone(&program);
        session.deliver(move |ctx| make_frame(&p, ctx, side)).unwrap();
    }
    assert_eq!(session.handler().plan().active(), initial);
    assert_eq!(session.plan_installs(), 0);
    let _ = TriggerPolicy::Never; // referenced for documentation purposes
}

// ---------------------------------------------------------------------------
// Cost-model auto-selection: cache-safe re-pricing and convergence.
// ---------------------------------------------------------------------------

/// A staged handler for the model-switch tests: `decode` inflates the
/// frame 4× (the intermediate is the biggest thing in flight), two
/// `grind` stages burn `32 × rounds` work units each, and the `display`
/// native pins the tail to the receiver. Splittable before, between, and
/// after the pure stages.
const SHIFT_SRC: &str = r#"
    class Frame { n: int, rounds: int, buff: ref }

    fn show(event) {
        ok = event instanceof Frame
        if ok == 0 goto skip
        f = (Frame) event
        m = f.n
        r = f.rounds
        big = call decode(f, m)
        d1 = call grind1(big, r)
        d2 = call grind2(d1, r)
        native display(big)
        return d2
    skip:
        return 0
    }
"#;

fn shift_arg_int(args: &[method_partitioning::ir::Value], idx: usize) -> i64 {
    match args.get(idx) {
        Some(method_partitioning::ir::Value::Int(v)) => *v,
        _ => 0,
    }
}

fn shift_builtins() -> method_partitioning::ir::interp::BuiltinRegistry {
    use method_partitioning::ir::types::ElemType;
    use method_partitioning::ir::Value;
    let mut b = method_partitioning::ir::interp::BuiltinRegistry::new();
    b.register_pure(
        "decode",
        |_, args| 16 + shift_arg_int(args, 1).max(0) as u64 / 64,
        |heap, args| {
            let inflated = (shift_arg_int(args, 1).max(0) as usize) * 4;
            Ok(Value::Ref(heap.alloc_array(ElemType::Byte, inflated)))
        },
    );
    for stage in ["grind1", "grind2"] {
        b.register_pure(
            stage,
            |_, args| 32 * shift_arg_int(args, 1).max(0) as u64,
            |_, args| Ok(Value::Int(shift_arg_int(args, 1))),
        );
    }
    b.register_native("display", 4, |_, _| Ok(Value::Null));
    b
}

/// One of the model operating points the selector can instantiate.
fn shift_model(idx: usize, weight: f64) -> Arc<dyn method_partitioning::cost::CostModel> {
    use method_partitioning::cost::{CompositeModel, ExecTimeModel};
    match idx {
        0 => Arc::new(DataSizeModel::new()),
        1 => Arc::new(ExecTimeModel::new()),
        _ => Arc::new(CompositeModel::new(
            Arc::new(DataSizeModel::new()),
            weight,
            Arc::new(ExecTimeModel::new()),
            1.0 - weight,
        )),
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

    /// For any (base, new) model pair, the cached re-pricing path must
    /// keep the base PSE set (same edges, same INTER sets, same order —
    /// plan flags and profiling indices stay valid) while assigning each
    /// PSE exactly the price a fresh `analyze` under the new model gives
    /// that edge. The second probe must be answered from the cache.
    #[test]
    fn repriced_cache_entries_match_fresh_analysis(
        base_idx in 0usize..3,
        new_idx in 0usize..3,
        base_weight in 0.05f64..0.95,
        new_weight in 0.05f64..0.95,
    ) {
        use method_partitioning::analysis::{analyze, AnalysisCache};
        use method_partitioning::ir::parse::parse_program;
        use proptest::prelude::*;

        let base_model = shift_model(base_idx, base_weight);
        let new_model = shift_model(new_idx, new_weight);
        prop_assume!(base_model.cache_key() != new_model.cache_key());

        let program = parse_program(SHIFT_SRC).unwrap();
        let limits = Default::default();

        // Mirror the live flow: the deployment-time analysis enters the
        // cache first, then the switch re-prices it as a second entry.
        let cache = AnalysisCache::new(8);
        let base = cache
            .get_or_analyze(&program, "show", &base_model.cache_key(), base_model.as_ref(), limits)
            .unwrap();
        let pair_key = format!("{}>{}", base_model.cache_key(), new_model.cache_key());
        let cached = cache
            .get_or_reprice(&program, "show", &pair_key, &base, new_model.as_ref(), limits)
            .unwrap();

        // Re-pricing preserved the PSE set wholesale.
        prop_assert_eq!(cached.pses().len(), base.pses().len());
        for (b, c) in base.pses().iter().zip(cached.pses().iter()) {
            prop_assert_eq!(b.edge, c.edge);
            prop_assert_eq!(&b.inter, &c.inter);
        }

        // Where the fresh analysis keeps the same candidate edge, the
        // cached price equals the fresh price (the fresh PSE set may
        // differ: dominance pruning is estimator-dependent).
        let fresh = analyze(&program, "show", new_model.as_ref(), limits).unwrap();
        for c in cached.pses() {
            if let Some(f) = fresh.pses().iter().find(|f| f.edge == c.edge) {
                prop_assert_eq!(
                    &c.static_cost, &f.static_cost,
                    "edge {:?} under {}", c.edge, new_model.cache_key()
                );
            }
        }

        // Steady state: the same switch is one cache probe, nothing more.
        let again = cache
            .get_or_reprice(&program, "show", &pair_key, &base, new_model.as_ref(), limits)
            .unwrap();
        prop_assert!(Arc::ptr_eq(&cached, &again));
        prop_assert_eq!(cache.second_entry_misses(), 1);
        prop_assert_eq!(cache.second_entry_hits(), 1);
    }
}

/// End-to-end convergence: a session deployed with the data-size model
/// must hold it through a comms-bound phase, switch to exec-time within
/// the hysteresis budget once the workload turns compute-bound, and pay
/// the re-pricing miss exactly once — the same transition later is a
/// second-entry *hit*, and no switch ever re-runs the analysis pipeline.
#[test]
fn shifting_workload_converges_within_the_hysteresis_budget() {
    use method_partitioning::core::reconfig::ModelSelectorConfig;
    use method_partitioning::core::session::{SessionConfig, SessionManager};
    use method_partitioning::ir::parse::parse_program;
    use method_partitioning::ir::types::ElemType;
    use method_partitioning::ir::{Program, Value};

    let program = Arc::new(parse_program(SHIFT_SRC).unwrap());
    // A narrow middle band (hysteresis 1.5) plus dwell 3: the EWMAs cross
    // the composite region in fewer evaluations than the dwell during a
    // phase flip, so the transitions here commit straight to a pure model.
    let selector = ModelSelectorConfig::default()
        .with_work_per_byte(0.05)
        .with_min_messages(4)
        .with_hysteresis(1.5)
        .with_dwell(3);
    let mut mgr = SessionManager::new(
        SessionConfig::default()
            .with_workers(1)
            .with_trigger(TriggerPolicy::Rate(4))
            .with_auto_model(selector),
    );
    let id = mgr
        .open_session(
            Arc::clone(&program),
            "show",
            Arc::new(DataSizeModel::new()),
            shift_builtins(),
            shift_builtins(),
        )
        .unwrap();

    let frame = |program: &Arc<Program>, bytes: usize, rounds: i64| {
        let program = Arc::clone(program);
        move |ctx: &mut method_partitioning::ir::interp::ExecCtx| {
            let classes = &program.classes;
            let class = classes.id("Frame").unwrap();
            let decl = classes.decl(class);
            let f = ctx.heap.alloc_object(classes, class);
            let b = ctx.heap.alloc_array(ElemType::Byte, bytes);
            ctx.heap.set_field(f, decl.field("n").unwrap(), Value::Int(bytes as i64))?;
            ctx.heap.set_field(f, decl.field("rounds").unwrap(), Value::Int(rounds))?;
            ctx.heap.set_field(f, decl.field("buff").unwrap(), Value::Ref(b))?;
            Ok(vec![Value::Ref(f)])
        }
    };
    let run_phase = |bytes: usize, rounds: i64, messages: usize| -> Option<usize> {
        let mut switched_at = None;
        for i in 0..messages {
            let out = mgr.deliver(id, frame(&program, bytes, rounds)).unwrap();
            if out.model_switched && switched_at.is_none() {
                switched_at = Some(i);
            }
        }
        switched_at
    };

    // Phase A: comms-bound. The deployment model already matches — the
    // selector must not move.
    assert_eq!(run_phase(12_000, 0, 12), None, "comms-bound phase keeps data-size");

    // Phase B: compute-bound. Budget: the warm selector needs the work
    // EWMA to cross hysteresis (a handful of messages at alpha 0.5) and
    // the choice to survive `dwell` evaluations.
    let lag = run_phase(64, 100, 12).expect("compute-bound phase switches the model");
    assert!(lag <= 8, "switch within the hysteresis budget, not after {lag} messages");
    assert_eq!(mgr.cache().second_entry_misses(), 1, "first switch re-prices once");

    // Phase C: comms-bound again. Flipping back to the deployment model
    // reuses the handler's own analysis — no cache traffic at all.
    assert!(run_phase(12_000, 0, 40).is_some(), "workload flip switches back");
    assert_eq!(mgr.cache().second_entry_misses(), 1);
    assert_eq!(mgr.cache().second_entry_hits(), 0, "flip-back needs no cache probe");

    // Phase D: compute-bound again. The repeated transition is answered
    // from the cache: a second-entry hit, still only one re-pricing ever.
    assert!(run_phase(64, 100, 40).is_some(), "second compute phase switches again");
    assert_eq!(mgr.cache().second_entry_hits(), 1, "repeat switch hits the second entry");
    assert_eq!(mgr.cache().second_entry_misses(), 1);
    // The whole run performed exactly one from-scratch analysis and one
    // re-pricing: UG/DDG/liveness were never recomputed.
    assert_eq!(mgr.cache().misses(), 2);

    let handler = mgr.handler(id).unwrap();
    assert_eq!(handler.model().name(), "exec-time");
    let switches = handler.obs().registry().snapshot().counter_sum("model_switch_total");
    assert_eq!(switches, 3, "A->B, C flip-back, D re-switch");
    mgr.shutdown();
}

// ---------------------------------------------------------------------------
// Transactional reconfiguration: rollback equivalence (DESIGN.md §16).
// ---------------------------------------------------------------------------

/// A linear handler with several splittable edges: enough distinct valid
/// singleton plans that the guard tests can always find an alternate cut
/// to commit and then roll back.
const GUARD_SRC: &str = r#"
    fn guarded(x) {
        a = x * 3
        b = a + 7
        native emit(b)
        return b
    }
"#;

/// Baked-in seeds plus `MPART_CHAOS_SEED` (the CI chaos-matrix variable),
/// mirroring the chaos suite's matrix helper.
fn guard_seeds() -> Vec<u64> {
    let mut seeds = vec![3, 11, 29];
    if let Some(seed) =
        std::env::var("MPART_CHAOS_SEED").ok().and_then(|s| s.trim().parse::<u64>().ok())
    {
        if !seeds.contains(&seed) {
            seeds.push(seed);
        }
    }
    seeds
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

    /// A session whose plan switch breached the guard and rolled back
    /// must be behaviorally identical to one that never switched at all:
    /// same per-seq results, same traps at the same seqs, and the same
    /// final ack watermark — a rollback is transactional, not lossy.
    #[test]
    fn rolled_back_session_is_identical_to_a_never_switched_one(
        canary in 1u64..6,
        warmup in 2usize..6,
        traps in 1usize..4,
        tail in 1usize..6,
    ) {
        use std::time::Duration;
        use method_partitioning::core::reconfig::GuardConfig;
        use method_partitioning::core::session::{
            PrepareOutcome, SessionConfig, SessionManager,
        };
        use method_partitioning::ir::interp::BuiltinRegistry;
        use method_partitioning::ir::parse::parse_program;
        use method_partitioning::ir::Value;
        use proptest::prelude::*;

        for seed in guard_seeds() {
            let program = Arc::new(parse_program(GUARD_SRC).unwrap());
            let mut receiver = BuiltinRegistry::new();
            receiver.register_native("emit", 1, |_, _| Ok(Value::Null));
            let open = |config: SessionConfig| {
                let mut mgr = SessionManager::new(config);
                let id = mgr
                    .open_session(
                        Arc::clone(&program),
                        "guarded",
                        Arc::new(DataSizeModel::new()),
                        BuiltinRegistry::new(),
                        receiver.clone(),
                    )
                    .unwrap();
                (mgr, id)
            };
            // Explicit switches only: the trigger never fires on its own,
            // so the guarded/control sessions differ exactly by the one
            // committed (and rolled-back) plan.
            let base = SessionConfig::default()
                .with_workers(1)
                .with_trigger(TriggerPolicy::Never);
            let guard =
                GuardConfig { canary, breach_pct: 25.0, quarantine_decay: 8 };
            let (mut guarded, gid) = open(base.clone().with_guard(guard));
            let (mut control, cid) = open(base);

            // The delivery script both sessions replay verbatim: `warmup`
            // seed-derived ints, `traps` type-error envelopes (a string
            // where the handler multiplies), then `tail` more ints.
            let mut script: Vec<Value> = Vec::new();
            for i in 0..warmup {
                script.push(Value::Int(((seed as i64) * 31 + i as i64) % 97));
            }
            for _ in 0..traps {
                script.push(Value::str("not a number"));
            }
            for i in 0..tail {
                script.push(Value::Int(((seed as i64) * 17 + i as i64) % 89));
            }

            let deliver_at = |mgr: &SessionManager, id: usize, at: usize| {
                let event = script[at].clone();
                mgr.deliver(id, move |_| Ok(vec![event]))
                    .map(|o| (o.seq, o.ret))
                    .map_err(|e| e.to_string())
            };

            // Warmup feeds the guard its pre-switch baseline on both.
            for at in 0..warmup {
                prop_assert_eq!(
                    deliver_at(&guarded, gid, at),
                    deliver_at(&control, cid, at),
                    "seed {}: warmup envelope {} diverged", seed, at
                );
            }

            // Two-phase switch to an alternate valid cut — guarded only.
            let handler = Arc::clone(guarded.handler(gid).unwrap());
            let before = handler.plan().active();
            let n = handler.analysis().pses().len();
            let alt = (0..n)
                .map(|p| vec![p])
                .find(|c| {
                    handler.validate_candidate(c).is_ok() && !handler.plan().active_eq(c)
                })
                .expect("GUARD_SRC has an alternate valid cut");
            prop_assert!(matches!(
                guarded.prepare_plan(gid, &alt, Duration::from_secs(2)),
                Ok(PrepareOutcome::Ready)
            ));
            let epoch = guarded.commit_plan(gid, &alt).unwrap();
            prop_assert!(epoch > 0, "commit bumped the epoch");

            // The traps breach the guard inside the canary window (error
            // rate jumps from 0 to 1) and the tail runs on the restored
            // plan; the control just replays the same script.
            for at in warmup..script.len() {
                prop_assert_eq!(
                    deliver_at(&guarded, gid, at),
                    deliver_at(&control, cid, at),
                    "seed {}: post-commit envelope {} diverged", seed, at
                );
            }

            // The breach rolled the guarded session back to the
            // pre-switch plan and quarantined the breaching set.
            prop_assert!(
                handler.plan().active_eq(&before),
                "seed {seed}: rollback restored {before:?}, got {:?}",
                handler.plan().active()
            );
            let snapshot = handler.obs().registry().snapshot();
            prop_assert_eq!(snapshot.counter_sum("plan_rollbacks_total"), 1);
            prop_assert!(matches!(
                guarded.prepare_plan(gid, &alt, Duration::from_secs(2)),
                Ok(PrepareOutcome::Quarantined)
            ));

            // Ack watermarks are identical and contiguous: traps consumed
            // a seq but never acked, on both sides equally.
            let expected = (warmup + traps + tail) as u64;
            let guarded_mark = guarded.close_session(gid).unwrap();
            let control_mark = control.close_session(cid).unwrap();
            prop_assert_eq!(guarded_mark, control_mark);
            prop_assert_eq!(guarded_mark, expected);
            guarded.shutdown();
            control.shutdown();
        }
    }
}
