//! End-to-end adaptation tests: the Reconfiguration Unit must converge to
//! the plan a brute-force oracle would pick, and react to load steps the
//! way the paper describes.

use std::sync::Arc;

use method_partitioning::apps::image::{image_program, image_session, make_frame, ImageVersion};
use method_partitioning::core::profile::TriggerPolicy;
use method_partitioning::core::reconfig::{runtime_weights, select_active_set};
use method_partitioning::cost::{DataSizeModel, RuntimeCostKind};
use method_partitioning::flow::brute_force_min_cut;
use mpart::PartitionedHandler;
use mpart_analysis::ENTRY;

/// Brute-force oracle: enumerate the Unit Graph as an explicit edge list
/// and find the true minimum cut with exhaustive search, then compare
/// against the runtime's Dinic-based selection.
#[test]
fn min_cut_selection_matches_brute_force_oracle() {
    let program = image_program().unwrap();
    let handler =
        PartitionedHandler::analyze(Arc::clone(&program), "push", Arc::new(DataSizeModel::new()))
            .unwrap();
    let analysis = handler.analysis();

    // Try several weight assignments, including ties and extremes.
    let n = analysis.pses().len();
    let weight_sets: Vec<Vec<u64>> = vec![
        vec![10; n],
        (0..n as u64).map(|i| i * 100 + 1).collect(),
        (0..n as u64).map(|i| 1000 - i * 100).collect(),
        vec![0; n],
    ];

    for weights in weight_sets {
        let active = select_active_set(analysis, &weights).unwrap();
        let chosen: u64 = active.iter().map(|&p| weights[p]).sum();

        // Build the explicit graph for the oracle: node ids are pcs, with
        // source = n_nodes (entry) and sink = n_nodes + 1.
        let n_nodes = analysis.ug.len();
        let source = n_nodes;
        let sink = n_nodes + 1;
        let big = 1_000_000u64;
        let mut edges: Vec<(usize, usize, u64)> = Vec::new();
        let entry_pse = analysis.pses().iter().position(|p| p.edge.from == ENTRY);
        edges.push((source, analysis.ug.start(), entry_pse.map(|p| weights[p]).unwrap_or(big)));
        for e in analysis.ug.edges() {
            let cap = analysis.pse_for_edge(e).map(|p| weights[p]).unwrap_or(big);
            edges.push((e.from, e.to, cap));
        }
        for s in analysis.stops.iter() {
            edges.push((s, sink, big));
        }
        let oracle = brute_force_min_cut(n_nodes + 2, &edges, source, sink);
        assert_eq!(chosen, oracle, "weights {weights:?}: plan {active:?}");
    }
}

/// The adaptive image session must converge to (near) the per-scenario
/// optimum and, after a scenario flip, re-converge within a few frames.
#[test]
fn image_session_adapts_within_a_few_frames() {
    let program = image_program().unwrap();
    let mut session = image_session(ImageVersion::MethodPartitioning).unwrap();

    // Phase 1: large frames -> resize at server -> small payloads.
    for _ in 0..10 {
        let p = Arc::clone(&program);
        session.deliver(move |ctx| make_frame(&p, ctx, 200)).unwrap();
    }
    let last = session.reports().last().unwrap();
    assert!(last.wire_bytes < 27_000, "large frames resized: {}", last.wire_bytes);

    // Phase 2: small frames -> ship raw.
    for _ in 0..10 {
        let p = Arc::clone(&program);
        session.deliver(move |ctx| make_frame(&p, ctx, 80)).unwrap();
    }
    let last = session.reports().last().unwrap();
    assert!(last.wire_bytes < 7_000, "small frames ship raw: {}", last.wire_bytes);

    // Count how many frames of phase 2 were needed before the plan
    // settled: adaptation lag should be small (the paper's "fine-grain,
    // low overhead adaptation").
    let phase2 = &session.reports()[10..];
    let lag = phase2.iter().position(|r| r.wire_bytes < 7_000).expect("adaptation happened");
    assert!(lag <= 4, "adaptation lag {lag} frames");
}

/// The ExecTime weights must move toward the loaded side's disadvantage:
/// when the receiver speed estimate halves, the selected split moves
/// toward the sender.
#[test]
fn exec_time_weights_shift_with_speed_estimates() {
    use method_partitioning::apps::sensor::{sensor_cost_model, sensor_program};
    use method_partitioning::core::profile::{
        DemodMessageProfile, ModMessageProfile, ProfilingUnit, PseSample,
    };

    let program = sensor_program().unwrap();
    let handler =
        PartitionedHandler::analyze(Arc::clone(&program), "process", sensor_cost_model()).unwrap();
    let analysis = handler.analysis();
    let n = analysis.pses().len();

    let feed = |speed_demod: f64| -> Vec<usize> {
        let mut unit = ProfilingUnit::new(n, 1.0);
        // Synthetic per-edge work curve: a split at node `t` has done t/N
        // of the total work (keyed by program position, not PSE id — the
        // entry PSE sits at position 0 with no modulator work at all).
        let total = 60_000.0;
        let n_nodes = analysis.ug.len() as f64;
        let samples: Vec<PseSample> = analysis
            .pses()
            .iter()
            .enumerate()
            .map(|(i, p)| PseSample {
                pse: i,
                mod_work: (total * p.edge.to as f64 / n_nodes) as u64,
                payload_bytes: Some(1000),
                was_split: false,
            })
            .collect();
        unit.record_mod(ModMessageProfile {
            samples,
            split: n - 1,
            mod_work: total as u64,
            t_mod: Some(total / 1_000_000.0), // sender speed 1M
        });
        unit.record_demod(DemodMessageProfile {
            pse: n - 1,
            demod_work: 100,
            t_demod: Some(100.0 / speed_demod),
        });
        let weights = runtime_weights(analysis, RuntimeCostKind::ExecTime, &unit.snapshot());
        select_active_set(analysis, &weights).unwrap()
    };

    let balanced = feed(1_000_000.0);
    let slow_receiver = feed(250_000.0);
    // With a 4x slower receiver the split must move later (more work on
    // the sender side): the chosen main-path PSE index grows.
    let main_pse =
        |plan: &[usize]| plan.iter().map(|&p| analysis.pses()[p].edge.to).max().unwrap_or(0);
    assert!(
        main_pse(&slow_receiver) > main_pse(&balanced),
        "balanced {balanced:?} vs slow receiver {slow_receiver:?}"
    );
}

/// Adaptation must also stop: with a `Never` trigger nothing ever changes
/// even under wildly shifting traffic.
#[test]
fn never_trigger_freezes_the_plan() {
    let program = image_program().unwrap();
    let mut session = image_session(ImageVersion::ShipRaw).unwrap();
    let initial = session.handler().plan().active();
    for side in [80i64, 200, 80, 200, 200, 80] {
        let p = Arc::clone(&program);
        session.deliver(move |ctx| make_frame(&p, ctx, side)).unwrap();
    }
    assert_eq!(session.handler().plan().active(), initial);
    assert_eq!(session.plan_installs(), 0);
    let _ = TriggerPolicy::Never; // referenced for documentation purposes
}
