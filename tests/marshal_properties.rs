//! Property tests for the custom marshalling layer: random object graphs
//! (with sharing and cycles) must survive the wire bit-for-bit, and the
//! sizing strategies must agree with each other.

use method_partitioning::ir::heap::{ArrayData, Heap};
use method_partitioning::ir::marshal::{
    calculated_size, deep_digest_many, marshal_values, reflective_size, unmarshal_values,
};
use method_partitioning::ir::types::{ClassDecl, ClassTable, FieldDecl, FieldType};
use method_partitioning::ir::Value;
use proptest::prelude::*;

/// Instructions for building a random heap graph.
#[derive(Debug, Clone)]
enum Node {
    Bytes(Vec<u8>),
    Ints(Vec<i64>),
    Floats(Vec<f64>),
    /// An object whose two ref fields point at earlier nodes (by index,
    /// modulo the current count) — guarantees a connected, possibly
    /// shared graph; `back` may create cycles by pointing at itself.
    Object {
        value: i64,
        tag: String,
        link_a: usize,
        link_b: usize,
    },
}

fn node_strategy() -> impl Strategy<Value = Node> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..24).prop_map(Node::Bytes),
        proptest::collection::vec(any::<i64>(), 0..12).prop_map(Node::Ints),
        proptest::collection::vec(-1e9..1e9f64, 0..12).prop_map(Node::Floats),
        (any::<i64>(), "[a-z]{0,8}", any::<usize>(), any::<usize>())
            .prop_map(|(value, tag, link_a, link_b)| Node::Object { value, tag, link_a, link_b }),
    ]
}

fn classes() -> ClassTable {
    let mut t = ClassTable::new();
    t.declare(ClassDecl::new(
        "Node",
        vec![
            FieldDecl { name: "value".into(), ty: FieldType::Int },
            FieldDecl { name: "tag".into(), ty: FieldType::Str },
            FieldDecl { name: "a".into(), ty: FieldType::Ref },
            FieldDecl { name: "b".into(), ty: FieldType::Ref },
        ],
    ))
    .unwrap();
    t
}

fn build(heap: &mut Heap, table: &ClassTable, nodes: &[Node]) -> Vec<Value> {
    let class = table.id("Node").unwrap();
    let decl = table.decl(class);
    let (f_value, f_tag, f_a, f_b) = (
        decl.field("value").unwrap(),
        decl.field("tag").unwrap(),
        decl.field("a").unwrap(),
        decl.field("b").unwrap(),
    );
    let mut refs = Vec::new();
    for node in nodes {
        let r = match node {
            Node::Bytes(v) => heap.alloc_array_from(ArrayData::Byte(v.clone())),
            Node::Ints(v) => heap.alloc_array_from(ArrayData::Int(v.clone())),
            Node::Floats(v) => heap.alloc_array_from(ArrayData::Float(v.clone())),
            Node::Object { value, tag, link_a, link_b } => {
                let o = heap.alloc_object(table, class);
                heap.set_field(o, f_value, Value::Int(*value)).unwrap();
                heap.set_field(o, f_tag, Value::str(tag.as_str())).unwrap();
                // Link to previously-built nodes (or self, creating cycles).
                let pool_len = refs.len() + 1;
                let target_a = refs.get(link_a % pool_len).copied().unwrap_or(o);
                let target_b = refs.get(link_b % pool_len).copied().unwrap_or(o);
                heap.set_field(o, f_a, Value::Ref(target_a)).unwrap();
                heap.set_field(o, f_b, Value::Ref(target_b)).unwrap();
                o
            }
        };
        refs.push(r);
    }
    refs.into_iter().map(Value::Ref).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// marshal ∘ unmarshal preserves the whole value graph, including
    /// sharing and cycles (structure-sensitive digest equality).
    #[test]
    fn marshal_round_trip_preserves_structure(
        nodes in proptest::collection::vec(node_strategy(), 1..12),
        scalars in proptest::collection::vec(any::<i64>(), 0..4),
    ) {
        let table = classes();
        let mut heap = Heap::new();
        let mut roots = build(&mut heap, &table, &nodes);
        roots.extend(scalars.iter().map(|&i| Value::Int(i)));

        let wire = marshal_values(&heap, &roots).expect("marshal");
        let mut heap2 = Heap::new();
        let back = unmarshal_values(&mut heap2, &table, &wire).expect("unmarshal");

        let before = deep_digest_many(&heap, &roots).expect("digest before");
        let after = deep_digest_many(&heap2, &back).expect("digest after");
        prop_assert_eq!(before, after);
    }

    /// The reflective and direct sizing walks agree exactly.
    #[test]
    fn sizing_strategies_agree(
        nodes in proptest::collection::vec(node_strategy(), 1..12),
    ) {
        let table = classes();
        let mut heap = Heap::new();
        let roots = build(&mut heap, &table, &nodes);
        let direct = calculated_size(&heap, &roots).expect("direct");
        let refl = reflective_size(&heap, &table, &roots).expect("reflective");
        prop_assert_eq!(direct, refl);
    }

    /// Re-marshalling the unmarshalled graph yields the same wire size
    /// (the encoding is canonical for a given traversal order).
    #[test]
    fn marshalling_is_stable(
        nodes in proptest::collection::vec(node_strategy(), 1..10),
    ) {
        let table = classes();
        let mut heap = Heap::new();
        let roots = build(&mut heap, &table, &nodes);
        let wire1 = marshal_values(&heap, &roots).expect("first");
        let mut heap2 = Heap::new();
        let back = unmarshal_values(&mut heap2, &table, &wire1).expect("unmarshal");
        let wire2 = marshal_values(&heap2, &back).expect("second");
        prop_assert_eq!(wire1.wire_size(), wire2.wire_size());
    }

    /// Truncating the wire at any point is detected as an error — never a
    /// panic, never a silently-wrong graph.
    #[test]
    fn truncation_always_detected(
        nodes in proptest::collection::vec(node_strategy(), 1..8),
        cut_fraction in 0.0f64..1.0,
    ) {
        let table = classes();
        let mut heap = Heap::new();
        let roots = build(&mut heap, &table, &nodes);
        let wire = marshal_values(&heap, &roots).expect("marshal");
        let cut = ((wire.wire_size() as f64) * cut_fraction) as usize;
        prop_assume!(cut < wire.wire_size());
        let truncated = method_partitioning::ir::marshal::Marshalled::from_bytes(
            wire.as_bytes()[..cut].to_vec(),
        );
        let mut heap2 = Heap::new();
        let result = unmarshal_values(&mut heap2, &table, &truncated);
        prop_assert!(result.is_err());
    }
}
