//! Observability surface tests: the metric inventory is **append-only**
//! (renaming or dropping an instrument breaks every dashboard and the
//! `BENCH_*.json` consumers built on top of it), and the numbers the
//! registry reports agree with the session's own ground-truth counters.
//!
//! Both tests drive the same seeded chaos storm the chaos suite uses, so
//! every instrument in the sim/partitioning stack is actually exercised.

use std::collections::BTreeSet;
use std::sync::Arc;

use method_partitioning::apps::sensor;
use method_partitioning::core::profile::TriggerPolicy;
use method_partitioning::ir::interp::ExecCtx;
use method_partitioning::ir::{IrError, Value};
use method_partitioning::jecho::{SimConfig, SimSession};
use method_partitioning::simnet::{FaultPlan, Host, Link, SimTime};

const MESSAGES: u64 = 30;

/// Every metric identity a chaos sim session registers, as
/// `name{label_key}` (label *keys* only — values like the PSE id vary by
/// handler). See OBSERVABILITY.md for the full catalog including the
/// TCP-transport-only instruments (`reconnects_total`,
/// `heartbeats_total`, `demod_errors_total`,
/// `plan_updates_applied_total`), which need a real socket to register,
/// and the session-lifecycle instruments that live on the
/// `SessionManager` and `Router` hubs rather than a sim session's
/// (`worker_slots_active`, `sessions_closed_total{reason}`,
/// `orphans_reclaimed_total`, `router_placed_sessions{node}`,
/// `router_orphan_sessions{node}`), covered by the router and chaos
/// drill suites.
///
/// This list is **append-only**: add new instruments at will, but never
/// rename or remove an entry without a deliberate, documented break.
const GOLDEN: &[&str] = &[
    "batch_member_acks_total",
    "batched_events_total",
    "compile_fallbacks_total",
    "compiled_bodies_total",
    "continuations_resumed_total{pse}",
    "continuations_sent_total{pse}",
    "deadline_timeouts_total",
    "degradations_total",
    "degraded",
    "degraded_seconds",
    "demod_work_units",
    "duplicates_suppressed_total",
    "engine_dispatch_total{engine}",
    "envelope_batches_total",
    "envelope_bytes",
    "feedback_window_resets_total",
    "frames_corrupted_total",
    "frames_lost_total",
    "handler_panics_total{side}",
    "marshal_borrowed_bytes_total",
    "marshal_copied_bytes_total",
    "mod_work_units",
    "plan_epoch",
    "plan_prepares_total{outcome}",
    "plan_rollbacks_total{reason}",
    "plan_switch_total{reason}",
    "plan_updates_dropped_total",
    "plans_quarantined",
    "profile_work_units_total",
    "promotions_total",
    "quarantined_total",
    "reconfig_cut_weight",
    "reconfigurations_total",
    "retransmissions_total",
    "shed_total{reason}",
    "stale_plan_rejected_total",
];

fn storm(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_drop(0.12)
        .with_duplicate(0.10)
        .with_reorder(0.10)
        .with_corrupt(0.15)
        .with_partition(20..36)
}

fn sensor_event(
    program: &Arc<method_partitioning::ir::Program>,
    seq: u64,
) -> impl FnOnce(&mut ExecCtx) -> Result<Vec<Value>, IrError> + '_ {
    move |ctx| {
        if seq.is_multiple_of(3) {
            Ok(vec![Value::Int(seq as i64)])
        } else {
            sensor::make_signal(program, ctx, seq, 0xC0FFEE)
        }
    }
}

fn run_sensor_storm(seed: u64) -> SimSession {
    let program = sensor::sensor_program().unwrap();
    let mut session = SimSession::adaptive(
        Arc::clone(&program),
        "process",
        sensor::sensor_cost_model(),
        sensor::stage_builtins(),
        sensor::consumer_builtins(),
        SimConfig::new(
            Host::new("producer", 760_000.0),
            Link::new("lan", SimTime::from_millis(1), 1_000_000.0).with_fault_plan(storm(seed)),
            Host::new("consumer", 281_000.0),
            TriggerPolicy::Rate(2),
        )
        .with_degradation(3, 3),
    )
    .unwrap();
    for seq in 1..=MESSAGES {
        session.deliver(sensor_event(&program, seq)).unwrap();
    }
    session.drain(500).unwrap();
    session
}

/// Reduce a snapshot to its set of `name{label_key,...}` identities.
fn identities(session: &SimSession) -> BTreeSet<String> {
    session
        .obs()
        .registry()
        .snapshot()
        .metrics
        .iter()
        .map(|m| {
            let mut id = m.name.clone();
            if !m.labels.is_empty() {
                let keys: Vec<&str> = m.labels.iter().map(|(k, _)| k.as_str()).collect();
                id.push('{');
                id.push_str(&keys.join(","));
                id.push('}');
            }
            id
        })
        .collect()
}

#[test]
fn metric_inventory_is_append_only() {
    let session = run_sensor_storm(7);
    let seen = identities(&session);
    let golden: BTreeSet<String> = GOLDEN.iter().map(|s| s.to_string()).collect();

    for name in &golden {
        assert!(
            seen.contains(name),
            "metric `{name}` disappeared from the registry. The inventory is \
             append-only: renaming or removing an instrument silently breaks \
             dashboards and BENCH_*.json consumers. Restore it (or, if the \
             break is deliberate, document it in OBSERVABILITY.md and update \
             GOLDEN in tests/observability.rs)."
        );
    }
    for name in &seen {
        assert!(
            golden.contains(name),
            "new metric `{name}` is not in the golden inventory. Welcome! \
             Append it to GOLDEN in tests/observability.rs and document its \
             name, labels, unit, and paper mechanism in OBSERVABILITY.md."
        );
    }
}

#[test]
fn registry_counters_agree_with_session_ground_truth() {
    let session = run_sensor_storm(7);
    let snap = session.obs().registry().snapshot();

    assert_eq!(snap.counter_sum("retransmissions_total"), session.retransmissions());
    assert_eq!(snap.counter_sum("frames_lost_total"), session.frames_lost());
    assert_eq!(snap.counter_sum("frames_corrupted_total"), session.frames_corrupted());
    assert_eq!(snap.counter_sum("duplicates_suppressed_total"), session.duplicates_suppressed());
    assert_eq!(snap.counter_sum("envelope_batches_total"), session.envelope_batches());
    assert_eq!(snap.counter_sum("batched_events_total"), session.batched_events());
    assert_eq!(snap.counter_sum("degradations_total"), session.degradations());
    assert_eq!(snap.counter_sum("promotions_total"), session.promotions());
    // The storm exercised the interesting paths at all.
    assert!(snap.counter_sum("retransmissions_total") > 0);
    assert!(snap.counter_sum("degradations_total") > 0);
    assert!(snap.counter_sum("plan_switch_total") > 0);
}
