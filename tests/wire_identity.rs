//! Byte-identity properties of the zero-copy frame encoder.
//!
//! The scatter-gather encoder ([`Frame::try_encode_frame`]) must produce
//! exactly the byte stream of the legacy single-buffer encoder
//! ([`Frame::encode_via_copy`]) for every frame kind — decode, CRC
//! framing, retransmission, and chaos determinism all depend on the wire
//! bytes not moving. These tests pin that equivalence over random frames,
//! and pin the ownership rule that makes borrowing safe: an encoded frame
//! held for retransmission stays valid however the sender's heap (or the
//! event itself) changes afterwards.
//!
//! [`Frame::try_encode_frame`]: method_partitioning::jecho::Frame::try_encode_frame
//! [`Frame::encode_via_copy`]: method_partitioning::jecho::Frame::encode_via_copy

use method_partitioning::core::continuation::ContinuationMessage;
use method_partitioning::core::profile::PseSample;
use method_partitioning::ir::heap::{ArrayData, Heap};
use method_partitioning::ir::marshal::{marshal_values, Marshalled};
use method_partitioning::ir::Value;
use method_partitioning::jecho::envelope::ZERO_COPY_MIN_BYTES;
use method_partitioning::jecho::{Frame, ModulatedEvent, PlanEnvelope};
use proptest::prelude::*;
use proptest::strategy::Just;

fn sample_strategy() -> impl Strategy<Value = PseSample> {
    (any::<u32>(), any::<u64>(), any::<bool>(), any::<u64>(), any::<bool>()).prop_map(
        |(pse, mod_work, has_bytes, bytes, was_split)| PseSample {
            pse: pse as usize,
            mod_work,
            // u64::MAX is the wire's None sentinel, so Some(MAX) cannot
            // round-trip; keep generated sizes below it.
            payload_bytes: has_bytes.then_some(bytes % (u64::MAX - 1)),
            was_split,
        },
    )
}

/// Payload lengths clustered around the inline/borrow threshold, plus a
/// tail of large buffers, so both encoder paths (and the boundary) are
/// exercised.
fn payload_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..64),
        proptest::collection::vec(any::<u8>(), ZERO_COPY_MIN_BYTES - 2..ZERO_COPY_MIN_BYTES + 2),
        proptest::collection::vec(any::<u8>(), 4096..8192),
    ]
}

fn event_strategy() -> impl Strategy<Value = (ModulatedEvent, u64)> {
    (
        (any::<u64>(), any::<u32>(), payload_strategy()),
        (
            any::<u64>(),
            any::<u64>(),
            proptest::collection::vec(sample_strategy(), 0..4),
            any::<u64>(),
        ),
    )
        .prop_map(|((seq, pse, payload), (mod_work, epoch, samples, t_mod))| {
            (
                ModulatedEvent {
                    seq,
                    continuation: ContinuationMessage {
                        pse: pse as usize,
                        payload: Marshalled::from_bytes(payload),
                        mod_work,
                        epoch,
                    },
                    samples,
                },
                t_mod,
            )
        })
}

fn frame_strategy() -> impl Strategy<Value = Frame> {
    prop_oneof![
        event_strategy().prop_map(|(event, t_mod_nanos)| Frame::Event { event, t_mod_nanos }),
        proptest::collection::vec(event_strategy(), 0..5)
            .prop_map(|events| Frame::Batch { events }),
        (proptest::collection::vec(any::<u32>(), 0..8), any::<u64>(), any::<u64>(), any::<u64>())
            .prop_map(|(active, revision, epoch, ack)| Frame::Plan(PlanEnvelope {
                active: active.into_iter().map(|p| p as usize).collect(),
                revision,
                epoch,
                ack,
            })),
        any::<u64>().prop_map(|seq| Frame::Heartbeat { seq }),
        any::<u64>().prop_map(|ack| Frame::Ack { ack }),
        proptest::collection::vec(any::<u64>(), 0..6)
            .prop_map(|watermarks| Frame::BatchAck { watermarks }),
        Just(Frame::Shutdown),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Scatter-gather encode, its deterministic flatten, its vectored
    /// write, and the delegating `encode`/`try_encode` all agree with the
    /// legacy copy encoder, byte for byte, for every frame kind.
    #[test]
    fn zero_copy_encoding_is_bit_identical(frame in frame_strategy()) {
        let legacy = frame.encode_via_copy();
        let enc = frame.encode_frame();
        prop_assert_eq!(&enc.to_vec(), &legacy);
        prop_assert_eq!(enc.len(), legacy.len());
        prop_assert_eq!(&frame.encode(), &legacy);
        prop_assert_eq!(&frame.try_encode().unwrap(), &legacy);
        let mut streamed = Vec::new();
        enc.write_to(&mut streamed).unwrap();
        prop_assert_eq!(&streamed, &legacy);
        // Segment lengths cover exactly the frame.
        let seg_total: usize = enc.segments().iter().map(|s| s.len()).sum();
        prop_assert_eq!(seg_total, legacy.len());
        // The encoding still decodes to a frame of the same kind.
        let (decoded, consumed) = Frame::decode_bytes(&legacy).unwrap();
        prop_assert_eq!(consumed, legacy.len());
        prop_assert_eq!(
            std::mem::discriminant(&decoded),
            std::mem::discriminant(&frame)
        );
    }

    /// Payload bytes land on exactly one side of the copy/borrow ledger,
    /// decided by the threshold, and everything else is inline.
    #[test]
    fn copy_borrow_accounting_matches_threshold(ev in event_strategy()) {
        let (event, t_mod_nanos) = ev;
        let payload_len = event.continuation.payload.wire_size() as u64;
        let enc = Frame::Event { event, t_mod_nanos }.encode_frame();
        if payload_len >= ZERO_COPY_MIN_BYTES as u64 {
            prop_assert_eq!(enc.borrowed_payload_bytes(), payload_len);
            prop_assert_eq!(enc.copied_payload_bytes(), 0);
            prop_assert!(enc.segments().len() > 1, "borrowed payload needs its own segment");
        } else {
            prop_assert_eq!(enc.copied_payload_bytes(), payload_len);
            prop_assert_eq!(enc.borrowed_payload_bytes(), 0);
            prop_assert_eq!(enc.segments().len(), 1, "small frames stay contiguous");
        }
    }
}

/// The ownership rule behind zero-copy: packing marshals the live set
/// into an immutable buffer, so an `EncodedFrame` sitting in a
/// retransmission window is untouched by anything the sender does
/// afterwards — mutating the source heap, re-packing, or dropping the
/// event entirely.
#[test]
fn in_flight_retransmission_survives_source_mutation() {
    let mut heap = Heap::new();
    let data: Vec<u8> = (0..(4 * ZERO_COPY_MIN_BYTES)).map(|i| (i % 256) as u8).collect();
    let arr = heap.alloc_array_from(ArrayData::Byte(data));
    let roots = vec![Value::Ref(arr)];
    let payload = marshal_values(&heap, &roots).expect("marshal");
    let event = ModulatedEvent {
        seq: 1,
        continuation: ContinuationMessage { pse: 0, payload, mod_work: 0, epoch: 0 },
        samples: vec![],
    };
    let frame = Frame::Event { event, t_mod_nanos: 0 };
    let wire_before = frame.encode_via_copy();

    // First transmission: encoded zero-copy, then parked as if unacked.
    let in_flight = frame.encode_frame();
    assert!(in_flight.borrowed_payload_bytes() > 0, "large payload must be borrowed");

    // The sender keeps computing: the source heap mutates and the same
    // roots are re-packed (a later message), none of which may reach into
    // the parked frame.
    for i in 0..64 {
        heap.array_set(arr, i, Value::Int(0x5A)).expect("mutate source array");
    }
    let repacked = marshal_values(&heap, &roots).expect("re-marshal");
    drop(frame);

    // Retransmission sends the parked frame: bit-identical to the first
    // transmission, not to the mutated heap.
    assert_eq!(in_flight.to_vec(), wire_before);
    let mut streamed = Vec::new();
    in_flight.write_to(&mut streamed).expect("retransmit");
    assert_eq!(streamed, wire_before);

    // And the mutation really did change what a fresh pack would send.
    let fresh = ModulatedEvent {
        seq: 2,
        continuation: ContinuationMessage { pse: 0, payload: repacked, mod_work: 0, epoch: 0 },
        samples: vec![],
    };
    let fresh_wire = Frame::Event { event: fresh, t_mod_nanos: 0 }.encode_frame().to_vec();
    assert_ne!(&fresh_wire[..], &wire_before[..], "sanity: mutation altered a fresh encode");
}
